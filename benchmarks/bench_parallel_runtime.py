"""Benchmark: persistent runtime vs per-call cold pools at city scale.

Workload: repeated scenario-fleet round trips against one city-scale
instance (the service shape — a resident problem, many fan-outs).  Each
round trip is one :meth:`~repro.scenario.fleet.ScenarioFleet.run` call
fanning replicate shards over ``--workers`` processes.  Two executions
of the *identical* portfolio:

* **cold** — ``REPRO_RUNTIME=0``, the pre-runtime behavior: every call
  builds a fresh ``ProcessPoolExecutor`` and pickles the full scenario —
  city-scale client arrays included — into every shard task.
* **warm** — the persistent runtime (:mod:`repro.parallel.runtime`):
  one pool reused across calls and the instance broadcast once over
  shared memory, each task carrying a few-hundred-byte handle.

Per-cell results are asserted bit-identical to a serial (in-process)
reference run before any timing is reported, so the speedup is pure
transport and pool lifecycle — no work is skipped.  Two gates:

* wall-clock: warm must be ≥ ``--min-speedup`` (default 3x) faster over
  the round trips;
* transport: the per-task scenario payload must pickle ≥
  ``--min-byte-ratio`` (default 10x) smaller under broadcast.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_parallel_runtime.py [--smoke]

``--smoke`` shrinks the instance for CI crash checks (parity and the
byte-ratio still asserted, no wall-clock assertion).  A machine-readable
record lands in ``BENCH_parallel_runtime.json`` (schema v2, repo root by
default).
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
import time
from contextlib import contextmanager

from _common import add_json_argument, write_bench_json
from repro.instances.catalog import city_spec
from repro.parallel import get_runtime, shutdown_runtime
from repro.parallel.runtime import RUNTIME_ENV
from repro.scenario import Scenario, ScenarioFleet
from repro.scenario.fleet import _pack_scenario


@contextmanager
def runtime_disabled():
    """The cold arm: legacy pool-per-call + pickle-everything."""
    prior = os.environ.get(RUNTIME_ENV)
    os.environ[RUNTIME_ENV] = "0"
    try:
        yield
    finally:
        if prior is None:
            del os.environ[RUNTIME_ENV]
        else:
            os.environ[RUNTIME_ENV] = prior


def cell_signature(result) -> list[tuple]:
    """Everything a replicate's identity should pin, except wall-clock."""
    return [
        (
            step.result.best.fitness,
            step.result.best.placement.cells,
            step.result.n_evaluations,
            step.result.n_phases,
        )
        for step in result.steps
    ]


def report_signature(report) -> list[list[tuple]]:
    return [cell_signature(run.result) for run in report.runs]


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--routers", type=int, default=128,
                        help="city instance routers (default 128)")
    parser.add_argument("--clients", type=int, default=20000,
                        help="city instance clients (default 20000)")
    parser.add_argument("--steps", type=int, default=1,
                        help="perturbation steps per scenario (default 1)")
    parser.add_argument("--seeds", type=int, default=4,
                        help="replicates per (scenario, solver) cell "
                        "(default 4)")
    parser.add_argument("--budget", type=int, default=1,
                        help="max search phases per step (default 1)")
    parser.add_argument("--candidates", type=int, default=2,
                        help="candidate moves per phase (default 2)")
    parser.add_argument("--workers", type=int, default=4,
                        help="process fan-out per round trip (default 4)")
    parser.add_argument("--engine", default="sparse",
                        help="evaluation engine (default sparse — the "
                        "city-scale frame's engine; see city_spec)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timed round trips per arm; the minimum "
                        "counts (default 3)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI crash check: small instance, 1 round, "
                        "parity + byte-ratio asserted, no wall-clock "
                        "assertion")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fail unless warm is >= X times faster than "
                        "the cold-pool baseline (default 3.0)")
    parser.add_argument("--min-byte-ratio", type=float, default=10.0,
                        help="fail unless broadcast shrinks the per-task "
                        "payload >= X times (default 10.0)")
    parser.add_argument("--seed", type=int, default=20090629)
    add_json_argument(parser)
    args = parser.parse_args(argv)

    n_routers = 48 if args.smoke else args.routers
    n_clients = 5000 if args.smoke else args.clients
    rounds = 1 if args.smoke else max(1, args.rounds)

    problem = city_spec(n_routers, n_clients).generate()
    scenarios = [
        Scenario.client_drift(problem, args.steps, sigma=2.0),
        Scenario.router_outages(problem, args.steps, count=1),
    ]
    solver_kwargs = {"n_candidates": args.candidates}
    solver_specs = [("search:swap", solver_kwargs)]
    n_cells = len(scenarios) * len(solver_specs)
    n_triples = n_cells * args.seeds

    print("=" * 72)
    print(
        f"parallel-runtime bench: {n_cells} cells x {args.seeds} seeds "
        f"({n_triples} triples) on {problem.grid.width}x"
        f"{problem.grid.height}, {problem.n_routers} routers, "
        f"{problem.n_clients} clients; {args.steps}+1 steps/triple, "
        f"workers={args.workers}, best of {rounds} round trip(s)"
    )
    print("=" * 72)

    def build_fleet(workers):
        return ScenarioFleet(
            scenarios,
            solver_specs,
            n_seeds=args.seeds,
            budget=args.budget,
            workers=workers,
            engine=args.engine,
        )

    # The untimed serial reference every parallel arm must reproduce.
    reference = report_signature(build_fleet(None).run(seed=args.seed))

    fleet = build_fleet(args.workers)
    cold_seconds = warm_seconds = float("inf")
    # Arms interleave per round and the minimum counts, so ambient load
    # cannot skew the ratio.  The warm arm's first call pays pool
    # creation + broadcast publish; min-of-rounds reports the runtime's
    # steady state, which is the amortized claim under test.
    for _ in range(rounds):
        with runtime_disabled():
            start = time.perf_counter()
            cold_report = fleet.run(seed=args.seed)
            cold_seconds = min(cold_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        warm_report = fleet.run(seed=args.seed)
        warm_seconds = min(warm_seconds, time.perf_counter() - start)
        if report_signature(cold_report) != reference:
            raise AssertionError(
                "cold-pool arm diverged from the serial reference"
            )
        if report_signature(warm_report) != reference:
            raise AssertionError(
                "persistent-runtime arm diverged from the serial reference"
            )
    print(
        f"parity: all {n_triples} triples bit-identical to the serial "
        "reference in both arms"
    )

    # Transport gate: the per-task scenario payload, exactly as the
    # fleet ships it (full scenario cold, broadcast handle warm).
    with runtime_disabled():
        cold_bytes = max(len(pickle.dumps(s)) for s in scenarios)
    warm_bytes = max(len(pickle.dumps(_pack_scenario(s))) for s in scenarios)
    byte_ratio = cold_bytes / warm_bytes
    stats = get_runtime().stats

    speedup = cold_seconds / warm_seconds
    header = f"{'arm':6s} {'seconds':>10s} {'task bytes':>12s}"
    print(header)
    print("-" * len(header))
    for label, seconds, nbytes in (
        ("cold", cold_seconds, cold_bytes),
        ("warm", warm_seconds, warm_bytes),
    ):
        print(f"{label:6s} {seconds:>10.2f} {nbytes:>12d}")
    print("-" * len(header))
    print(
        f"warm speedup: {speedup:.1f}x wall-clock, payload {byte_ratio:.0f}x "
        f"smaller; runtime stats: {stats}"
    )

    payload = {
        "n_routers": problem.n_routers,
        "n_clients": problem.n_clients,
        "n_cells": n_cells,
        "n_seeds": args.seeds,
        "n_triples": n_triples,
        "n_steps": args.steps,
        "budget": args.budget,
        "candidates_per_phase": args.candidates,
        "workers": args.workers,
        "rounds": rounds,
        "smoke": args.smoke,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": speedup,
        "cold_task_bytes": cold_bytes,
        "warm_task_bytes": warm_bytes,
        "byte_reduction": byte_ratio,
        "pool_creates": stats.pool_creates,
        "pool_reuses": stats.pool_reuses,
        "publishes": stats.publishes,
        "broadcast_hits": stats.broadcast_hits,
    }
    write_bench_json("parallel_runtime", payload, args.json)
    shutdown_runtime()

    if byte_ratio < args.min_byte_ratio:
        print(
            f"FAIL: payload reduction {byte_ratio:.1f}x below required "
            f"{args.min_byte_ratio:.1f}x"
        )
        return 1
    if not args.smoke:
        if speedup < args.min_speedup:
            print(
                f"FAIL: warm speedup {speedup:.1f}x below required "
                f"{args.min_speedup:.1f}x"
            )
            return 1
        print(
            f"OK: speedup {speedup:.1f}x >= {args.min_speedup:.1f}x, "
            f"payload {byte_ratio:.0f}x >= {args.min_byte_ratio:.0f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
