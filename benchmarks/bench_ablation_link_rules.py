"""Ablation A (DESIGN.md D3) — link-rule sensitivity.

The paper never states when two routers share a link; this bench
evaluates every ad hoc method stand-alone under the three candidate
rules.  The BIDIRECTIONAL default reproduces the paper's small
stand-alone giants; OVERLAP (the loosest rule) inflates them.
"""

from __future__ import annotations

import numpy as np
from _common import print_header, run_once

from repro.adhoc.registry import PAPER_METHOD_ORDER, make_method
from repro.core.evaluation import Evaluator
from repro.core.radio import LinkRule
from repro.instances.catalog import paper_normal


def _giants_by_rule() -> dict[str, dict[str, int]]:
    base = paper_normal().generate()
    results: dict[str, dict[str, int]] = {}
    for rule in LinkRule:
        problem = base.with_link_rule(rule)
        evaluator = Evaluator(problem)
        row: dict[str, int] = {}
        for name in PAPER_METHOD_ORDER:
            placement = make_method(name).place(
                problem, np.random.default_rng(1)
            )
            row[name] = evaluator.evaluate(placement).giant_size
        results[rule.value] = row
    return results


def test_ablation_link_rules(benchmark):
    results = run_once(benchmark, _giants_by_rule)

    print_header("Ablation A — stand-alone giant component per link rule")
    header = f"{'method':10s}" + "".join(
        f"{rule:>16s}" for rule in results
    )
    print(header)
    for name in PAPER_METHOD_ORDER:
        print(
            f"{name:10s}"
            + "".join(f"{results[rule][name]:16d}" for rule in results)
        )

    for name in PAPER_METHOD_ORDER:
        # Looser rules can only add links: giant sizes are ordered
        # bidirectional <= unidirectional <= overlap.
        assert (
            results["bidirectional"][name]
            <= results["unidirectional"][name]
            <= results["overlap"][name]
        )
