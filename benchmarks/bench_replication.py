"""Replication bench — are the paper's claims seed-robust?

The paper reports single runs; this bench replicates the two headline
comparisons across seeds and prints mean +/- std:

* stand-alone ad hoc methods (Tables 1-3, right columns),
* Swap vs Random movement in neighborhood search (Figure 4).
"""

from __future__ import annotations

from _common import bench_scale, print_header, run_once

from repro.experiments.replication import (
    format_replication,
    replicate_movements,
    replicate_standalone,
)
from repro.instances.catalog import paper_normal


def test_replication_standalone(benchmark):
    results = run_once(
        benchmark, replicate_standalone, paper_normal(), n_seeds=5
    )
    print_header("Replication — stand-alone ad hoc methods (5 seeds)")
    print(format_replication(results, "giant / coverage / fitness, mean +/- std"))

    n = paper_normal().n_routers
    for name, metrics in results.items():
        # The small-giant regime of the paper holds for every seed.
        assert metrics["giant"].maximum <= n / 2, name


def test_replication_movements(benchmark):
    scale = bench_scale()
    results = run_once(
        benchmark,
        replicate_movements,
        paper_normal(),
        n_seeds=3,
        n_candidates=scale.ns_candidates,
        max_phases=scale.ns_phases,
    )
    print_header("Replication — Swap vs Random movement (3 seeds)")
    print(format_replication(results, "final giant / coverage, mean +/- std"))

    # The Figure 4 headline holds in the mean across seeds.
    assert results["Swap"]["giant"].mean >= results["Random"]["giant"].mean
