"""Ablation C (DESIGN.md D5) — fitness weight sensitivity.

The paper says connectivity is "more important" than coverage but gives
no weights; we default to 0.7/0.3.  This bench sweeps the connectivity
weight and reruns the neighborhood search: heavier connectivity weights
grow the giant component at the expense of coverage, confirming the
scalarization behaves as designed.
"""

from __future__ import annotations

import numpy as np
from _common import bench_scale, print_header, run_once

from repro.adhoc import RandomPlacement
from repro.core.evaluation import Evaluator
from repro.core.fitness import WeightedSumFitness
from repro.instances.catalog import paper_normal
from repro.neighborhood.movements import SwapMovement
from repro.neighborhood.search import NeighborhoodSearch

WEIGHTS = (0.3, 0.5, 0.7, 0.9)


def _sweep(scale):
    problem = paper_normal().generate()
    initial = RandomPlacement().place(problem, np.random.default_rng(4))
    start_giant = Evaluator(problem).evaluate(initial).giant_size
    rows = []
    for connectivity_weight in WEIGHTS:
        fitness = WeightedSumFitness(
            connectivity_weight=connectivity_weight,
            coverage_weight=1.0 - connectivity_weight,
        )
        search = NeighborhoodSearch(
            SwapMovement(),
            n_candidates=scale.ns_candidates,
            max_phases=scale.ns_phases,
            stall_phases=None,
        )
        result = search.run(
            Evaluator(problem, fitness), initial, np.random.default_rng(5)
        )
        rows.append(
            (
                connectivity_weight,
                result.best.giant_size,
                result.best.covered_clients,
            )
        )
    return start_giant, rows


def test_ablation_fitness_weights(benchmark):
    scale = bench_scale()
    start_giant, rows = run_once(benchmark, _sweep, scale)

    print_header("Ablation C — connectivity weight sweep (DESIGN.md D5)")
    print(f"(initial random placement: giant {start_giant})")
    print(f"{'w_connectivity':>14s} {'giant':>8s} {'coverage':>10s}")
    for weight, giant, coverage in rows:
        print(f"{weight:14.1f} {giant:8d} {coverage:10d}")

    # All runs stay within bounds and every weighting improves on the
    # initial solution (cross-weight ordering is single-seed noise at
    # quick scale; EXPERIMENTS.md discusses the trend).
    for _, giant, coverage in rows:
        assert start_giant <= giant <= 64
        assert 0 <= coverage <= 192
