"""Aggregate the committed ``BENCH_*.json`` records into one trend table.

Every benchmark leaves a machine-readable ``BENCH_<name>.json`` at the
repository root (see ``_common.write_bench_json``), and successive PRs
overwrite those files in place — so the perf *trajectory* lives in git
history, one version per commit that touched a record.  This helper
walks that history and renders a single markdown table
(``results/BENCH_TREND.md``): one row per (bench, metric, PR), newest
first, so the perf story reads in one place instead of seven files.

Headline metrics are selected by key name: anything that looks like a
claim (``*speedup*``, ``*ratio*``, ``*reduction*``, ``*regret*``,
``p50``/``p95``, ``*overhead*``) rather than a workload knob.  Raw
wall-clock seconds are deliberately excluded — records from different
hosts must not be compared (schema v2 stamps the host for exactly this
reason), while the selected metrics are all same-run ratios.

Run standalone::

    python benchmarks/trend.py [--out results/BENCH_TREND.md]

No src/ imports: the script only needs git and the JSON records, so it
works from a bare checkout without ``PYTHONPATH``.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Keys that state a result.  Everything else in a record is either the
#: envelope, a workload knob, or a host-bound wall-clock number.
HEADLINE = re.compile(
    r"(speedup|ratio|reduction|regret|overhead|^p\d{2}(_|$))", re.I
)

#: Envelope/counter keys that match HEADLINE lexically but are not
#: trajectory claims.
EXCLUDE = {"schema_version"}


def git(*argv: str) -> str:
    return subprocess.run(
        ["git", "-C", str(REPO_ROOT), *argv],
        check=True,
        capture_output=True,
        text=True,
    ).stdout


def record_versions(path: Path) -> list[dict]:
    """Every committed version of one record, oldest first.

    Each entry: ``{"sha", "subject", "date", "record"}``.  The working
    tree copy is appended as a final pseudo-commit when it differs from
    HEAD, so an uncommitted bench run still shows up in the table.
    """
    rel = path.relative_to(REPO_ROOT).as_posix()
    versions = []
    try:
        log = git(
            "log", "--follow", "--format=%H\x1f%s\x1f%cs", "--", rel
        ).strip()
    except subprocess.CalledProcessError:
        log = ""
    for line in reversed(log.splitlines()):
        sha, subject, date = line.split("\x1f")
        try:
            record = json.loads(git("show", f"{sha}:{rel}"))
        except (subprocess.CalledProcessError, json.JSONDecodeError):
            continue
        versions.append(
            {"sha": sha[:7], "subject": subject, "date": date,
             "record": record}
        )
    try:
        worktree = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        worktree = None
    if worktree is not None and (
        not versions or versions[-1]["record"] != worktree
    ):
        stamp = worktree.get("timestamp")
        date = (
            datetime.fromtimestamp(stamp, tz=timezone.utc).date().isoformat()
            if isinstance(stamp, (int, float))
            else "-"
        )
        versions.append(
            {"sha": "worktree", "subject": "(uncommitted)", "date": date,
             "record": worktree}
        )
    return versions


def headline_metrics(record: dict) -> dict[str, float]:
    return {
        key: value
        for key, value in sorted(record.items())
        if key not in EXCLUDE
        and HEADLINE.search(key)
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
    }


def fmt(value: float) -> str:
    if value and abs(value) < 0.01:
        return f"{value:.2e}"
    return f"{value:,.2f}".rstrip("0").rstrip(".")


def render(root: Path) -> str:
    lines = [
        "# Benchmark trend",
        "",
        "One row per (bench, metric, PR), newest PR first, regenerated "
        "by `python benchmarks/trend.py`.  Metrics are same-run ratios "
        "(speedups, reductions, regrets) — host-bound wall-clock "
        "numbers are deliberately not tracked across commits.",
        "",
        "| bench | metric | value | PR | date |",
        "|---|---|---:|---|---|",
    ]
    n_rows = 0
    for path in sorted(root.glob("BENCH_*.json")):
        bench = path.stem.removeprefix("BENCH_")
        for version in reversed(record_versions(path)):
            subject = version["subject"]
            if len(subject) > 60:
                subject = subject[:57] + "..."
            pr = (
                subject
                if version["sha"] == "worktree"
                else f"`{version['sha']}` {subject}"
            )
            for key, value in headline_metrics(version["record"]).items():
                lines.append(
                    f"| {bench} | {key} | {fmt(value)} | {pr} "
                    f"| {version['date']} |"
                )
                n_rows += 1
    if not n_rows:
        lines.append("| _no records found_ | | | | |")
    lines.append("")
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "results" / "BENCH_TREND.md",
        help="destination markdown file (default results/BENCH_TREND.md)",
    )
    args = parser.parse_args(argv)
    text = render(REPO_ROOT)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(text)
    n_rows = text.count("\n|") - 2
    print(f"wrote {args.out} ({max(n_rows, 0)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
