"""Benchmark: sparse spatial-grid engine vs. the dense batch path.

Workload: city-scale candidate evaluation — ``K`` random placements per
round on a 512x512 deployment area (see
:func:`repro.instances.catalog.city_spec`), far beyond the paper's
32x32/64-router frame.  Two engines evaluate the identical candidate
sets:

* **dense** — ``BatchEvaluator`` with stacked ``(K, N, N)`` /
  ``(K, M, N)`` tensors (the PR 1 engine),
* **sparse** — the spatial-grid engine (bin-pruned candidate pairs,
  chunked coverage counting).

The script asserts bit-identical results before timing, measures median
round time and tracemalloc peak memory for both engines, then runs the
``city-large`` catalog instance (4096 routers / 50k clients) end-to-end
through neighborhood search on the auto-dispatched sparse engine — a
workload whose dense tensors (hundreds of GB at the default batch
chunk) cannot be held in memory.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_sparse.py [--quick]

``--quick`` trims the workload for CI smoke runs; ``--min-speedup X``
and ``--min-memory-ratio X`` turn the printed ratios into hard
exit-code assertions for acceptance runs; ``--json [DIR]`` emits a
machine-readable ``BENCH_engine_sparse.json`` record.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
import tracemalloc

import numpy as np

from _common import add_json_argument, write_bench_json
from repro.core.engine import BatchEvaluator, select_engine
from repro.core.evaluation import Evaluation, Evaluator
from repro.core.solution import Placement
from repro.instances.catalog import city_large, city_spec
from repro.neighborhood.movements import RandomMovement
from repro.neighborhood.search import NeighborhoodSearch


def check_parity(
    reference: list[Evaluation], candidate: list[Evaluation], name: str
) -> None:
    for ref, got in zip(reference, candidate):
        if (
            got.metrics != ref.metrics
            or got.fitness != ref.fitness
            or not np.array_equal(got.giant_mask, ref.giant_mask)
        ):
            raise AssertionError(
                f"{name} engine diverged:\n"
                f"  dense:  {ref.summary()}\n"
                f"  sparse: {got.summary()}"
            )


def peak_memory(func) -> tuple[object, int]:
    """Run ``func`` under tracemalloc; returns (result, peak bytes)."""
    tracemalloc.start()
    try:
        result = func()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def dense_bytes_estimate(n_routers: int, n_clients: int, chunk: int) -> int:
    """Peak dense intermediates for one batch chunk (int32 fast path).

    Two ``(K, N, N)`` + two ``(K, M, N)`` int32 delta tensors plus the
    boolean adjacency/coverage stacks — the allocations
    ``evaluate_batch`` cannot avoid materializing.
    """
    pair_cells = chunk * n_routers * n_routers
    cover_cells = chunk * n_clients * n_routers
    return (2 * 4 + 1) * (pair_cells + cover_cells)


def format_bytes(n_bytes: float) -> str:
    value = float(n_bytes)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024.0 or unit == "GB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} GB"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--routers", type=int, default=2048,
                        help="router count for the engine comparison")
    parser.add_argument("--clients", type=int, default=20_000,
                        help="client count for the engine comparison")
    parser.add_argument("--candidates", type=int, default=4,
                        help="candidate placements per round (default 4)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timed rounds per engine (default 3)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: smaller instance, no assertions")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless sparse speedup over dense >= X")
    parser.add_argument("--min-memory-ratio", type=float, default=None,
                        help="fail unless dense/sparse peak memory >= X")
    parser.add_argument("--skip-large", action="store_true",
                        help="skip the 4096-router / 50k-client sparse stage")
    parser.add_argument("--seed", type=int, default=20260729)
    add_json_argument(parser)
    args = parser.parse_args(argv)

    n_routers = 512 if args.quick else args.routers
    n_clients = 4_000 if args.quick else args.clients
    rounds = 2 if args.quick else args.rounds
    spec = city_spec(n_routers, n_clients, seed=args.seed)
    problem = spec.generate()
    rng = np.random.default_rng(args.seed)

    print("=" * 72)
    print(
        f"sparse engine bench: grid {problem.grid.width}x"
        f"{problem.grid.height}, {problem.n_routers} routers, "
        f"{problem.n_clients} clients, {args.candidates} candidates/round, "
        f"{rounds} rounds (auto dispatch: {select_engine(problem)})"
    )
    print("=" * 72)

    round_cells = [
        [
            Placement.random(problem.grid, problem.n_routers, rng).cells
            for _ in range(args.candidates)
        ]
        for _ in range(rounds)
    ]

    def fresh_rounds() -> list[list[Placement]]:
        # Fresh Placement objects per engine so nobody benefits from
        # another engine having warmed the lazy positions cache.
        return [
            [Placement.from_cells(problem.grid, cells) for cells in one_round]
            for one_round in round_cells
        ]

    # Parity before timing.
    dense = BatchEvaluator(problem, engine="dense")
    sparse = BatchEvaluator(problem, engine="sparse")
    reference = dense.evaluate_many(fresh_rounds()[0])
    check_parity(reference, sparse.evaluate_many(fresh_rounds()[0]), "sparse")
    print("parity: sparse bit-identical to dense on the first round")

    dense_times: list[float] = []
    for one_round in fresh_rounds():
        start = time.perf_counter()
        dense.evaluate_many(one_round)
        dense_times.append(time.perf_counter() - start)

    sparse_times: list[float] = []
    for one_round in fresh_rounds():
        start = time.perf_counter()
        sparse.evaluate_many(one_round)
        sparse_times.append(time.perf_counter() - start)

    first_round = fresh_rounds()[0]
    _, dense_peak = peak_memory(
        lambda: BatchEvaluator(problem, engine="dense").evaluate_many(first_round)
    )
    first_round = fresh_rounds()[0]
    _, sparse_peak = peak_memory(
        lambda: BatchEvaluator(problem, engine="sparse").evaluate_many(first_round)
    )

    dense_median = statistics.median(dense_times)
    sparse_median = statistics.median(sparse_times)
    speedup = dense_median / sparse_median
    memory_ratio = dense_peak / max(sparse_peak, 1)

    print(f"{'engine':<10} {'round (ms)':>12} {'peak memory':>14} {'speedup':>9}")
    for name, median, peak, ratio in [
        ("dense", dense_median, dense_peak, 1.0),
        ("sparse", sparse_median, sparse_peak, speedup),
    ]:
        print(
            f"{name:<10} {median * 1e3:>12.1f} {format_bytes(peak):>14} "
            f"{ratio:>8.1f}x"
        )
    print(
        f"memory ratio: dense/sparse = {memory_ratio:.1f}x "
        f"({format_bytes(dense_peak)} vs {format_bytes(sparse_peak)})"
    )

    large = None
    if not args.skip_large and not args.quick:
        spec_large = city_large(seed=args.seed)
        problem_large = spec_large.generate()
        estimate = dense_bytes_estimate(
            problem_large.n_routers, problem_large.n_clients, 256
        )
        print("-" * 72)
        print(
            f"{spec_large.name}: dense batch intermediates would need "
            f"~{format_bytes(estimate)} at the default 256-candidate chunk "
            f"— sparse only:"
        )
        evaluator = Evaluator(problem_large)
        assert evaluator.engine == "sparse", "auto dispatch must pick sparse"
        initial = Placement.random(
            problem_large.grid, problem_large.n_routers, rng
        )
        search = NeighborhoodSearch(
            RandomMovement(), n_candidates=8, max_phases=3, stall_phases=None
        )
        start = time.perf_counter()
        outcome = search.run(evaluator, initial, rng)
        elapsed = time.perf_counter() - start
        print(
            f"neighborhood search (3 phases x 8 candidates, auto engine "
            f"{evaluator.engine}): {outcome.best.summary()}"
        )
        print(
            f"completed {outcome.n_evaluations} evaluations in {elapsed:.2f}s "
            f"({elapsed / outcome.n_evaluations * 1e3:.1f} ms/eval)"
        )
        large = {
            "instance": spec_large.name,
            "n_routers": problem_large.n_routers,
            "n_clients": problem_large.n_clients,
            "dense_bytes_estimate": estimate,
            "n_evaluations": outcome.n_evaluations,
            "seconds": elapsed,
            "best_fitness": outcome.best.fitness,
        }

    write_bench_json(
        "engine_sparse",
        {
            "instance": spec.name,
            "n_routers": problem.n_routers,
            "n_clients": problem.n_clients,
            "candidates_per_round": args.candidates,
            "rounds": rounds,
            "dense_round_seconds": dense_times,
            "sparse_round_seconds": sparse_times,
            "dense_median_seconds": dense_median,
            "sparse_median_seconds": sparse_median,
            "speedup": speedup,
            "dense_peak_bytes": dense_peak,
            "sparse_peak_bytes": sparse_peak,
            "memory_ratio": memory_ratio,
            "large": large,
        },
        args.json,
    )

    failed = False
    if args.min_speedup is not None and not args.quick:
        if speedup < args.min_speedup:
            print(
                f"FAIL: sparse speedup {speedup:.1f}x below required "
                f"{args.min_speedup:.1f}x"
            )
            failed = True
        else:
            print(f"OK: sparse speedup {speedup:.1f}x >= {args.min_speedup:.1f}x")
    if args.min_memory_ratio is not None and not args.quick:
        if memory_ratio < args.min_memory_ratio:
            print(
                f"FAIL: memory ratio {memory_ratio:.1f}x below required "
                f"{args.min_memory_ratio:.1f}x"
            )
            failed = True
        else:
            print(
                f"OK: memory ratio {memory_ratio:.1f}x >= "
                f"{args.min_memory_ratio:.1f}x"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
