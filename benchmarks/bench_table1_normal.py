"""Table 1 — ad hoc methods, stand-alone and initializing the GA
(client mesh nodes generated with Normal distribution).

Paper reference values (64 routers, 128x128 grid, 192 clients,
N(mu=64, sigma=12.8)):

    Method    giant/GA  cov/GA  giant/alone  cov/alone
    Random        39      57         3           18
    ColLeft       35      52         8            3
    Diag          50      55        17           13
    Cross         54      74        13           19
    Near          48      60        13           35
    Corners       31      56        26            0
    HotSpot       64      86         4           10

We reproduce the *shape*: stand-alone giants are small fractions of the
fleet, the GA lifts every initializer substantially, and HotSpot is the
top initializer (see EXPERIMENTS.md for the measured numbers).
"""

from __future__ import annotations

from _common import bench_scale, print_header, run_once

from repro.experiments.reporting import format_table
from repro.experiments.tables import run_table


def test_table1_normal(benchmark):
    scale = bench_scale()
    result = run_once(benchmark, run_table, "normal", scale=scale, seed=1)

    print_header("Table 1 (Normal distribution) — regenerated")
    print(format_table(result))

    n = result.spec.n_routers
    # Shape assertions (loose: quick scale runs few generations).
    for row in result.rows:
        # Stand-alone ad hoc methods never connect the whole mesh.
        assert row.giant_standalone < n
    # The GA improves the best method's giant component well beyond the
    # stand-alone regime.
    best = max(row.giant_by_ga for row in result.rows)
    assert best >= max(row.giant_standalone for row in result.rows)
    # HotSpot is a leading initializer (top 3 by GA giant at any scale).
    ranked = sorted(result.rows, key=lambda r: r.giant_by_ga, reverse=True)
    top3 = [row.method for row in ranked[:3]]
    assert "hotspot" in top3 or scale.name == "quick"
