"""Table 2 — ad hoc methods, stand-alone and initializing the GA
(client mesh nodes generated with Exponential distribution).

Paper reference values:

    Method    giant/GA  cov/GA  giant/alone  cov/alone
    Random        29      97         3           32
    ColLeft       33      47         8            1
    Diag          54      27        17           11
    Cross         50      40        13            1
    Near          43      44        13            0
    Corners       26      18        26            6
    HotSpot       64       2         5            8

With Exponential clients the mass sits at the origin corner, so
client-aware placement (HotSpot) gains and centre-fixed placement (Near)
loses coverage — the shape we assert below.
"""

from __future__ import annotations

from _common import bench_scale, print_header, run_once

from repro.experiments.reporting import format_table
from repro.experiments.tables import run_table


def test_table2_exponential(benchmark):
    scale = bench_scale()
    result = run_once(benchmark, run_table, "exponential", scale=scale, seed=1)

    print_header("Table 2 (Exponential distribution) — regenerated")
    print(format_table(result))

    n = result.spec.n_routers
    for row in result.rows:
        assert row.giant_standalone < n
    # Client-aware HotSpot covers at least as much as centre-fixed Near
    # stand-alone when clients hug the corner.
    hotspot = result.row("hotspot")
    near = result.row("near")
    assert hotspot.coverage_standalone >= near.coverage_standalone
