"""Benchmark: lockstep multi-chain search vs. the serial per-chain loop.

Workload: the paper-scale replication portfolio — ``R`` seeds x 6
movement types (the paper's swap and random, three swap variants, and
the combined mixture) on a 32x32 grid with 128 routers and 192 clients,
30 phases x 16 candidates per chain.  Two executions of the identical
portfolio:

* **serial** — one :class:`NeighborhoodSearch` python loop per
  (movement, seed) chain, each phase evaluating its own 16-candidate
  batch: the replication harness's historical path.
* **multichain** — one :class:`MultiChainSearch` per movement advancing
  all ``R`` chains in lockstep: one vectorized ``propose_batch`` and one
  stacked delta-engine measurement per phase for all ``R x 16``
  candidates.

Both run the documented per-chain RNG contract (``(seed_base,
crc32(label), seed)`` keys), so the script asserts bit-identical
per-chain results — best fitness, final placement cells and the full
phase trace — before reporting wall-clock.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_multichain.py [--smoke]

``--smoke`` trims seeds/phases for CI crash checks; ``--min-speedup X``
turns the printed portfolio speedup into a hard exit-code assertion for
acceptance runs; ``--workers N`` adds a third stage composing lockstep
chains with a process pool.  A machine-readable record lands in
``BENCH_multichain.json`` (repo root by default).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from _common import add_json_argument, write_bench_json
from repro.core.evaluation import Evaluator
from repro.core.solution import Placement
from repro.instances.generator import InstanceSpec
from repro.neighborhood import MultiChainSearch, NeighborhoodSearch
from repro.neighborhood.registry import movement_factory
from repro.experiments.replication import label_key

#: The 6-movement portfolio: the paper's two movements plus the natural
#: swap variants and the combined mixture — every registry family.
PORTFOLIO = (
    ("swap", movement_factory("swap")),
    ("swap-literal", movement_factory("swap-literal")),
    ("swap-clients", movement_factory("swap", density_source="clients")),
    ("swap-both", movement_factory("swap", density_source="both")),
    ("random", movement_factory("random")),
    ("combined", movement_factory("combined")),
)


def multichain_bench_spec(seed: int = 20090629) -> InstanceSpec:
    """Paper-scale portfolio workload: 128 routers on 32x32, 192 clients."""
    return InstanceSpec(
        name="multichain-bench",
        width=32,
        height=32,
        n_routers=128,
        n_clients=192,
        distribution="normal",
        distribution_params={"mean": 16.0, "std": 3.2},
        min_radius=2.0,
        max_radius=8.0,
        seed=seed,
    )


def chain_inputs(problem, label: str, seed_base: int, n_seeds: int):
    """Per-chain generators + initial placements under the RNG contract."""
    rngs = [
        np.random.default_rng((seed_base, label_key(label), seed))
        for seed in range(n_seeds)
    ]
    initials = [
        Placement.random(problem.grid, problem.n_routers, rng) for rng in rngs
    ]
    return initials, rngs


def run_serial(problem, factory, label, seed_base, n_seeds, candidates, phases):
    """The serial per-chain loop (one fresh search + evaluator per seed)."""
    results = []
    for seed in range(n_seeds):
        rng = np.random.default_rng((seed_base, label_key(label), seed))
        initial = Placement.random(problem.grid, problem.n_routers, rng)
        search = NeighborhoodSearch(
            factory(), n_candidates=candidates, max_phases=phases,
            stall_phases=None,
        )
        results.append(search.run(Evaluator(problem), initial, rng))
    return results


def run_multichain(
    problem, factory, label, seed_base, n_seeds, candidates, phases, workers=None
):
    """The lockstep portfolio (all seeds of one movement at once)."""
    initials, rngs = chain_inputs(problem, label, seed_base, n_seeds)
    search = MultiChainSearch(
        factory, n_candidates=candidates, max_phases=phases, stall_phases=None
    )
    return search.run(problem, initials, rngs, workers=workers)


def check_parity(serial, multi, label: str) -> None:
    """Per-chain results must be bit-identical, traces included."""
    for chain, (a, b) in enumerate(zip(serial, multi)):
        ok = (
            a.best.fitness == b.best.fitness
            and a.best.placement.cells == b.best.placement.cells
            and a.best.metrics == b.best.metrics
            and a.n_phases == b.n_phases
            and a.n_evaluations == b.n_evaluations
            and len(a.trace) == len(b.trace)
            and all(
                ra.as_dict() == rb.as_dict()
                for ra, rb in zip(a.trace, b.trace)
            )
        )
        if not ok:
            raise AssertionError(
                f"multichain diverged from serial on {label} chain {chain}:\n"
                f"  serial:     {a.best.summary()}\n"
                f"  multichain: {b.best.summary()}"
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=30,
                        help="chains per movement (default 30)")
    parser.add_argument("--phases", type=int, default=30,
                        help="search phases per chain (default 30)")
    parser.add_argument("--candidates", type=int, default=16,
                        help="candidate moves per phase (default 16)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timed repetitions per stage; the minimum "
                        "counts (default 3 — single-shot timings are "
                        "noise-fragile on loaded machines)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI crash check: 4 seeds, 6 phases, 1 round, "
                        "no perf assertion")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the portfolio speedup >= X")
    parser.add_argument("--workers", type=int, default=None,
                        help="also time lockstep x process-pool composition")
    parser.add_argument("--seed", type=int, default=20090629)
    add_json_argument(parser)
    args = parser.parse_args(argv)

    n_seeds = 4 if args.smoke else args.seeds
    phases = 6 if args.smoke else args.phases
    rounds = 1 if args.smoke else max(1, args.rounds)
    problem = multichain_bench_spec(args.seed).generate()

    print("=" * 72)
    print(
        f"multichain bench: grid {problem.grid.width}x{problem.grid.height}, "
        f"{problem.n_routers} routers, {problem.n_clients} clients; "
        f"{len(PORTFOLIO)} movements x {n_seeds} seeds, "
        f"{phases} phases x {args.candidates} candidates, "
        f"best of {rounds} round(s)"
    )
    print("=" * 72)

    header = f"{'movement':14s} {'serial (s)':>11} {'lockstep (s)':>13} {'speedup':>9}"
    print(header)
    print("-" * len(header))
    per_movement = {}
    total_serial = total_multi = 0.0
    for label, factory in PORTFOLIO:
        serial_seconds = multi_seconds = float("inf")
        serial = multi = None
        # Serial and lockstep interleave per round and the minimum
        # counts, so ambient load on either stage cannot skew the ratio.
        for _ in range(rounds):
            start = time.perf_counter()
            serial = run_serial(
                problem, factory, label, args.seed, n_seeds,
                args.candidates, phases,
            )
            serial_seconds = min(serial_seconds, time.perf_counter() - start)
            start = time.perf_counter()
            multi = run_multichain(
                problem, factory, label, args.seed, n_seeds,
                args.candidates, phases,
            )
            multi_seconds = min(multi_seconds, time.perf_counter() - start)
        check_parity(serial, multi, label)
        total_serial += serial_seconds
        total_multi += multi_seconds
        speedup = serial_seconds / multi_seconds
        per_movement[label] = {
            "serial_seconds": serial_seconds,
            "multichain_seconds": multi_seconds,
            "speedup": speedup,
        }
        print(
            f"{label:14s} {serial_seconds:>11.2f} {multi_seconds:>13.2f} "
            f"{speedup:>8.1f}x"
        )
    portfolio_speedup = total_serial / total_multi
    print("-" * len(header))
    print(
        f"{'portfolio':14s} {total_serial:>11.2f} {total_multi:>13.2f} "
        f"{portfolio_speedup:>8.1f}x"
    )
    print("parity: per-chain results and traces bit-identical on every chain")

    workers_seconds = None
    if args.workers is not None and args.workers > 1:
        start = time.perf_counter()
        for label, factory in PORTFOLIO:
            run_multichain(
                problem, factory, label, args.seed, n_seeds,
                args.candidates, phases, workers=args.workers,
            )
        workers_seconds = time.perf_counter() - start
        print(
            f"lockstep x {args.workers} workers: {workers_seconds:.2f}s "
            f"({total_serial / workers_seconds:.1f}x vs serial)"
        )

    payload = {
        "n_routers": problem.n_routers,
        "n_clients": problem.n_clients,
        "n_movements": len(PORTFOLIO),
        "n_seeds": n_seeds,
        "phases": phases,
        "candidates_per_phase": args.candidates,
        "rounds": rounds,
        "smoke": args.smoke,
        "serial_seconds": total_serial,
        "multichain_seconds": total_multi,
        "portfolio_speedup": portfolio_speedup,
        "per_movement": per_movement,
    }
    if workers_seconds is not None:
        payload["workers"] = args.workers
        payload["workers_seconds"] = workers_seconds
    write_bench_json("multichain", payload, args.json)

    if args.min_speedup is not None and not args.smoke:
        if portfolio_speedup < args.min_speedup:
            print(
                f"FAIL: portfolio speedup {portfolio_speedup:.1f}x below "
                f"required {args.min_speedup:.1f}x"
            )
            return 1
        print(
            f"OK: portfolio speedup {portfolio_speedup:.1f}x >= "
            f"{args.min_speedup:.1f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
