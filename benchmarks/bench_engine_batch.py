"""Benchmark: batched + delta evaluation engine vs. the scalar path.

Workload: one neighborhood-search phase at production scale — ``K``
single-move candidate placements off an incumbent (paper Algorithm 2's
"pre-fixed number of movements") on a 32x32 grid with 128 routers.
Three engines evaluate the identical candidate set:

* **scalar** — ``Evaluator.evaluate`` in a loop (the reference path),
* **batch** — ``BatchEvaluator.evaluate_many`` (one vectorized pass),
* **delta** — ``DeltaEvaluator.propose`` per candidate (incremental
  row/column updates off the cached incumbent).

The script asserts bit-identical results across engines before timing,
prints per-engine medians and the speedup over scalar.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_batch.py [--quick]

``--quick`` (or ``REPRO_SCALE=quick``, the default scale) trims rounds
for CI smoke runs; ``--min-speedup X`` turns the printed batch speedup
into a hard exit-code assertion for acceptance runs.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

import numpy as np

from _common import add_json_argument, write_bench_json
from repro.core.engine import BatchEvaluator, DeltaEvaluator
from repro.core.evaluation import Evaluation, Evaluator
from repro.core.solution import Placement
from repro.instances.generator import InstanceSpec
from repro.neighborhood.moves import Move, RelocateMove


def engine_bench_spec(seed: int = 20090629) -> InstanceSpec:
    """Paper-scale engine workload: 128 routers on 32x32, 192 clients."""
    return InstanceSpec(
        name="engine-bench",
        width=32,
        height=32,
        n_routers=128,
        n_clients=192,
        distribution="normal",
        distribution_params={"mean": 16.0, "std": 3.2},
        min_radius=2.0,
        max_radius=8.0,
        seed=seed,
    )


def sample_phase(
    problem, incumbent: Placement, rng: np.random.Generator, n_candidates: int
) -> list[Move]:
    """``n_candidates`` random single-router moves off the incumbent."""
    moves: list[Move] = []
    while len(moves) < n_candidates:
        router = int(rng.integers(0, problem.n_routers))
        cell = problem.grid.random_free_cell(incumbent.occupied, rng)
        moves.append(RelocateMove(router_id=router, target=cell))
    return moves


def check_parity(
    scalar: list[Evaluation], other: list[Evaluation], name: str
) -> None:
    for reference, candidate in zip(scalar, other):
        if (
            candidate.metrics != reference.metrics
            or candidate.fitness != reference.fitness
            or not np.array_equal(candidate.giant_mask, reference.giant_mask)
        ):
            raise AssertionError(
                f"{name} engine diverged from scalar:\n"
                f"  scalar: {reference.summary()}\n"
                f"  {name}: {candidate.summary()}"
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--candidates", type=int, default=48,
                        help="candidate moves per phase (default 48)")
    parser.add_argument("--rounds", type=int, default=20,
                        help="timed phases per engine (default 20)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: few rounds, no perf assertion")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless batch speedup over scalar >= X")
    parser.add_argument("--seed", type=int, default=20090629)
    add_json_argument(parser)
    args = parser.parse_args(argv)

    rounds = 3 if args.quick else args.rounds
    problem = engine_bench_spec(args.seed).generate()
    rng = np.random.default_rng(args.seed)
    incumbent = Placement.random(problem.grid, problem.n_routers, rng)
    # A search loop always evaluates the incumbent before deriving
    # neighbors, so its positions cache is warm; derived placements then
    # seed theirs from it (for every engine alike).
    incumbent.positions_array()

    # Pre-sample every phase's moves so all engines time the identical
    # workload and no RNG cost lands inside a measured section.  Each
    # engine gets its own placement objects (same cells) so nobody
    # benefits from another engine having warmed a placement's lazily
    # cached positions array.
    phases = [
        sample_phase(problem, incumbent, rng, args.candidates)
        for _ in range(rounds)
    ]

    def fresh_placements() -> list[list[Placement]]:
        return [[move.apply(incumbent) for move in phase] for phase in phases]

    print("=" * 72)
    print(
        f"engine bench: grid {problem.grid.width}x{problem.grid.height}, "
        f"{problem.n_routers} routers, {problem.n_clients} clients, "
        f"{args.candidates} candidates/phase, {rounds} rounds"
    )
    print("=" * 72)

    scalar_times: list[float] = []
    scalar_results: list[list[Evaluation]] = []
    scalar = Evaluator(problem)
    for phase_placements in fresh_placements():
        start = time.perf_counter()
        scalar_results.append([scalar.evaluate(p) for p in phase_placements])
        scalar_times.append(time.perf_counter() - start)

    batch_times: list[float] = []
    batch = BatchEvaluator(problem)
    for index, phase_placements in enumerate(fresh_placements()):
        start = time.perf_counter()
        results = batch.evaluate_many(phase_placements)
        batch_times.append(time.perf_counter() - start)
        check_parity(scalar_results[index], results, "batch")

    delta_times: list[float] = []
    delta = DeltaEvaluator(Evaluator(problem))
    delta.reset(incumbent)
    for index, phase in enumerate(phases):
        start = time.perf_counter()
        results = [delta.propose(move) for move in phase]
        delta_times.append(time.perf_counter() - start)
        check_parity(scalar_results[index], results, "delta")

    scalar_median = statistics.median(scalar_times)
    batch_median = statistics.median(batch_times)
    delta_median = statistics.median(delta_times)
    batch_speedup = scalar_median / batch_median
    delta_speedup = scalar_median / delta_median

    per = args.candidates
    print(f"{'engine':<10} {'phase (ms)':>12} {'per eval (us)':>14} {'speedup':>9}")
    for name, median, speedup in [
        ("scalar", scalar_median, 1.0),
        ("batch", batch_median, batch_speedup),
        ("delta", delta_median, delta_speedup),
    ]:
        print(
            f"{name:<10} {median * 1e3:>12.3f} {median / per * 1e6:>14.1f} "
            f"{speedup:>8.1f}x"
        )
    print("parity: batch and delta bit-identical to scalar on every phase")

    write_bench_json(
        "engine_batch",
        {
            "n_routers": problem.n_routers,
            "n_clients": problem.n_clients,
            "candidates_per_phase": args.candidates,
            "rounds": rounds,
            "scalar_median_seconds": scalar_median,
            "batch_median_seconds": batch_median,
            "delta_median_seconds": delta_median,
            "batch_speedup": batch_speedup,
            "delta_speedup": delta_speedup,
        },
        args.json,
    )

    if args.min_speedup is not None and not args.quick:
        if batch_speedup < args.min_speedup:
            print(
                f"FAIL: batch speedup {batch_speedup:.1f}x below required "
                f"{args.min_speedup:.1f}x"
            )
            return 1
        print(f"OK: batch speedup {batch_speedup:.1f}x >= {args.min_speedup:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
