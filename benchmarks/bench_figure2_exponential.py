"""Figure 2 — evolution of the giant component when ad hoc methods
initialize the GA (Exponential distribution of client mesh nodes).

Paper shape: "HotSpot is the best initializing method followed by Cross
and Diag methods; Corners and Random performed worst."
"""

from __future__ import annotations

from _common import bench_scale, print_header, run_once

from repro.experiments.figures import run_ga_figure
from repro.experiments.reporting import format_figure


def test_figure2_exponential(benchmark):
    scale = bench_scale()
    result = run_once(
        benchmark, run_ga_figure, "exponential", scale=scale, seed=1
    )

    print_header(
        "Figure 2 (GA evolution, Exponential distribution) — regenerated"
    )
    print(format_figure(result))
    print("final ranking:", ", ".join(result.ranking_by_final_giant()))

    # Curves plot the giant of the best-by-fitness individual (may dip
    # when fitness trades connectivity for coverage); the robust shape
    # is the GA lift over every starting point.
    for series in result.series:
        assert series.final_giant >= series.giant_sizes[0]
