"""Resilience smoke for CI: chaos parity + kill-mid-run checkpoint resume.

Two end-to-end guarantees, exercised for real rather than simulated:

1. **Chaos parity** — a ScenarioFleet run with injected worker crashes
   and compiled-tier poison (``REPRO_FAULT_INJECT``) completes through
   retry/degradation with results bit-identical to a fault-free serial
   run.
2. **Kill/resume** — a checkpointed fleet run is started in a child
   process and SIGKILLed partway through the grid; resuming from the
   checkpoint directory produces results identical to an uninterrupted
   run.

Run directly (``PYTHONPATH=src python benchmarks/smoke_resilience.py``);
exits non-zero on any parity violation.  ``--child`` is the internal
entry point for the killed run.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import time
import warnings

from repro.instances.catalog import tiny_spec
from repro.resilience import (
    FAULT_ENV,
    SupervisionReport,
    scenario_result_to_dict,
    stable_scenario_dict,
)
from repro.scenario import Scenario, ScenarioFleet

SEED = 9


def build_fleet(workers=None):
    """The shared grid: parent and killed child must build it identically."""
    problem = tiny_spec(seed=3).generate()
    return ScenarioFleet(
        [
            Scenario.client_drift(problem, 2),
            Scenario.router_outages(problem, 2),
        ],
        [("search:swap", {"n_candidates": 4})],
        n_seeds=2,
        budget=4,
        warm="both",
        workers=workers,
    )


def stable(report):
    return [
        (
            run.scenario,
            run.solver,
            run.warm,
            run.replicate,
            stable_scenario_dict(scenario_result_to_dict(run.result)),
        )
        for run in report.runs
    ]


def chaos_parity():
    os.environ.pop(FAULT_ENV, None)
    clean = build_fleet().run(seed=SEED)

    os.environ[FAULT_ENV] = "kill@0,crash-compiled@1"
    supervision = SupervisionReport()
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            injected = build_fleet(workers=2).run(
                seed=SEED, report=supervision
            )
    finally:
        os.environ.pop(FAULT_ENV, None)

    assert stable(injected) == stable(clean), (
        "fleet results diverged after injected-fault recovery"
    )
    assert supervision.n_failures >= 1, "fault plan injected nothing"
    print(
        f"chaos parity OK: recovered from {supervision.summary()}; "
        "results bit-identical to the fault-free serial run"
    )


def kill_resume(tmp_dir):
    uninterrupted = build_fleet().run(seed=SEED)
    total_cells = len(uninterrupted.runs)

    env = dict(os.environ)
    env.pop(FAULT_ENV, None)
    # Deterministic per-task delays: results are untouched, but every
    # shard takes >= 0.4 s, so the kill below reliably lands mid-grid.
    env[FAULT_ENV] = ",".join(f"delay@{i}:0.4" for i in range(16))
    env["PYTHONPATH"] = "src"
    child = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--child", tmp_dir],
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            cells = [
                name
                for name in (
                    os.listdir(tmp_dir) if os.path.isdir(tmp_dir) else []
                )
                if name.endswith(".json") and name != "manifest.json"
            ]
            if cells or child.poll() is not None:
                break
            time.sleep(0.005)
        if child.poll() is None:
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
            print(
                f"killed the checkpointed run after {len(cells)} of "
                f"{total_cells} cells"
            )
        else:
            print(
                "warning: child finished before the kill; "
                "resume degenerates to a full restore"
            )
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)

    resumed = build_fleet().run(seed=SEED, resume_from=tmp_dir)
    assert stable(resumed) == stable(uninterrupted), (
        "resumed run diverged from the uninterrupted run"
    )
    print(
        f"kill/resume OK: resumed run matches the uninterrupted run "
        f"across all {total_cells} cells"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--child",
        metavar="DIR",
        help="internal: run the checkpointed fleet into DIR and exit",
    )
    args = parser.parse_args()

    if args.child:
        build_fleet().run(seed=SEED, checkpoint=args.child)
        return

    import tempfile

    chaos_parity()
    with tempfile.TemporaryDirectory() as tmp:
        kill_resume(os.path.join(tmp, "fleet"))
    print("resilience smoke passed")


if __name__ == "__main__":
    main()
