"""Speed of the seven ad hoc methods.

The paper motivates ad hoc methods as "very fast" with HotSpot having "a
greater computational cost ... due to the computation of denseness
property".  This bench times each method on the paper instance —
expect HotSpot to be the slowest but still far below a single GA
generation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adhoc.registry import PAPER_METHOD_ORDER, make_method
from repro.instances.catalog import paper_normal


@pytest.fixture(scope="module")
def problem():
    return paper_normal().generate()


@pytest.mark.parametrize("name", PAPER_METHOD_ORDER)
def test_adhoc_method_speed(benchmark, problem, name):
    method = make_method(name)
    rng = np.random.default_rng(2)
    placement = benchmark(method.place, problem, rng)
    assert len(placement) == problem.n_routers
