"""Micro-benchmarks of the evaluation hot path.

Timings for the pieces every search iteration pays for: full placement
evaluation, adjacency construction, component decomposition, coverage
and the density map.  Unlike the table/figure benches these use real
pytest-benchmark statistics (many rounds).
"""

from __future__ import annotations

import numpy as np

from repro.adhoc import RandomPlacement
from repro.core.connectivity import connected_components
from repro.core.density import DensityMap
from repro.core.evaluation import Evaluator
from repro.core.network import adjacency_matrix, link_edges
from repro.instances.catalog import paper_normal


def _setup():
    problem = paper_normal().generate()
    placement = RandomPlacement().place(problem, np.random.default_rng(0))
    return problem, placement


def test_micro_full_evaluation(benchmark):
    problem, placement = _setup()
    evaluator = Evaluator(problem)
    benchmark(evaluator.evaluate, placement)


def test_micro_adjacency_matrix(benchmark):
    problem, placement = _setup()
    positions = placement.positions_array()
    radii = problem.fleet.radii
    benchmark(adjacency_matrix, positions, radii, problem.link_rule)


def test_micro_connected_components(benchmark):
    problem, placement = _setup()
    adjacency = adjacency_matrix(
        placement.positions_array(), problem.fleet.radii, problem.link_rule
    )
    edges = link_edges(adjacency)
    benchmark(connected_components, problem.n_routers, edges)


def test_micro_density_map(benchmark):
    problem, _ = _setup()
    benchmark(
        DensityMap.build, problem.grid, problem.clients.positions, 16, 16
    )


def test_micro_adhoc_placement(benchmark):
    problem, _ = _setup()
    method = RandomPlacement()
    rng = np.random.default_rng(1)
    benchmark(method.place, problem, rng)
