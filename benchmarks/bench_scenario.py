"""Benchmark: warm-start re-optimization vs cold re-solves on a dynamic scenario.

Workload: the paper's Normal-distribution instance (64 routers, 128x128
grid, 192 clients) under a 20-step client-drift scenario — every step,
the whole client population takes a Gaussian step (sigma 2 cells) and
the deployment is re-optimized with the paper's swap-movement
neighborhood search (32 candidates/phase, up to 64 phases, stall after
8 phases without improvement).  Two runs of the *identical* instance
sequence:

* **cold** — every step solved from a fresh random initial placement
  (``ScenarioRunner(warm=False)``): the static-paper workflow applied
  per step.
* **warm** — each step seeded with the previous step's best placement
  and the delta engine's exported incumbent cache
  (:class:`~repro.core.engine.handoff.IncumbentCache`): the
  re-optimization workflow of :mod:`repro.scenario`.

The warm start lands next to the optimum of a barely-changed instance,
so the stall rule stops the search after a fraction of the cold run's
phases — the per-step speedup this bench pins (acceptance: >= 3x) —
while mean solution quality must stay at least as good as cold's.  A
second stage micro-times the incumbent-cache handoff itself: under
client drift the warm placement's router adjacency is still valid, so a
cache-seeded ``DeltaEvaluator.reset`` skips that rebuild entirely.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_scenario.py [--smoke]

``--smoke`` trims steps/budget for CI crash checks (no perf assertion);
``--min-speedup`` overrides the default 3.0x acceptance gate.  A
machine-readable record lands in ``BENCH_scenario.json`` (repo root by
default).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from _common import add_json_argument, write_bench_json
from repro.core.engine.delta import DeltaEvaluator
from repro.core.evaluation import Evaluator
from repro.instances.catalog import paper_normal
from repro.scenario import Scenario, ScenarioRunner
from repro.solvers import make_solver


def drift_scenario(problem, n_steps: int, sigma: float) -> Scenario:
    """The bench workload: whole-population Gaussian drift per step."""
    return Scenario.client_drift(problem, n_steps, sigma=sigma)


def run_arm(
    solver, scenario: Scenario, seed: int, budget: int, warm: bool
):
    """One full scenario pass; returns its ScenarioResult."""
    runner = ScenarioRunner(solver, budget=budget, warm=warm)
    return runner.run(scenario, seed=seed)


def time_cache_handoff(problem, scenario: Scenario, seed: int) -> dict:
    """Micro-time a cold vs cache-seeded ``DeltaEvaluator.reset``.

    The cache comes from a converged run on step 0; the reset happens on
    step 1's problem (clients drifted, routers untouched), where the
    cached adjacency is still valid and the coverage must be rebuilt.
    """
    steps = scenario.unfold(np.random.SeedSequence(seed).spawn(2)[0])
    rng = np.random.default_rng(seed)
    from repro.core.solution import Placement

    placement = Placement.random(problem.grid, problem.n_routers, rng)
    donor = DeltaEvaluator(Evaluator(problem))
    donor.reset(placement)
    cache = donor.export_cache()

    drifted = steps[1].problem
    rounds = 5
    cold_seconds = warm_seconds = float("inf")
    for _ in range(rounds):
        engine = DeltaEvaluator(Evaluator(drifted))
        start = time.perf_counter()
        cold_eval = engine.reset(placement)
        cold_seconds = min(cold_seconds, time.perf_counter() - start)
        engine = DeltaEvaluator(Evaluator(drifted))
        start = time.perf_counter()
        warm_eval = engine.reset(placement, cache=cache)
        warm_seconds = min(warm_seconds, time.perf_counter() - start)
    if not (
        cold_eval.fitness == warm_eval.fitness
        and cold_eval.metrics == warm_eval.metrics
    ):
        raise AssertionError(
            "cache-seeded reset diverged from the cold rebuild: "
            f"{cold_eval.summary()} vs {warm_eval.summary()}"
        )
    return {
        "cold_reset_seconds": cold_seconds,
        "cached_reset_seconds": warm_seconds,
        "reset_speedup": cold_seconds / warm_seconds,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=20,
                        help="drift steps after the initial deployment "
                        "(default 20)")
    parser.add_argument("--sigma", type=float, default=2.0,
                        help="per-step client drift sigma in cells")
    parser.add_argument("--budget", type=int, default=64,
                        help="max search phases per step (default 64)")
    parser.add_argument("--candidates", type=int, default=32,
                        help="candidate moves per phase (default 32)")
    parser.add_argument("--stall", type=int, default=8,
                        help="stop a step after this many non-improving "
                        "phases (default 8)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timed repetitions; the minimum counts "
                        "(default 3)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI crash check: 5 steps, budget 12, 1 round, "
                        "no perf assertion")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fail unless warm re-optimization is >= X "
                        "times faster per step (default 3.0)")
    parser.add_argument("--seed", type=int, default=20090629)
    add_json_argument(parser)
    args = parser.parse_args(argv)

    n_steps = 5 if args.smoke else args.steps
    budget = 12 if args.smoke else args.budget
    rounds = 1 if args.smoke else max(1, args.rounds)

    problem = paper_normal().generate()
    scenario = drift_scenario(problem, n_steps, args.sigma)
    solver = make_solver(
        "search:swap",
        n_candidates=args.candidates,
        stall_phases=args.stall,
    )

    print("=" * 72)
    print(
        f"scenario bench: {scenario.name} on {problem.grid.width}x"
        f"{problem.grid.height}, {problem.n_routers} routers, "
        f"{problem.n_clients} clients; search:swap, "
        f"{args.candidates} candidates x <= {budget} phases "
        f"(stall {args.stall}), best of {rounds} round(s)"
    )
    print("=" * 72)

    cold_seconds = warm_seconds = float("inf")
    cold = warm = None
    # Arms interleave per round and the minimum counts, so ambient load
    # cannot skew the ratio.
    for _ in range(rounds):
        start = time.perf_counter()
        cold = run_arm(solver, scenario, args.seed, budget, warm=False)
        cold_seconds = min(cold_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        warm = run_arm(solver, scenario, args.seed, budget, warm=True)
        warm_seconds = min(warm_seconds, time.perf_counter() - start)

    n_reopt = n_steps  # steps 1..n are the re-optimizations
    cold_step = cold.reopt_seconds() / n_reopt
    warm_step = warm.reopt_seconds() / n_reopt
    step_speedup = cold_step / warm_step
    eval_ratio = cold.reopt_evaluations() / max(1, warm.reopt_evaluations())
    quality_delta = warm.mean_fitness() - cold.mean_fitness()

    header = f"{'arm':6s} {'re-opt s/step':>14} {'evals/step':>11} {'mean fitness':>13}"
    print(header)
    print("-" * len(header))
    for label, result, per_step in (
        ("cold", cold, cold_step),
        ("warm", warm, warm_step),
    ):
        print(
            f"{label:6s} {per_step:>14.3f} "
            f"{result.reopt_evaluations() / n_reopt:>11.0f} "
            f"{result.mean_fitness():>13.4f}"
        )
    print("-" * len(header))
    print(
        f"warm-start speedup: {step_speedup:.1f}x wall-clock per step "
        f"({eval_ratio:.1f}x fewer evaluations), "
        f"quality delta {quality_delta:+.4f}"
    )

    handoff = time_cache_handoff(problem, scenario, args.seed)
    print(
        f"incumbent-cache reset: cold {handoff['cold_reset_seconds'] * 1e3:.2f}ms "
        f"vs cached {handoff['cached_reset_seconds'] * 1e3:.2f}ms "
        f"({handoff['reset_speedup']:.1f}x) — results identical"
    )

    payload = {
        "scenario": scenario.name,
        "n_routers": problem.n_routers,
        "n_clients": problem.n_clients,
        "n_steps": n_steps,
        "sigma": args.sigma,
        "budget": budget,
        "candidates_per_phase": args.candidates,
        "stall_phases": args.stall,
        "rounds": rounds,
        "smoke": args.smoke,
        "cold_seconds_per_step": cold_step,
        "warm_seconds_per_step": warm_step,
        "step_speedup": step_speedup,
        "evaluation_ratio": eval_ratio,
        "cold_mean_fitness": cold.mean_fitness(),
        "warm_mean_fitness": warm.mean_fitness(),
        "quality_delta": quality_delta,
        "cache_handoff": handoff,
    }
    write_bench_json("scenario", payload, args.json)

    if not args.smoke:
        if step_speedup < args.min_speedup:
            print(
                f"FAIL: warm-start speedup {step_speedup:.1f}x below "
                f"required {args.min_speedup:.1f}x"
            )
            return 1
        if quality_delta < -0.02:
            print(
                f"FAIL: warm mean fitness trails cold by {-quality_delta:.4f} "
                "(> 0.02 tolerance)"
            )
            return 1
        print(
            f"OK: speedup {step_speedup:.1f}x >= {args.min_speedup:.1f}x "
            "with quality held"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
