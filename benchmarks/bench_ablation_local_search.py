"""Ablation D — the paper's announced future work: "full featured local
search methods".

Runs the paper's neighborhood search, simulated annealing and tabu
search (the authors' own follow-up WMN-SA / WMN-TS directions) on the
Fig. 4 instance under an equal evaluation budget and compares outcomes.
"""

from __future__ import annotations

import numpy as np
from _common import bench_scale, print_header, run_once

from repro.adhoc import RandomPlacement
from repro.core.evaluation import Evaluator
from repro.instances.catalog import paper_normal
from repro.neighborhood.annealing import SimulatedAnnealing
from repro.neighborhood.movements import SwapMovement
from repro.neighborhood.search import NeighborhoodSearch
from repro.neighborhood.tabu import TabuSearch


def _compare(scale):
    problem = paper_normal().generate()
    initial = RandomPlacement().place(problem, np.random.default_rng(4))
    algorithms = {
        "neighborhood-search": NeighborhoodSearch(
            SwapMovement(),
            n_candidates=scale.ns_candidates,
            max_phases=scale.ns_phases,
            stall_phases=None,
        ),
        "simulated-annealing": SimulatedAnnealing(
            SwapMovement(),
            max_phases=scale.ns_phases,
            moves_per_phase=scale.ns_candidates,
        ),
        "tabu-search": TabuSearch(
            SwapMovement(),
            tenure=8,
            n_candidates=scale.ns_candidates,
            max_phases=scale.ns_phases,
        ),
    }
    outcomes = {}
    for label, algorithm in algorithms.items():
        result = algorithm.run(
            Evaluator(problem), initial, np.random.default_rng(6)
        )
        outcomes[label] = result
    return outcomes


def test_ablation_local_search(benchmark):
    scale = bench_scale()
    outcomes = run_once(benchmark, _compare, scale)

    print_header(
        "Ablation D — neighborhood search vs simulated annealing vs tabu"
    )
    print(
        f"{'algorithm':22s} {'giant':>6s} {'coverage':>9s} "
        f"{'fitness':>9s} {'evals':>7s}"
    )
    for label, result in outcomes.items():
        print(
            f"{label:22s} {result.best.giant_size:6d} "
            f"{result.best.covered_clients:9d} {result.best.fitness:9.4f} "
            f"{result.n_evaluations:7d}"
        )

    start = min(r.trace.giant_sizes[0] for r in outcomes.values())
    for result in outcomes.values():
        # Every full-featured method improves on the initial solution.
        assert result.best.giant_size >= start
