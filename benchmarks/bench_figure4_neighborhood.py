"""Figure 4 — evolution of neighborhood search for Swap and Random
movements (128x128 grid, Normal distribution of client mesh nodes).

Paper shape: "swap movement achieves fast improvements on the size of
the giant component" — the Swap curve dominates the Random curve and
climbs towards the full fleet within ~60 phases, while Random improves
more slowly.
"""

from __future__ import annotations

from _common import bench_scale, print_header, run_once

from repro.experiments.figures import run_ns_figure
from repro.experiments.reporting import format_figure


def test_figure4_neighborhood(benchmark):
    scale = bench_scale()
    result = run_once(benchmark, run_ns_figure, scale=scale, seed=1)

    print_header(
        "Figure 4 (neighborhood search: Swap vs Random movement) — regenerated"
    )
    print(format_figure(result))

    swap = result.series_by_label("Swap")
    random = result.series_by_label("Random")
    # Both searches improve on the initial solution...
    assert swap.final_giant >= swap.giant_sizes[0]
    assert random.final_giant >= random.giant_sizes[0]
    # ...and the swap movement ends ahead (the paper's headline).
    assert swap.final_giant >= random.final_giant
