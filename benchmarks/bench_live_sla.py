"""Benchmark: live re-optimization under per-event latency SLAs.

Workload: the paper's Normal-distribution instance (64 routers, 128x128
grid, 192 clients) under a client-drift scenario, served three ways:

* **unbounded** — the plain :class:`~repro.scenario.runner.ScenarioRunner`
  walk (warm starts, no deadlines): the quality reference and the
  regret baseline.
* **no-pressure live** — :class:`~repro.anytime.live.LiveRunner` on a
  deterministic simulated clock with a generous SLA.  Asserted
  **bit-identical** per step to the unbounded walk (same placements,
  fitness, evaluation counts): the deadline plumbing must be free when
  it never fires.
* **pressured live** — the real-clock event loop with a tight SLA and
  arrival interval.  Every solve runs under a cooperative
  :class:`~repro.anytime.deadline.Deadline` and the degradation ladder
  sheds load when the loop falls behind.  Acceptance (full mode): p95
  response latency <= the SLA, with mean fitness regret against the
  unbounded arm bounded by ``--max-regret``.

A fourth stage times deadline-check overhead: one unbounded solve with
``deadline=None`` against the same solve under a never-firing deadline
(acceptance: < 2% wall-clock overhead — the checks are two clock reads
per phase).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_live_sla.py [--smoke]

``--smoke`` trims the workload for CI and runs the *pressured* arm on
the simulated clock too, so every number in the record is deterministic;
the latency/overhead gates are skipped (simulated latencies are a cost
model, not a measurement).  A machine-readable record lands in
``BENCH_live_sla.json`` (repo root by default).
"""

from __future__ import annotations

import argparse
import sys
import time

from _common import add_json_argument, write_bench_json
from repro.anytime import Deadline, LiveRunner, SimulatedClock
from repro.instances.catalog import paper_normal
from repro.scenario import Scenario, ScenarioRunner
from repro.solvers import make_solver


def step_fingerprint(result) -> tuple:
    """The bit-identity fingerprint of one step's solve."""
    return (
        tuple(map(tuple, result.best.placement.positions_array())),
        result.best.fitness,
        result.n_evaluations,
        result.n_phases,
        result.stopped_by,
    )


def assert_no_pressure_parity(baseline, report) -> None:
    """The no-pressure live arm must replay the scenario walk exactly."""
    base = [step_fingerprint(step.result) for step in baseline.steps]
    live = [step_fingerprint(event.result) for event in report.responded]
    if report.shed_count or report.deadline_hits:
        raise AssertionError(
            "no-pressure live arm shed or truncated work: "
            f"{report.shed_count} shed, {report.deadline_hits} deadline hits"
        )
    if base != live:
        raise AssertionError(
            "no-pressure live arm diverged from the unbounded scenario walk"
        )


def time_deadline_overhead(problem, budget: int, candidates: int,
                           rounds: int, seed: int) -> dict:
    """Min-of-rounds wall clock of one solve, with and without a deadline.

    The deadline never fires (absurdly far expiry), so the delta is pure
    check overhead: two monotonic-clock reads per phase boundary.
    """
    solver = make_solver("search:swap", n_candidates=candidates,
                         stall_phases=None)
    # Warm the allocator/caches once so round 1 isn't systematically
    # slower for whichever arm runs first; min-of-rounds interleaved
    # arms absorb the rest of the ambient noise.
    solver.solve(problem, seed=seed, budget=budget)
    bare_seconds = guarded_seconds = float("inf")
    bare = guarded = None
    for _ in range(rounds):
        start = time.perf_counter()
        bare = solver.solve(problem, seed=seed, budget=budget)
        bare_seconds = min(bare_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        guarded = solver.solve(
            problem, seed=seed, budget=budget,
            deadline=Deadline.after(1e9),
        )
        guarded_seconds = min(guarded_seconds, time.perf_counter() - start)
    if step_fingerprint(bare) != step_fingerprint(guarded):
        raise AssertionError(
            "a never-firing deadline changed the solve result"
        )
    return {
        "bare_seconds": bare_seconds,
        "guarded_seconds": guarded_seconds,
        "overhead_fraction": guarded_seconds / bare_seconds - 1.0,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=20,
                        help="drift events after the initial deployment "
                        "(default 20)")
    parser.add_argument("--sigma", type=float, default=2.0,
                        help="per-event client drift sigma in cells")
    parser.add_argument("--budget", type=int, default=64,
                        help="max search phases per event (default 64)")
    parser.add_argument("--candidates", type=int, default=32,
                        help="candidate moves per phase (default 32)")
    parser.add_argument("--stall", type=int, default=8,
                        help="stop an event after this many non-improving "
                        "phases (default 8)")
    parser.add_argument("--sla", type=float, default=0.25,
                        help="per-event response SLA in seconds "
                        "(default 0.25)")
    parser.add_argument("--interval", type=float, default=0.1,
                        help="seconds between arrivals (default 0.1 — "
                        "faster than the cold step, so the ladder and "
                        "deadlines actually engage)")
    parser.add_argument("--max-regret", type=float, default=0.05,
                        help="max mean fitness regret of the pressured arm "
                        "vs unbounded (default 0.05)")
    parser.add_argument("--max-overhead", type=float, default=0.02,
                        help="max deadline-check overhead fraction "
                        "(default 0.02)")
    parser.add_argument("--rounds", type=int, default=9,
                        help="overhead-timing repetitions; the minimum "
                        "counts (default 9)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: small workload, simulated clock "
                        "everywhere, no wall-clock gates")
    parser.add_argument("--seed", type=int, default=20090629)
    add_json_argument(parser)
    args = parser.parse_args(argv)

    n_steps = 5 if args.smoke else args.steps
    budget = 12 if args.smoke else args.budget
    candidates = 8 if args.smoke else args.candidates
    rounds = 1 if args.smoke else max(1, args.rounds)
    sla = args.sla
    interval = args.interval

    problem = paper_normal().generate()
    scenario = Scenario.client_drift(problem, n_steps, sigma=args.sigma)
    solver_kwargs = dict(n_candidates=candidates, stall_phases=args.stall)

    print("=" * 72)
    print(
        f"live SLA bench: {scenario.name} on {problem.grid.width}x"
        f"{problem.grid.height}, {problem.n_routers} routers, "
        f"{problem.n_clients} clients; search:swap, "
        f"{candidates} candidates x <= {budget} phases, "
        f"SLA {sla * 1e3:.0f}ms / interval {interval * 1e3:.0f}ms"
        f"{' [smoke: simulated clock]' if args.smoke else ''}"
    )
    print("=" * 72)

    # Arm 1 — the unbounded scenario walk (quality reference).
    start = time.perf_counter()
    baseline = ScenarioRunner(
        "search:swap", budget=budget, **solver_kwargs
    ).run(scenario, seed=args.seed)
    baseline_seconds = time.perf_counter() - start
    print(f"unbounded walk: {baseline.summary()}")

    # Arm 2 — no-pressure live run on the simulated clock: must replay
    # the walk bit-for-bit (the tentpole's determinism guarantee).
    no_pressure = LiveRunner(
        "search:swap", budget=budget,
        sla=1e6, interval=1e6, seconds_per_evaluation=1e-6,
        **solver_kwargs,
    ).run(scenario, seed=args.seed)
    assert_no_pressure_parity(baseline, no_pressure)
    print("no-pressure live arm: bit-identical to the unbounded walk")

    # Arm 3 — the pressured event loop.  Real clock in full mode (the
    # latency gate); simulated cost model in smoke (deterministic CI).
    pressured_kwargs = dict(
        sla=sla, interval=interval, budget=budget, **solver_kwargs
    )
    if args.smoke:
        # Charge each evaluation enough that the backlog builds and the
        # ladder visibly sheds — deterministic pressure.
        pressured_kwargs["seconds_per_evaluation"] = (
            2.0 * sla / (candidates * budget)
        )
    pressured = LiveRunner("search:swap", **pressured_kwargs).run(
        scenario, seed=args.seed
    )
    mean_regret = pressured.mean_regret(baseline)
    print(f"pressured live arm: {pressured.summary()}")
    print(
        f"  rungs: {pressured.rung_counts()}, "
        f"max queue depth {pressured.max_queue_depth()}, "
        f"mean regret vs unbounded {mean_regret:+.4f}"
    )

    # Stage 4 — deadline-check overhead on one unbounded solve.
    overhead = time_deadline_overhead(
        problem, budget, candidates, rounds, args.seed
    )
    print(
        f"deadline overhead: bare {overhead['bare_seconds']:.3f}s vs "
        f"guarded {overhead['guarded_seconds']:.3f}s "
        f"({overhead['overhead_fraction'] * 100:+.2f}%) — results identical"
    )

    payload = {
        "scenario": scenario.name,
        "n_routers": problem.n_routers,
        "n_clients": problem.n_clients,
        "n_steps": n_steps,
        "budget": budget,
        "candidates_per_phase": candidates,
        "stall_phases": args.stall,
        "sla_seconds": sla,
        "interval_seconds": interval,
        "smoke": args.smoke,
        "simulated_pressure": args.smoke,
        "baseline_seconds": baseline_seconds,
        "baseline_mean_fitness": baseline.mean_fitness(),
        "no_pressure_bit_identical": True,
        "p50_latency_seconds": pressured.p50_latency,
        "p95_latency_seconds": pressured.p95_latency,
        "sla_violations": pressured.sla_violations(),
        "deadline_hits": pressured.deadline_hits,
        "shed_events": pressured.shed_count,
        "rung_counts": pressured.rung_counts(),
        "max_queue_depth": pressured.max_queue_depth(),
        "pressured_mean_fitness": pressured.mean_fitness(),
        "mean_regret": mean_regret,
        "deadline_overhead": overhead,
    }
    write_bench_json("live_sla", payload, args.json)

    if not args.smoke:
        if pressured.p95_latency > sla:
            print(
                f"FAIL: p95 response latency "
                f"{pressured.p95_latency * 1e3:.1f}ms exceeds the "
                f"{sla * 1e3:.1f}ms SLA"
            )
            return 1
        if mean_regret > args.max_regret:
            print(
                f"FAIL: mean fitness regret {mean_regret:.4f} exceeds "
                f"{args.max_regret:.4f}"
            )
            return 1
        if overhead["overhead_fraction"] > args.max_overhead:
            print(
                f"FAIL: deadline-check overhead "
                f"{overhead['overhead_fraction'] * 100:.2f}% exceeds "
                f"{args.max_overhead * 100:.1f}%"
            )
            return 1
        print(
            f"OK: p95 {pressured.p95_latency * 1e3:.1f}ms <= SLA "
            f"{sla * 1e3:.1f}ms, regret {mean_regret:.4f} <= "
            f"{args.max_regret:.4f}, overhead "
            f"{overhead['overhead_fraction'] * 100:.2f}% <= "
            f"{args.max_overhead * 100:.1f}%"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
