"""Ablation B (DESIGN.md D6) — the two readings of Algorithm 3.

Literal reading: the two routers exchange positions (the occupied-cell
multiset never changes).  Relocating reading (default): the strong
sparse-area router moves *into* the dense window.  Only the relocating
reading can reproduce Fig. 4's growth from a random start — the literal
swap is bounded by the initial position geometry, as this bench shows.
"""

from __future__ import annotations

import numpy as np
from _common import bench_scale, print_header, run_once

from repro.adhoc import RandomPlacement
from repro.core.evaluation import Evaluator
from repro.instances.catalog import paper_normal
from repro.neighborhood.movements import SwapMovement
from repro.neighborhood.search import NeighborhoodSearch


def _compare(scale):
    problem = paper_normal().generate()
    initial = RandomPlacement().place(problem, np.random.default_rng(4))
    outcomes = {}
    for label, relocate in (("literal", False), ("relocating", True)):
        search = NeighborhoodSearch(
            SwapMovement(relocate=relocate),
            n_candidates=scale.ns_candidates,
            max_phases=scale.ns_phases,
            stall_phases=None,
        )
        result = search.run(
            Evaluator(problem), initial, np.random.default_rng(9)
        )
        outcomes[label] = result
    return outcomes


def test_ablation_swap_semantics(benchmark):
    scale = bench_scale()
    outcomes = run_once(benchmark, _compare, scale)

    print_header("Ablation B — literal vs relocating swap (DESIGN.md D6)")
    for label, result in outcomes.items():
        trace = result.trace
        print(
            f"{label:11s} giant {trace.giant_sizes[0]:3d} -> "
            f"{result.best.giant_size:3d}  coverage {result.best.covered_clients:3d}  "
            f"({result.n_evaluations} evaluations)"
        )

    literal = outcomes["literal"]
    relocating = outcomes["relocating"]
    # The literal swap cannot move routers, so its giant component is
    # bounded by what radius permutations achieve; the relocating swap
    # must clearly outgrow it.
    assert relocating.best.giant_size >= literal.best.giant_size
