"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper (or one
ablation from DESIGN.md) and prints the resulting rows/series, so a
``pytest benchmarks/ --benchmark-only -s`` run reproduces the paper's
evaluation section.  Scale is selected by ``REPRO_SCALE`` (``quick`` by
default; ``paper`` for full-size runs — see EXPERIMENTS.md).

Heavy experiments run exactly once per bench via ``benchmark.pedantic``
(rounds=1): the interesting output is the *result*, the wall-clock time
is a bonus measurement.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale, current_scale

__all__ = ["bench_scale", "run_once", "print_header"]


def bench_scale() -> ExperimentScale:
    """The scale benches run at (``REPRO_SCALE``, default quick)."""
    return current_scale(default="quick")


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )


def print_header(title: str) -> None:
    """A visible banner above each regenerated artifact."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
