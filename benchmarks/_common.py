"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper (or one
ablation from DESIGN.md) and prints the resulting rows/series, so a
``pytest benchmarks/ --benchmark-only -s`` run reproduces the paper's
evaluation section.  Scale is selected by ``REPRO_SCALE`` (``quick`` by
default; ``paper`` for full-size runs — see EXPERIMENTS.md).

Heavy experiments run exactly once per bench via ``benchmark.pedantic``
(rounds=1): the interesting output is the *result*, the wall-clock time
is a bonus measurement.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro import envgates
from repro.experiments.config import ExperimentScale, current_scale

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "bench_scale",
    "host_metadata",
    "run_once",
    "print_header",
    "add_json_argument",
    "write_bench_json",
]

#: Version of the ``BENCH_<name>.json`` envelope.  Bump whenever an
#: envelope key changes meaning, so trajectory tooling can tell records
#: apart instead of silently comparing incompatible shapes.
#:
#: * 1 — (implicit) bench name, scale, timestamp, payload.
#: * 2 — adds ``schema_version`` and the ``host`` metadata block;
#:   wall-clock numbers are only comparable between records whose hosts
#:   match.
BENCH_SCHEMA_VERSION = 2


def host_metadata() -> dict:
    """The machine identity stamped into every benchmark record.

    Committed ``BENCH_*.json`` records accumulate a perf trajectory
    across PRs; timings from different machines must not be compared as
    a regression signal, so every record says where it was measured.
    """
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy.__version__,
    }

#: Default destination for benchmark records: the repository root, so
#: every bench run leaves a committed-able ``BENCH_<name>.json`` behind
#: and successive PRs accumulate a perf trajectory without anyone
#: remembering a flag.
_REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_scale() -> ExperimentScale:
    """The scale benches run at (``REPRO_SCALE``, default quick)."""
    return current_scale(default="quick")


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )


def print_header(title: str) -> None:
    """A visible banner above each regenerated artifact."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def add_json_argument(parser) -> None:
    """Install the shared ``--json [DIR]`` option on a bench parser.

    Benches call :func:`write_bench_json` with the parsed value; the
    ``REPRO_BENCH_JSON`` environment variable is the no-flag fallback so
    CI can turn on record emission without touching each invocation.
    """
    parser.add_argument(
        "--json",
        nargs="?",
        const=".",
        default=None,
        metavar="DIR",
        help="write the machine-readable BENCH_<name>.json record to DIR "
        "(default: $REPRO_BENCH_JSON, else the repository root, so the "
        "perf trajectory accumulates without flags)",
    )


def write_bench_json(name: str, payload: dict, directory: "str | None") -> Path:
    """Write one machine-readable benchmark record, if enabled.

    ``payload`` carries the bench-specific records (timings, sizes,
    speedups); this helper stamps the shared envelope (bench name,
    scale, unix timestamp) and writes ``BENCH_<name>.json`` into
    ``directory``, falling back to ``$REPRO_BENCH_JSON`` and finally to
    the repository root — records are always written, so the committed
    ``BENCH_*.json`` trajectory tracks regressions across PRs.  Returns
    the written path.
    """
    directory = directory if directory is not None else envgates.bench_json_dir()
    if not directory:
        directory = str(_REPO_ROOT)
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    record = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": name,
        "scale": bench_scale().name,
        "timestamp": time.time(),
        "host": host_metadata(),
        **payload,
    }
    path = target / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return path
