"""Figure 1 — evolution of the giant component when ad hoc methods
initialize the GA (Normal distribution of client mesh nodes, 128x128).

Paper shape: "HotSpot is the best initializing method followed by Cross
and Diag methods; ColLeft and Corners performed poorly."  HotSpot's
curve climbs to the full fleet (~64) while the edge-topology methods
(ColLeft, Corners) plateau far below.
"""

from __future__ import annotations

from _common import bench_scale, print_header, run_once

from repro.experiments.figures import run_ga_figure
from repro.experiments.reporting import format_figure


def test_figure1_normal(benchmark):
    scale = bench_scale()
    result = run_once(benchmark, run_ga_figure, "normal", scale=scale, seed=1)

    print_header("Figure 1 (GA evolution, Normal distribution) — regenerated")
    print(format_figure(result))
    print("final ranking:", ", ".join(result.ranking_by_final_giant()))

    # The curves plot the giant component of the best-by-fitness
    # individual: monotone in fitness, so the giant may dip when a
    # fitter solution trades connectivity for coverage.  The robust
    # shape: every initializer is lifted by the GA, and HotSpot ends
    # ahead of the poorly-performing edge topologies.
    for series in result.series:
        assert series.final_giant >= series.giant_sizes[0]
    hotspot = result.series_by_label("hotspot").final_giant
    corners = result.series_by_label("corners").final_giant
    assert hotspot >= corners
