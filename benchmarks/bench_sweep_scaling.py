"""Scaling sweeps — how the paper's conclusions extend beyond its frame.

Two extensions of the evaluation section: the fleet-size sweep (does the
Swap > Random gap survive smaller/larger deployments?) and the
radio-range sweep (how does the oscillation ceiling shift the picture?).
"""

from __future__ import annotations

from _common import bench_scale, print_header, run_once

from repro.experiments.sweeps import (
    format_sweep,
    sweep_radio_range,
    sweep_router_count,
)
from repro.instances.catalog import paper_normal


def test_sweep_router_count(benchmark):
    scale = bench_scale()
    result = run_once(
        benchmark,
        sweep_router_count,
        paper_normal(),
        counts=(16, 32, 64),
        scale=scale,
        seed=1,
    )
    print_header("Sweep — fleet size (Swap vs Random final giants)")
    print(format_sweep(result))
    for point in result.points:
        assert point.swap_giant <= point.parameter


def test_sweep_radio_range(benchmark):
    scale = bench_scale()
    result = run_once(
        benchmark,
        sweep_radio_range,
        paper_normal(),
        max_radii=(4.0, 7.0, 12.0),
        scale=scale,
        seed=1,
    )
    print_header("Sweep — radio oscillation ceiling")
    print(format_sweep(result))
    weakest = result.points[0]
    strongest = result.points[-1]
    # Stronger radios never reduce the stand-alone giant component.
    assert strongest.standalone_giant >= weakest.standalone_giant
