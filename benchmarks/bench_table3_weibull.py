"""Table 3 — ad hoc methods, stand-alone and initializing the GA
(client mesh nodes generated with Weibull distribution).

Paper reference values:

    Method    giant/GA  cov/GA  giant/alone  cov/alone
    Random        34      82         3           24
    ColLeft       33      67         8           12
    Diag          45      56        17            1
    Cross         46      62        13            3
    Near          45      41        13            0
    Corners       29      93        26           12
    HotSpot       63      10         4            6

The Weibull instance is the paper's strongest hotspot-clustering
scenario; the giant-component shape matches Tables 1-2 (stand-alone
small, GA lifts, HotSpot leads).
"""

from __future__ import annotations

from _common import bench_scale, print_header, run_once

from repro.experiments.reporting import format_table
from repro.experiments.tables import run_table


def test_table3_weibull(benchmark):
    scale = bench_scale()
    result = run_once(benchmark, run_table, "weibull", scale=scale, seed=1)

    print_header("Table 3 (Weibull distribution) — regenerated")
    print(format_table(result))

    n = result.spec.n_routers
    for row in result.rows:
        assert row.giant_standalone < n
        assert row.giant_by_ga <= n
    # Stand-alone giants stay in the paper's small-fraction regime.
    assert max(r.giant_standalone for r in result.rows) <= n // 2
