"""Benchmark: scenario-fleet portfolio vs the serial per-triple loop.

Workload: the paper's Normal-distribution instance (64 routers, 128x128
grid, 192 clients) under a 4-scenario x 2-solver x 8-seed portfolio —
the four canonical dynamic regimes (client drift, client churn, router
outages, radio decay) crossed with the paper's swap- and random-movement
neighborhood searches, replicated over 8 seeds with warm-start
re-optimization at every step.  Two executions of the *identical* grid:

* **serial** — the pre-fleet workflow: one
  :meth:`~repro.scenario.runner.ScenarioRunner.run_steps` call per
  (scenario, solver, seed) triple, looped by hand over the fleet's own
  seed grid (:func:`~repro.scenario.fleet.fleet_seed_grid`), so both
  arms solve exactly the same step sequence with the same streams.
* **fleet** — one :class:`~repro.scenario.fleet.ScenarioFleet` run: per
  (scenario, solver) cell, every step re-optimizes all 8 replicates
  through one lockstep :meth:`~repro.solvers.base.Solver.solve_batch`
  call (one stacked engine pass per phase for the whole cell).

Per-triple results are asserted bit-identical (fitness, placements,
evaluation and phase counts) before any timing is reported, so the
speedup is pure execution-strategy — no work is skipped.  The lockstep
batching is what carries the gate on a single core; ``--workers`` stacks
process fan-out on top on multicore hosts (identical results).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_scenario_fleet.py [--smoke]

``--smoke`` trims the grid for CI crash checks (parity still asserted,
no perf assertion); ``--min-speedup`` overrides the default 2.5x
acceptance gate.  A machine-readable record lands in
``BENCH_scenario_fleet.json`` (schema v2, repo root by default).
"""

from __future__ import annotations

import argparse
import sys
import time

from _common import add_json_argument, write_bench_json
from repro.instances.catalog import paper_normal
from repro.scenario import Scenario, ScenarioFleet, ScenarioRunner, fleet_seed_grid


def build_scenarios(problem, n_steps: int) -> list[Scenario]:
    """The four canonical regimes over one base instance."""
    return [
        Scenario.client_drift(problem, n_steps, sigma=2.0),
        Scenario.client_churn(problem, n_steps, fraction=0.1),
        Scenario.router_outages(problem, n_steps, count=1),
        Scenario.radio_degradation(problem, n_steps, factor=0.95),
    ]


def triple_signature(result) -> list[tuple]:
    """Everything a triple's identity should pin, except wall-clock."""
    return [
        (
            step.result.best.fitness,
            step.result.best.placement.cells,
            step.result.n_evaluations,
            step.result.n_phases,
        )
        for step in result.steps
    ]


def run_serial(scenarios, solver_specs, n_seeds, budget, seed):
    """The per-triple reference loop over the fleet's exact seed grid."""
    grid = fleet_seed_grid(seed, len(scenarios) * len(solver_specs), n_seeds)
    results = []
    cell = 0
    for scenario in scenarios:
        for spec, kwargs in solver_specs:
            unfold_seq, rep_seqs = grid[cell]
            cell += 1
            steps = scenario.unfold(unfold_seq)
            runner = ScenarioRunner(spec, budget=budget, **kwargs)
            for seq in rep_seqs:
                results.append(
                    runner.run_steps(
                        steps, seed=seq, scenario_name=scenario.name
                    )
                )
    return results


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=6,
                        help="perturbation steps per scenario (default 6)")
    parser.add_argument("--seeds", type=int, default=8,
                        help="replicates per (scenario, solver) cell "
                        "(default 8)")
    parser.add_argument("--budget", type=int, default=48,
                        help="max search phases per step (default 48)")
    parser.add_argument("--candidates", type=int, default=16,
                        help="candidate moves per phase (default 16)")
    parser.add_argument("--stall", type=int, default=8,
                        help="stop a step after this many non-improving "
                        "phases (default 8)")
    parser.add_argument("--workers", type=int, default=None,
                        help="also fan the fleet's replicate shards over a "
                        "process pool (default: in-process lockstep only)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timed repetitions; the minimum counts "
                        "(default 3)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI crash check: 2x2x3 grid, 2 steps, budget 8, "
                        "1 round, parity asserted, no perf assertion")
    parser.add_argument("--min-speedup", type=float, default=2.5,
                        help="fail unless the fleet is >= X times faster "
                        "than the serial per-triple loop (default 2.5)")
    parser.add_argument("--seed", type=int, default=20090629)
    add_json_argument(parser)
    args = parser.parse_args(argv)

    n_steps = 2 if args.smoke else args.steps
    n_seeds = 3 if args.smoke else args.seeds
    budget = 8 if args.smoke else args.budget
    rounds = 1 if args.smoke else max(1, args.rounds)

    problem = paper_normal().generate()
    scenarios = build_scenarios(problem, n_steps)
    if args.smoke:
        scenarios = scenarios[:2]
    solver_kwargs = {
        "n_candidates": args.candidates,
        "stall_phases": args.stall if args.stall > 0 else None,
    }
    solver_specs = [
        ("search:swap", solver_kwargs),
        ("search:random", solver_kwargs),
    ]
    n_triples = len(scenarios) * len(solver_specs) * n_seeds

    print("=" * 72)
    print(
        f"scenario-fleet bench: {len(scenarios)} scenarios x "
        f"{len(solver_specs)} solvers x {n_seeds} seeds "
        f"({n_triples} triples) on {problem.grid.width}x"
        f"{problem.grid.height}, {problem.n_routers} routers, "
        f"{problem.n_clients} clients; {n_steps}+1 steps/triple, "
        f"{args.candidates} candidates x <= {budget} phases "
        f"(stall {args.stall}), best of {rounds} round(s)"
    )
    print("=" * 72)

    fleet = ScenarioFleet(
        scenarios,
        solver_specs,
        n_seeds=n_seeds,
        budget=budget,
        workers=args.workers,
    )

    serial_seconds = fleet_seconds = float("inf")
    serial = report = None
    # Arms interleave per round and the minimum counts, so ambient load
    # cannot skew the ratio.
    for _ in range(rounds):
        start = time.perf_counter()
        serial = run_serial(
            scenarios, solver_specs, n_seeds, budget, args.seed
        )
        serial_seconds = min(serial_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        report = fleet.run(seed=args.seed)
        fleet_seconds = min(fleet_seconds, time.perf_counter() - start)

    # Parity gate before any number is believed: the fleet must be the
    # serial loop, bit for bit, triple for triple.
    assert len(serial) == len(report.runs) == n_triples
    for reference, run in zip(serial, report.runs):
        if triple_signature(reference) != triple_signature(run.result):
            raise AssertionError(
                "fleet diverged from the serial loop at "
                f"({run.scenario}, {run.solver}, replicate {run.replicate})"
            )
    print(f"parity: all {n_triples} triples bit-identical to the serial loop")

    speedup = serial_seconds / fleet_seconds
    evaluations = sum(run.result.total_evaluations for run in report.runs)
    header = f"{'arm':8s} {'seconds':>10s} {'ms/triple':>12s}"
    print(header)
    print("-" * len(header))
    for label, seconds in (("serial", serial_seconds), ("fleet", fleet_seconds)):
        print(
            f"{label:8s} {seconds:>10.2f} "
            f"{seconds * 1e3 / n_triples:>12.1f}"
        )
    print("-" * len(header))
    print(
        f"fleet speedup: {speedup:.1f}x wall-clock over the serial "
        f"per-triple loop ({evaluations} evaluations either way)"
    )

    payload = {
        "n_scenarios": len(scenarios),
        "n_solvers": len(solver_specs),
        "n_seeds": n_seeds,
        "n_triples": n_triples,
        "n_steps": n_steps,
        "budget": budget,
        "candidates_per_phase": args.candidates,
        "stall_phases": args.stall,
        "workers": args.workers,
        "rounds": rounds,
        "smoke": args.smoke,
        "parity_triples": n_triples,
        "serial_seconds": serial_seconds,
        "fleet_seconds": fleet_seconds,
        "speedup": speedup,
        "total_evaluations": evaluations,
    }
    write_bench_json("scenario_fleet", payload, args.json)

    if not args.smoke:
        if speedup < args.min_speedup:
            print(
                f"FAIL: fleet speedup {speedup:.1f}x below required "
                f"{args.min_speedup:.1f}x"
            )
            return 1
        print(f"OK: speedup {speedup:.1f}x >= {args.min_speedup:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
