"""Benchmark: compiled kernel tier vs. the numpy stacked engines.

Workload: the lockstep multi-chain phase loop at city scale — ``R``
chains each propose ``C`` candidates per phase (scripted relocations
and swaps), the phase stack is measured, and every chain commits its
winner.  Three paths measure the identical phase scripts:

* **numpy stacked** — the sparse :class:`StackedEngine` re-measures the
  full candidate stack each phase.  This is what ``engine="auto"``
  runs at city scale when the compiled kernels are absent, and the
  baseline of the speedup gate.
* **numpy delta**  — :class:`StackedDeltaEngine` on the numpy dense
  broadcasts/sgemm (reported for context; ``auto`` never picks it on
  sparse-layout instances because its commit path is matrix-sized).
* **compiled**     — :class:`StackedDeltaEngine` on the C kernels:
  fused adjacency-row/coverage-column recompute, one union-find
  labeling pass, CSR giant-coverage counts, and O(nnz) commit updates.

The script asserts bit-identical measurement rows across all three
paths before timing.  The one-time cost of building the shared library
and first-call binding is measured separately as *warm-up* and excluded
from the timed phases, as is each delta engine's incumbent-cache
construction (*setup*).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_compiled.py [--smoke]

``--smoke`` trims the workload for CI and drops the speedup gate from
5x to 3x; ``--min-speedup X`` overrides either gate; ``--json [DIR]``
emits the machine-readable ``BENCH_engine_compiled.json`` record.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

import numpy as np

from _common import add_json_argument, write_bench_json
from repro.core.engine import StackedEngine
from repro.core.engine.stacked import StackedDeltaEngine
from repro.core.solution import Placement
from repro.instances.catalog import city_spec


def build_phase_scripts(problem, incumbents, n_candidates, n_phases, seed):
    """Scripted phases: per chain, relocations plus an occasional swap.

    Returns ``[(items, placements, winners)]`` — the delta engines
    measure ``items`` (neutral ``(chain, movers, new_cells)`` tuples),
    the full path measures the equivalent ``placements``, and
    ``winners[chain]`` is the committed candidate index.  Scripts are
    generated once so every path sees byte-identical work.
    """
    rng = np.random.default_rng(seed)
    n_routers = problem.n_routers
    width, height = problem.grid.width, problem.grid.height
    scripts = []
    current = list(incumbents)
    for _ in range(n_phases):
        items, placements = [], []
        for chain, incumbent in enumerate(current):
            occupied = set(incumbent.cells)
            for candidate in range(n_candidates):
                cells = list(incumbent.cells)
                if candidate % 4 == 3:
                    a, b = (int(r) for r in rng.choice(
                        n_routers, size=2, replace=False
                    ))
                    items.append((chain, (a, b), (cells[b], cells[a])))
                    cells[a], cells[b] = cells[b], cells[a]
                else:
                    router = int(rng.integers(n_routers))
                    while True:
                        target = (
                            int(rng.integers(width)),
                            int(rng.integers(height)),
                        )
                        if target not in occupied:
                            break
                    items.append((chain, (router,), (target,)))
                    cells[router] = target
                placements.append(Placement.from_cells(problem.grid, cells))
        winners = [
            chain * n_candidates + int(rng.integers(n_candidates))
            for chain in range(len(current))
        ]
        scripts.append((items, placements, winners))
        current = [placements[w] for w in winners]
    return scripts


def run_delta(problem, incumbents, scripts, engine):
    """One delta engine over the scripts; returns (setup, times, rows)."""
    n_candidates = len(scripts[0][1]) // len(incumbents)
    delta = StackedDeltaEngine(problem, engine=engine)
    start = time.perf_counter()
    for chain, incumbent in enumerate(incumbents):
        delta.reset_chain(chain, incumbent)
    setup = time.perf_counter() - start
    times, rows = [], []
    for items, placements, winners in scripts:
        start = time.perf_counter()
        measurement = delta.measure_phase(items)
        for chain, winner in enumerate(winners):
            delta.commit_chain(chain, placements[winner])
        times.append(time.perf_counter() - start)
        rows.append(measurement)
    return setup, times, rows


def run_stacked(problem, scripts):
    """The full-stack numpy baseline; returns (times, rows)."""
    engine = StackedEngine(problem, engine="sparse")
    times, rows = [], []
    for _, placements, _ in scripts:
        start = time.perf_counter()
        measurement = engine.measure_placements(placements)
        times.append(time.perf_counter() - start)
        rows.append(measurement)
    return times, rows


def check_parity(reference, candidate, name):
    for phase, (ref, got) in enumerate(zip(reference, candidate)):
        same = (
            np.array_equal(ref.fitness, got.fitness)
            and np.array_equal(ref.giant_sizes, got.giant_sizes)
            and np.array_equal(ref.covered_clients, got.covered_clients)
            and np.array_equal(ref.n_components, got.n_components)
            and np.array_equal(ref.n_links, got.n_links)
            and np.array_equal(ref.mean_degrees, got.mean_degrees)
            and np.array_equal(ref.giant_masks, got.giant_masks)
        )
        if not same:
            raise AssertionError(
                f"{name} diverged from the numpy stacked engine in "
                f"phase {phase}"
            )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--routers", type=int, default=1024,
                        help="router count of the city instance")
    parser.add_argument("--clients", type=int, default=4_000,
                        help="client count of the city instance")
    parser.add_argument("--chains", type=int, default=16,
                        help="portfolio chains (default 16)")
    parser.add_argument("--candidates", type=int, default=8,
                        help="candidates per chain per phase (default 8)")
    parser.add_argument("--phases", type=int, default=8,
                        help="timed phases (default 8)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke mode: fewer chains/phases, 3x gate")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless compiled speedup over the numpy "
                        "stacked engine >= X (default: 5, smoke: 3)")
    parser.add_argument("--seed", type=int, default=20260807)
    add_json_argument(parser)
    args = parser.parse_args(argv)

    from repro.core.engine import compiled

    if not compiled.is_available():
        print("compiled kernels unavailable "
              f"(REPRO_COMPILED gate or no C toolchain); nothing to measure")
        return 1

    chains = 8 if args.smoke else args.chains
    phases = 4 if args.smoke else args.phases
    gate = args.min_speedup
    if gate is None:
        gate = 3.0 if args.smoke else 5.0

    spec = city_spec(args.routers, args.clients, seed=args.seed)
    problem = spec.generate()
    rng = np.random.default_rng(args.seed)
    incumbents = [
        Placement.random(problem.grid, problem.n_routers, rng)
        for _ in range(chains)
    ]
    scripts = build_phase_scripts(
        problem, incumbents, args.candidates, phases, args.seed
    )

    print("=" * 72)
    print(
        f"compiled engine bench: {spec.name}, {problem.n_routers} routers, "
        f"{problem.n_clients} clients, {chains} chains x {args.candidates} "
        f"candidates, {phases} phases"
    )
    print("=" * 72)

    # Warm-up: build + bind the shared library and run one phase-shaped
    # call end to end, so the timed loops see a hot library and caches.
    start = time.perf_counter()
    compiled.require()
    warm = StackedDeltaEngine(problem, engine="compiled")
    warm.reset_chain(0, incumbents[0])
    warm.measure_phase([scripts[0][0][0]])
    warmup = time.perf_counter() - start
    print(f"warm-up (library build + first call): {warmup * 1e3:.1f} ms "
          f"(excluded from timed phases; openmp={compiled.has_openmp()})")

    stacked_times, stacked_rows = run_stacked(problem, scripts)
    dense_setup, dense_times, dense_rows = run_delta(
        problem, incumbents, scripts, "dense"
    )
    compiled_setup, compiled_times, compiled_rows = run_delta(
        problem, incumbents, scripts, "compiled"
    )
    check_parity(stacked_rows, dense_rows, "numpy delta")
    check_parity(stacked_rows, compiled_rows, "compiled delta")
    print("parity: all three paths bit-identical on every phase")

    stacked_median = statistics.median(stacked_times)
    dense_median = statistics.median(dense_times)
    compiled_median = statistics.median(compiled_times)
    speedup = stacked_median / compiled_median
    speedup_delta = dense_median / compiled_median

    print(f"{'path':<16} {'phase (ms)':>12} {'setup (ms)':>12} {'speedup':>9}")
    for name, median, setup, ratio in [
        ("numpy stacked", stacked_median, 0.0, 1.0),
        ("numpy delta", dense_median, dense_setup, stacked_median / dense_median),
        ("compiled delta", compiled_median, compiled_setup, speedup),
    ]:
        print(
            f"{name:<16} {median * 1e3:>12.2f} {setup * 1e3:>12.1f} "
            f"{ratio:>8.2f}x"
        )
    print(
        f"compiled vs numpy stacked: {speedup:.2f}x   "
        f"compiled vs numpy delta: {speedup_delta:.2f}x"
    )

    write_bench_json(
        "engine_compiled",
        {
            "instance": spec.name,
            "n_routers": problem.n_routers,
            "n_clients": problem.n_clients,
            "chains": chains,
            "candidates_per_chain": args.candidates,
            "phases": phases,
            "smoke": args.smoke,
            "openmp": compiled.has_openmp(),
            "warmup_seconds": warmup,
            "stacked_phase_seconds": stacked_times,
            "dense_delta_phase_seconds": dense_times,
            "compiled_phase_seconds": compiled_times,
            "dense_delta_setup_seconds": dense_setup,
            "compiled_setup_seconds": compiled_setup,
            "stacked_median_seconds": stacked_median,
            "dense_delta_median_seconds": dense_median,
            "compiled_median_seconds": compiled_median,
            "speedup_vs_stacked": speedup,
            "speedup_vs_dense_delta": speedup_delta,
            "min_speedup_gate": gate,
        },
        args.json,
    )

    if speedup < gate:
        print(f"FAIL: compiled speedup {speedup:.2f}x below required "
              f"{gate:.1f}x")
        return 1
    print(f"OK: compiled speedup {speedup:.2f}x >= {gate:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
