"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file only enables legacy
editable installs (``pip install -e . --no-use-pep517``) on environments
whose setuptools predates PEP 660 wheel-less editable support.
"""

from setuptools import setup

setup()
