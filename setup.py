"""Packaging for the mesh-router placement reproduction.

The ``compiled`` extra is an intent marker, not a dependency list: the
compiled engine tier (``repro.core.engine.compiled``) builds its C
kernels on demand from the bundled ``_kernels.c`` with the system
toolchain (``cc``/``gcc``/``clang``), so ``pip install .[compiled]``
installs no additional Python packages — the real requirement is a C
compiler on ``$PATH``.  Without one, ``engine="auto"`` falls back to
the numpy engines with identical results.
"""

from setuptools import find_packages, setup

setup(
    name="wmn-placement",
    version="0.7.0",
    description=(
        "Reproduction of mesh-router node placement via neighborhood "
        "search (Xhafa et al., ICDCS Workshops 2009) with batched, "
        "sparse, stacked and compiled evaluation engines"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro.core.engine": ["_kernels.c"]},
    python_requires=">=3.11",
    install_requires=["numpy"],
    extras_require={
        # Marker extra: no packages — the compiled tier needs a C
        # toolchain at runtime, and degrades to numpy without one.
        "compiled": [],
        "scipy": ["scipy"],
    },
    entry_points={
        "console_scripts": [
            "wmn-placement = repro.cli:main",
            "repro-lint = repro.lint.cli:main",
        ],
    },
)
