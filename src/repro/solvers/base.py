"""The unified solver contract.

Before this layer existed the repository had three divergent run-entry
idioms: ad hoc constructors (``method.place(problem, rng)`` plus a
manual evaluation), the neighborhood family
(``search.run(evaluator, initial, rng)``) and the GA
(``ga.run(evaluator, initializer, rng)``).  Callers — the CLI, sweeps,
replication, benches — each re-implemented the glue, and nothing could
treat "an optimizer" as a value.

:class:`Solver` is the single contract every method family now speaks::

    result = solver.solve(problem, seed=7, budget=64, warm_start=None)

* ``seed`` — one integer (or entropy sequence) reproducing the whole
  run.  Adapters split it into independent *init* and *run* streams via
  ``SeedSequence.spawn``, so supplying ``warm_start`` skips the init
  stream without disturbing the search stream: a warm-started run whose
  start equals what the cold run would have drawn is **bit-identical**
  to the cold run (the warm-start parity tests assert this for
  best-neighbor search, simulated annealing and tabu search).
* ``budget`` — the family's effort knob in its native unit (search/SA/
  tabu phases, GA generations); ``None`` keeps the adapter's configured
  default.  Constructive methods have no budget and ignore it.
* ``warm_start`` — a placement to start from instead of the adapter's
  own initialization.  Dynamic scenarios seed it from the previous
  step's best placement (see :mod:`repro.scenario`).
* ``engine`` — the evaluation-engine choice (``auto``/``dense``/
  ``sparse``), threaded into every engine the family uses.
* ``engine_cache`` — an optional
  :class:`~repro.core.engine.handoff.IncumbentCache` from a previous
  run; delta-engine families reuse its still-valid pieces at reset.

The returned :class:`SolveResult` is uniform across families: the best
evaluation, the family's trace, the evaluation count (the
machine-independent cost unit every experiment reports) and the
exported engine cache for the next warm start.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.evaluation import Evaluation
from repro.core.problem import ProblemInstance
from repro.core.solution import Placement
from repro.seeding import root_sequence, spawn_children

if TYPE_CHECKING:
    from repro.anytime.deadline import Deadline
    from repro.core.engine.handoff import IncumbentCache
    from repro.core.fitness import FitnessFunction

__all__ = ["SolveResult", "Solver", "solver_streams"]


def _check_batch(seeds, warm_starts, engine_caches):
    """Normalize / validate the per-seed lists of a ``solve_batch`` call."""
    if not seeds:
        raise ValueError("solve_batch needs at least one seed")
    if warm_starts is None:
        warm_starts = [None] * len(seeds)
    if engine_caches is None:
        engine_caches = [None] * len(seeds)
    if len(warm_starts) != len(seeds):
        raise ValueError(
            f"{len(warm_starts)} warm starts for {len(seeds)} seeds"
        )
    if len(engine_caches) != len(seeds):
        raise ValueError(
            f"{len(engine_caches)} engine caches for {len(seeds)} seeds"
        )
    return warm_starts, engine_caches


def solver_streams(
    seed: "int | tuple | np.random.SeedSequence",
) -> tuple[np.random.Generator, np.random.Generator]:
    """The two independent per-solve streams: ``(init, run)``.

    One parent ``SeedSequence`` spawns exactly two children: stream 0
    drives initialization (the initial placement / population draw),
    stream 1 drives the optimization itself.  Warm starts consume only
    stream 1, which is what makes warm-vs-cold parity exact.

    A passed ``SeedSequence`` is copied before spawning
    (:func:`repro.seeding.spawn_children`), so the two streams depend
    only on the seed's identity — re-solving with the same sequence
    object always replays the same streams.
    """
    init_child, run_child = spawn_children(root_sequence(seed), 2)
    return np.random.default_rng(init_child), np.random.default_rng(run_child)


@dataclass(frozen=True)
class SolveResult:
    """The uniform outcome of one :meth:`Solver.solve` call.

    ``n_phases`` counts the family's native effort unit actually spent
    (phases or generations; 0 for constructive methods).  ``trace`` is
    the family's own record type (``SearchTrace``, ``GATrace`` or
    ``None``) — uniform access to the best solution never requires it.

    ``stopped_by`` is ``None`` for a run that spent its whole budget
    and ``"deadline"``/``"cancelled"`` when a
    :class:`~repro.anytime.deadline.Deadline` stopped it early (the
    anytime contract: ``best`` is a fully evaluated incumbent either
    way).  ``elapsed_seconds`` is the run's wall-clock time, excluded
    from equality — bit-identical runs never share timings.
    """

    solver: str
    best: Evaluation
    n_evaluations: int
    n_phases: int
    warm_started: bool
    trace: object = field(default=None, compare=False, repr=False)
    engine_cache: "IncumbentCache | None" = field(
        default=None, compare=False, repr=False
    )
    stopped_by: str | None = None
    elapsed_seconds: float = field(default=0.0, compare=False)

    @property
    def giant_size(self) -> int:
        """Giant component size of the best solution found."""
        return self.best.giant_size

    @property
    def covered_clients(self) -> int:
        """Covered clients of the best solution found."""
        return self.best.covered_clients

    def summary(self) -> str:
        """One-line human-readable summary."""
        start = "warm" if self.warm_started else "cold"
        stopped = f", stopped by {self.stopped_by}" if self.stopped_by else ""
        return (
            f"[{self.solver}] {self.best.summary()} "
            f"({self.n_phases} phases, {self.n_evaluations} evaluations, "
            f"{start} start{stopped})"
        )


class Solver(abc.ABC):
    """One optimization method behind the uniform solve contract."""

    #: Whether ``warm_start`` changes this solver's behavior
    #: (constructive methods build from scratch regardless).
    supports_warm_start: bool = True

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """The registry spec of this solver (e.g. ``"search:swap"``)."""

    @abc.abstractmethod
    def solve(
        self,
        problem: ProblemInstance,
        *,
        seed: "int | tuple | np.random.SeedSequence" = 0,
        budget: "int | None" = None,
        warm_start: "Placement | None" = None,
        engine: str = "auto",
        fitness: "FitnessFunction | None" = None,
        engine_cache: "IncumbentCache | None" = None,
        deadline: "Deadline | None" = None,
    ) -> SolveResult:
        """Optimize ``problem``; see the module docstring for the contract.

        ``deadline`` is an optional
        :class:`~repro.anytime.deadline.Deadline` polled cooperatively
        at the family's phase boundaries; with ``deadline=None`` (or a
        deadline that never fires) results are bit-identical to a run
        without one.
        """

    def solve_batch(
        self,
        problem: ProblemInstance,
        seeds: "list[int | tuple | np.random.SeedSequence]",
        *,
        budget: "int | None" = None,
        warm_starts: "list[Placement | None] | None" = None,
        engine: str = "auto",
        fitness: "FitnessFunction | None" = None,
        engine_caches: "list[IncumbentCache | None] | None" = None,
        deadline: "Deadline | None" = None,
    ) -> list[SolveResult]:
        """Solve one problem under many seeds; one result per seed, in order.

        The portfolio primitive behind the scenario fleet: seed ``i``
        runs with ``warm_starts[i]`` and ``engine_caches[i]`` (both lists
        default to all-``None``) under the shared ``budget``/``engine``/
        ``fitness``.  The base implementation is the literal serial loop
        over :meth:`solve`; families with a lockstep engine override it
        with a vectorized path whose per-seed results are **bit-identical**
        to this loop (asserted by ``tests/solvers/test_adapters.py``), so
        callers may treat the two as interchangeable.

        ``deadline`` is shared by the whole batch: each seed's solve
        polls the same deadline, so once it fires every remaining seed
        returns its evaluated start immediately (the lockstep override
        masks the still-running chains instead — same semantics).
        """
        warm_starts, engine_caches = _check_batch(
            seeds, warm_starts, engine_caches
        )
        return [
            self.solve(
                problem,
                seed=seed,
                budget=budget,
                warm_start=warm_start,
                engine=engine,
                fitness=fitness,
                engine_cache=engine_cache,
                deadline=deadline,
            )
            for seed, warm_start, engine_cache in zip(
                seeds, warm_starts, engine_caches
            )
        ]

    def check_warm_start(
        self, problem: ProblemInstance, warm_start: "Placement | None"
    ) -> None:
        """Validate a warm-start placement against the problem frame."""
        if warm_start is None:
            return
        if len(warm_start) != problem.n_routers:
            raise ValueError(
                f"warm start places {len(warm_start)} routers but the fleet "
                f"has {problem.n_routers}"
            )
        for cell in warm_start.cells:
            if not problem.grid.contains(cell):
                raise ValueError(
                    f"warm start cell {tuple(cell)} lies outside the "
                    f"{problem.grid.width}x{problem.grid.height} grid"
                )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
