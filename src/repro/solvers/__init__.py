"""Unified solver layer: one contract for every optimization family.

:func:`make_solver` resolves a ``"family:variant"`` spec into a
:class:`Solver` whose :meth:`~Solver.solve` call looks the same whether
the method is a constructive ad hoc placement, a neighborhood search, a
metaheuristic or the GA::

    from repro.solvers import make_solver

    solver = make_solver("tabu:swap")
    result = solver.solve(problem, seed=7, budget=32)
    print(result.summary())

Dynamic scenarios (:mod:`repro.scenario`) build on the same contract:
``warm_start`` seeds a run from a previous placement and
``engine_cache`` hands the delta engine's incumbent state across the
run boundary.
"""

from repro.solvers.adapters import (
    AdHocSolver,
    AnnealingSolver,
    GeneticSolver,
    MultiStartSolver,
    NeighborhoodSolver,
    TabuSolver,
    WarmStartInitializer,
)
from repro.solvers.base import Solver, SolveResult, solver_streams
from repro.solvers.registry import (
    available_solvers,
    make_solver,
    register_solver_family,
    solver_families,
)

__all__ = [
    "AdHocSolver",
    "AnnealingSolver",
    "GeneticSolver",
    "MultiStartSolver",
    "NeighborhoodSolver",
    "Solver",
    "SolveResult",
    "TabuSolver",
    "WarmStartInitializer",
    "available_solvers",
    "make_solver",
    "register_solver_family",
    "solver_families",
    "solver_streams",
]
