"""Solver adapters: every method family behind the uniform contract.

Each adapter owns one family's configuration (movement, candidates,
phases, schedule, ...) and translates :meth:`~repro.solvers.base.Solver.solve`
into the family's native run call.  The shared conventions:

* **Streams** — :func:`~repro.solvers.base.solver_streams` splits the
  seed into an *init* stream (initial placement / population) and a
  *run* stream (the optimization itself).  A warm start skips the init
  stream entirely, so warm-vs-cold parity is exact when the warm
  placement equals what the cold run would have drawn
  (:meth:`initial_placement` exposes exactly that placement).
* **Budget** — overrides the family's native effort knob: phases for
  the neighborhood family, generations for the GA; ignored (with
  ``supports_warm_start`` analogously ``False``) for ad hoc
  constructors.
* **Engine** — threaded into the family's evaluator(s); the delta and
  stacked engines follow it too.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from typing import TYPE_CHECKING

import numpy as np

from repro.adhoc.registry import make_method
from repro.anytime.deadline import DEFAULT_CLOCK
from repro.core.evaluation import Evaluator
from repro.core.problem import ProblemInstance
from repro.core.solution import Placement
from repro.genetic.engine import GAConfig, GeneticAlgorithm
from repro.genetic.initializers import AdHocInitializer, PopulationInitializer
from repro.neighborhood.annealing import AnnealingSchedule, SimulatedAnnealing
from repro.neighborhood.multichain import MultiChainSearch, chain_generators
from repro.neighborhood.registry import make_movement
from repro.neighborhood.search import NeighborhoodSearch
from repro.neighborhood.tabu import TabuSearch
from repro.solvers.base import SolveResult, Solver, _check_batch, solver_streams

if TYPE_CHECKING:
    from repro.anytime.deadline import Deadline
    from repro.core.engine.handoff import IncumbentCache
    from repro.core.fitness import FitnessFunction

__all__ = [
    "AdHocSolver",
    "NeighborhoodSolver",
    "AnnealingSolver",
    "TabuSolver",
    "MultiStartSolver",
    "GeneticSolver",
    "WarmStartInitializer",
]


def _check_budget(budget: "int | None") -> None:
    if budget is not None and budget <= 0:
        raise ValueError(f"budget must be positive or None, got {budget}")


class AdHocSolver(Solver):
    """A constructive ad hoc method as a one-shot solver.

    No budget, no warm start: the method builds its placement from
    scratch (that is its job as a scenario *baseline* and initializer
    source).  ``solve`` costs exactly one evaluation; passing a warm
    start is an error — silently discarding the caller's placement
    would be worse than refusing it.
    """

    supports_warm_start = False

    def __init__(self, method: str = "hotspot", **method_params) -> None:
        self._method_name = method
        self._method = make_method(method, **method_params)

    @property
    def name(self) -> str:
        return f"adhoc:{self._method_name}"

    def solve(
        self,
        problem: ProblemInstance,
        *,
        seed=0,
        budget=None,
        warm_start=None,
        engine: str = "auto",
        fitness=None,
        engine_cache=None,
        deadline: "Deadline | None" = None,
    ) -> SolveResult:
        # ``deadline`` is accepted for contract uniformity but has no
        # phase boundaries to poll: a constructive method is one atomic
        # build-and-evaluate, which even an expired deadline must allow
        # (the anytime contract requires a valid evaluated result).
        _check_budget(budget)
        if warm_start is not None:
            raise ValueError(
                f"{self.name} is a constructive method and does not accept "
                "a warm start (it always builds from scratch)"
            )
        started = DEFAULT_CLOCK.now()
        rng_init, _ = solver_streams(seed)
        placement = self._method.place(problem, rng_init)
        evaluator = Evaluator(problem, fitness, engine=engine)
        evaluation = evaluator.evaluate(placement)
        return SolveResult(
            solver=self.name,
            best=evaluation,
            n_evaluations=1,
            n_phases=0,
            warm_started=False,
            elapsed_seconds=DEFAULT_CLOCK.now() - started,
        )


class _InitializedSolver(Solver):
    """Shared init-stream handling of the warm-startable families."""

    def __init__(self, init: str = "random") -> None:
        self._init_name = init
        self._init_method = make_method(init)

    def initial_placement(
        self, problem: ProblemInstance, seed
    ) -> Placement:
        """The placement a cold :meth:`solve` with this seed starts from.

        Drawn from the dedicated init stream, so passing it back as
        ``warm_start`` with the same seed reproduces the cold run
        bit-for-bit — the contract the warm-start parity tests pin.
        """
        rng_init, _ = solver_streams(seed)
        return self._init_method.place(problem, rng_init)

    def _resolve_start(
        self,
        problem: ProblemInstance,
        seed,
        warm_start: "Placement | None",
    ) -> tuple[Placement, np.random.Generator, bool]:
        """(initial placement, run stream, warm?) under the stream contract."""
        self.check_warm_start(problem, warm_start)
        rng_init, rng_run = solver_streams(seed)
        if warm_start is not None:
            return warm_start, rng_run, True
        return self._init_method.place(problem, rng_init), rng_run, False


class NeighborhoodSolver(_InitializedSolver):
    """The paper's best-improvement neighborhood search (Algorithm 1).

    Runs on the batched engine (whole candidate sets per phase), which
    keeps no incumbent cache — ``engine_cache`` is accepted for contract
    uniformity but has nothing to seed, and results never carry one.
    This family's warm-start saving comes from ``stall_phases``: a
    near-converged start stops after a handful of phases.
    """

    def __init__(
        self,
        movement: str = "swap",
        init: str = "random",
        n_candidates: int = 16,
        max_phases: int = 64,
        stall_phases: "int | None" = None,
        accept_equal: bool = False,
        **movement_params,
    ) -> None:
        super().__init__(init)
        self._movement_name = movement
        self._movement = make_movement(movement, **movement_params)
        self.n_candidates = n_candidates
        self.max_phases = max_phases
        self.stall_phases = stall_phases
        self.accept_equal = accept_equal

    @property
    def name(self) -> str:
        return f"search:{self._movement_name}"

    def solve(
        self,
        problem: ProblemInstance,
        *,
        seed=0,
        budget=None,
        warm_start=None,
        engine: str = "auto",
        fitness=None,
        engine_cache=None,
        deadline: "Deadline | None" = None,
    ) -> SolveResult:
        _check_budget(budget)
        initial, rng_run, warm = self._resolve_start(problem, seed, warm_start)
        evaluator = Evaluator(problem, fitness, engine=engine)
        search = NeighborhoodSearch(
            movement=self._movement,
            n_candidates=self.n_candidates,
            max_phases=budget if budget is not None else self.max_phases,
            stall_phases=self.stall_phases,
            accept_equal=self.accept_equal,
        )
        result = search.run(evaluator, initial, rng_run, deadline=deadline)
        return SolveResult(
            solver=self.name,
            best=result.best,
            n_evaluations=result.n_evaluations,
            n_phases=result.n_phases,
            warm_started=warm,
            trace=result.trace,
            engine_cache=result.engine_cache,
            stopped_by=result.stopped_by,
            elapsed_seconds=result.elapsed_seconds,
        )

    def solve_batch(
        self,
        problem: ProblemInstance,
        seeds,
        *,
        budget=None,
        warm_starts=None,
        engine: str = "auto",
        fitness=None,
        engine_caches=None,
        deadline: "Deadline | None" = None,
    ) -> list[SolveResult]:
        """All seeds as one lockstep multi-chain portfolio.

        Seed ``i``'s init/run streams come from the same
        :func:`~repro.solvers.base.solver_streams` split as a serial
        :meth:`solve`, and each chain consumes only its own run stream
        inside :class:`~repro.neighborhood.multichain.MultiChainSearch`,
        so the per-seed results (best, trace, phase and evaluation
        counts) are bit-identical to the base class's serial loop — at a
        fraction of its wall-clock, because every phase measures all
        chains' candidates in one stacked engine pass.  ``engine_caches``
        is accepted for contract uniformity (this family's batched
        engine keeps no incumbent cache).
        """
        _check_budget(budget)
        warm_starts, _ = _check_batch(seeds, warm_starts, engine_caches)
        initials: list[Placement] = []
        rngs: list[np.random.Generator] = []
        warm_flags: list[bool] = []
        for seed, warm_start in zip(seeds, warm_starts):
            initial, rng_run, warm = self._resolve_start(
                problem, seed, warm_start
            )
            initials.append(initial)
            rngs.append(rng_run)
            warm_flags.append(warm)
        search = MultiChainSearch(
            self._movement,
            n_candidates=self.n_candidates,
            max_phases=budget if budget is not None else self.max_phases,
            stall_phases=self.stall_phases,
            accept_equal=self.accept_equal,
            engine=engine,
        )
        results = search.run(
            problem, initials, rngs, fitness=fitness, deadline=deadline
        )
        return [
            SolveResult(
                solver=self.name,
                best=result.best,
                n_evaluations=result.n_evaluations,
                n_phases=result.n_phases,
                warm_started=warm,
                trace=result.trace,
                engine_cache=result.engine_cache,
                stopped_by=result.stopped_by,
                elapsed_seconds=result.elapsed_seconds,
            )
            for result, warm in zip(results, warm_flags)
        ]


class AnnealingSolver(_InitializedSolver):
    """Simulated annealing (the authors' WMN-SA follow-up line)."""

    def __init__(
        self,
        movement: str = "swap",
        init: str = "random",
        schedule: "AnnealingSchedule | None" = None,
        max_phases: int = 64,
        moves_per_phase: int = 16,
        track_cache: bool = False,
        **movement_params,
    ) -> None:
        super().__init__(init)
        self._movement_name = movement
        self._movement = make_movement(movement, **movement_params)
        self.schedule = schedule
        self.max_phases = max_phases
        self.moves_per_phase = moves_per_phase
        #: Snapshot the delta engine at every new global best so
        #: ``SolveResult.engine_cache`` can seed the next run.  Off by
        #: default — solves that never hand off pay no copies; the
        #: scenario runner switches it on.
        self.track_cache = track_cache

    @property
    def name(self) -> str:
        return f"annealing:{self._movement_name}"

    def solve(
        self,
        problem: ProblemInstance,
        *,
        seed=0,
        budget=None,
        warm_start=None,
        engine: str = "auto",
        fitness=None,
        engine_cache=None,
        deadline: "Deadline | None" = None,
    ) -> SolveResult:
        _check_budget(budget)
        initial, rng_run, warm = self._resolve_start(problem, seed, warm_start)
        evaluator = Evaluator(problem, fitness, engine=engine)
        annealing = SimulatedAnnealing(
            movement=self._movement,
            schedule=self.schedule,
            max_phases=budget if budget is not None else self.max_phases,
            moves_per_phase=self.moves_per_phase,
        )
        result = annealing.run(
            evaluator,
            initial,
            rng_run,
            engine_cache=engine_cache,
            track_cache=self.track_cache,
            deadline=deadline,
        )
        return SolveResult(
            solver=self.name,
            best=result.best,
            n_evaluations=result.n_evaluations,
            n_phases=result.n_phases,
            warm_started=warm,
            trace=result.trace,
            engine_cache=result.engine_cache,
            stopped_by=result.stopped_by,
            elapsed_seconds=result.elapsed_seconds,
        )


class TabuSolver(_InitializedSolver):
    """Tabu search (the authors' WMN-TS follow-up line)."""

    def __init__(
        self,
        movement: str = "swap",
        init: str = "random",
        tenure: int = 8,
        n_candidates: int = 16,
        max_phases: int = 64,
        track_cache: bool = False,
        **movement_params,
    ) -> None:
        super().__init__(init)
        self._movement_name = movement
        self._movement = make_movement(movement, **movement_params)
        self.tenure = tenure
        self.n_candidates = n_candidates
        self.max_phases = max_phases
        #: See :attr:`AnnealingSolver.track_cache`.
        self.track_cache = track_cache

    @property
    def name(self) -> str:
        return f"tabu:{self._movement_name}"

    def solve(
        self,
        problem: ProblemInstance,
        *,
        seed=0,
        budget=None,
        warm_start=None,
        engine: str = "auto",
        fitness=None,
        engine_cache=None,
        deadline: "Deadline | None" = None,
    ) -> SolveResult:
        _check_budget(budget)
        initial, rng_run, warm = self._resolve_start(problem, seed, warm_start)
        evaluator = Evaluator(problem, fitness, engine=engine)
        tabu = TabuSearch(
            movement=self._movement,
            tenure=self.tenure,
            n_candidates=self.n_candidates,
            max_phases=budget if budget is not None else self.max_phases,
        )
        result = tabu.run(
            evaluator,
            initial,
            rng_run,
            engine_cache=engine_cache,
            track_cache=self.track_cache,
            deadline=deadline,
        )
        return SolveResult(
            solver=self.name,
            best=result.best,
            n_evaluations=result.n_evaluations,
            n_phases=result.n_phases,
            warm_started=warm,
            trace=result.trace,
            engine_cache=result.engine_cache,
            stopped_by=result.stopped_by,
            elapsed_seconds=result.elapsed_seconds,
        )


class MultiStartSolver(Solver):
    """Best-of-``R`` restarts on the lockstep multi-chain engine.

    Chain ``r`` draws its initial placement from its own spawned
    generator (the :func:`~repro.neighborhood.multichain.chain_generators`
    contract).  A warm start replaces chain 0's initial *after* the draw
    — the draw is still consumed, so every chain's proposal stream is
    identical to the cold run's and only the start of chain 0 differs.
    """

    def __init__(
        self,
        movement: str = "swap",
        n_restarts: int = 8,
        n_candidates: int = 16,
        max_phases: int = 64,
        stall_phases: "int | None" = None,
        accept_equal: bool = False,
        **movement_params,
    ) -> None:
        if n_restarts <= 0:
            raise ValueError(f"n_restarts must be positive, got {n_restarts}")
        self._movement_name = movement
        self._movement = make_movement(movement, **movement_params)
        self.n_restarts = n_restarts
        self.n_candidates = n_candidates
        self.max_phases = max_phases
        self.stall_phases = stall_phases
        self.accept_equal = accept_equal

    @property
    def name(self) -> str:
        return f"multistart:{self._movement_name}"

    def solve(
        self,
        problem: ProblemInstance,
        *,
        seed=0,
        budget=None,
        warm_start=None,
        engine: str = "auto",
        fitness=None,
        engine_cache=None,
        deadline: "Deadline | None" = None,
    ) -> SolveResult:
        _check_budget(budget)
        self.check_warm_start(problem, warm_start)
        rngs = chain_generators(seed, self.n_restarts)
        initials = [
            Placement.random(problem.grid, problem.n_routers, rng)
            for rng in rngs
        ]
        warm = warm_start is not None
        if warm:
            initials[0] = warm_start
        search = MultiChainSearch(
            self._movement,
            n_candidates=self.n_candidates,
            max_phases=budget if budget is not None else self.max_phases,
            stall_phases=self.stall_phases,
            accept_equal=self.accept_equal,
            engine=engine,
        )
        results = search.run(
            problem, initials, rngs, fitness=fitness, deadline=deadline
        )
        fitnesses = np.array([result.best.fitness for result in results])
        winner = results[int(np.argmax(fitnesses))]
        # The portfolio was cut short if *any* restart chain was masked
        # out, even when the winning chain had already converged.
        stopped_by = next(
            (result.stopped_by for result in results if result.stopped_by),
            None,
        )
        return SolveResult(
            solver=self.name,
            best=winner.best,
            n_evaluations=sum(result.n_evaluations for result in results),
            n_phases=winner.n_phases,
            warm_started=warm,
            trace=winner.trace,
            stopped_by=stopped_by,
            elapsed_seconds=winner.elapsed_seconds,
        )


class WarmStartInitializer(PopulationInitializer):
    """Inject a warm-start individual into another initializer's output.

    The inner initializer generates the *full* population first (its
    stream consumption is unchanged), then individual 0 is replaced by
    the warm placement — cold and warm GA runs therefore share every
    random draw and differ only in that one chromosome.
    """

    def __init__(
        self, inner: PopulationInitializer, warm_start: Placement
    ) -> None:
        self.inner = inner
        self.warm_start = warm_start

    def generate(
        self, problem: ProblemInstance, size: int, rng: np.random.Generator
    ) -> list[Placement]:
        placements = self.inner.generate(problem, size, rng)
        placements[0] = self.warm_start
        return placements

    def __repr__(self) -> str:
        return f"WarmStartInitializer(inner={self.inner!r})"


class GeneticSolver(Solver):
    """The generational GA, initialized by an ad hoc method."""

    def __init__(
        self,
        init: str = "hotspot",
        population_size: int = 64,
        n_generations: int = 200,
        config: "GAConfig | None" = None,
    ) -> None:
        self._init_name = init
        self._initializer = AdHocInitializer(make_method(init))
        if config is None:
            config = GAConfig(
                population_size=population_size, n_generations=n_generations
            )
        self.config = config

    @property
    def name(self) -> str:
        return f"ga:{self._init_name}"

    def solve(
        self,
        problem: ProblemInstance,
        *,
        seed=0,
        budget=None,
        warm_start=None,
        engine: str = "auto",
        fitness=None,
        engine_cache=None,
        deadline: "Deadline | None" = None,
    ) -> SolveResult:
        _check_budget(budget)
        self.check_warm_start(problem, warm_start)
        # The GA draws its population inside the run stream (its single
        # generator covers init + evolution); the warm individual is
        # substituted after generation, keeping the streams aligned.
        _, rng_run = solver_streams(seed)
        config = self.config
        if budget is not None:
            config = dataclass_replace(config, n_generations=budget)
        initializer: PopulationInitializer = self._initializer
        warm = warm_start is not None
        if warm:
            initializer = WarmStartInitializer(initializer, warm_start)
        evaluator = Evaluator(problem, fitness, engine=engine)
        result = GeneticAlgorithm(config).run(
            evaluator, initializer, rng_run, deadline=deadline
        )
        return SolveResult(
            solver=self.name,
            best=result.best,
            n_evaluations=result.n_evaluations,
            n_phases=result.n_generations,
            warm_started=warm,
            trace=result.trace,
            stopped_by=result.stopped_by,
            elapsed_seconds=result.elapsed_seconds,
        )
