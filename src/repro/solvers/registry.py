"""Name-based lookup of solvers — the one registry every layer resolves.

A solver spec is ``"family"`` or ``"family:variant"``:

* ``adhoc:<method>`` — the seven constructive methods (Section 3).
* ``search:<movement>`` — the paper's neighborhood search (Algorithm 1).
* ``annealing:<movement>`` — simulated annealing (WMN-SA line).
* ``tabu:<movement>`` — tabu search (WMN-TS line).
* ``multistart:<movement>`` — best-of-R restarts on the lockstep engine.
* ``ga:<method>`` — the genetic algorithm, initialized by an ad hoc
  method (Section 5's initializer study).

A bare family name uses its default variant (``adhoc`` → ``hotspot``,
the movement families → ``swap``, ``ga`` → ``hotspot``).  Extra keyword
arguments pass straight into the adapter's constructor::

    solver = make_solver("search:swap", n_candidates=32, stall_phases=8)
    result = solver.solve(problem, seed=7, budget=64)

:func:`available_solvers` enumerates every concrete spec — the CLI's
``solve``/``scenario`` choices and the README's registry table come
from here, so the three lists cannot drift apart.
"""

from __future__ import annotations

from typing import Callable

from repro.adhoc.registry import available_methods
from repro.neighborhood.registry import available_movements
from repro.solvers.adapters import (
    AdHocSolver,
    AnnealingSolver,
    GeneticSolver,
    MultiStartSolver,
    NeighborhoodSolver,
    TabuSolver,
)
from repro.solvers.base import Solver

__all__ = [
    "available_solvers",
    "make_solver",
    "register_solver_family",
    "solver_families",
]


class _Family:
    """One solver family: factory + variant enumeration."""

    def __init__(
        self,
        name: str,
        factory: Callable[..., Solver],
        variants: Callable[[], list[str]],
        default_variant: str,
        description: str,
    ) -> None:
        self.name = name
        self.factory = factory
        self.variants = variants
        self.default_variant = default_variant
        self.description = description


_FAMILIES: dict[str, _Family] = {}


def register_solver_family(
    name: str,
    factory: Callable[..., Solver],
    variants: Callable[[], list[str]],
    default_variant: str,
    description: str,
) -> None:
    """Register a solver family under ``name``.

    ``factory(variant, **kwargs)`` must build a
    :class:`~repro.solvers.base.Solver`; ``variants()`` enumerates the
    accepted variant names (the registry validates specs against it).
    """
    if name in _FAMILIES:
        raise ValueError(f"solver family {name!r} is already registered")
    _FAMILIES[name] = _Family(name, factory, variants, default_variant, description)


def solver_families() -> dict[str, str]:
    """``{family: description}`` of every registered family."""
    return {name: family.description for name, family in sorted(_FAMILIES.items())}


def available_solvers() -> list[str]:
    """Every concrete ``family:variant`` spec, sorted."""
    specs: list[str] = []
    for name, family in _FAMILIES.items():
        specs.extend(f"{name}:{variant}" for variant in family.variants())
    return sorted(specs)


def make_solver(spec: str, **kwargs) -> Solver:
    """Instantiate the solver the spec names.

    ``spec`` is ``"family"`` (default variant) or ``"family:variant"``;
    ``kwargs`` go to the family's adapter constructor.
    """
    family_name, _, variant = spec.partition(":")
    try:
        family = _FAMILIES[family_name]
    except KeyError:
        known = ", ".join(sorted(_FAMILIES))
        raise ValueError(
            f"unknown solver family {family_name!r}; known: {known}"
        ) from None
    variant = variant or family.default_variant
    if variant not in family.variants():
        known = ", ".join(family.variants())
        raise ValueError(
            f"unknown {family_name} variant {variant!r}; known: {known}"
        )
    return family.factory(variant, **kwargs)


# ----------------------------------------------------------------------
# Built-in families
# ----------------------------------------------------------------------

register_solver_family(
    "adhoc",
    lambda variant, **kwargs: AdHocSolver(method=variant, **kwargs),
    available_methods,
    default_variant="hotspot",
    description="constructive ad hoc placement (one-shot, no budget)",
)
register_solver_family(
    "search",
    lambda variant, **kwargs: NeighborhoodSolver(movement=variant, **kwargs),
    available_movements,
    default_variant="swap",
    description="best-improvement neighborhood search (paper Algorithm 1)",
)
register_solver_family(
    "annealing",
    lambda variant, **kwargs: AnnealingSolver(movement=variant, **kwargs),
    available_movements,
    default_variant="swap",
    description="simulated annealing over placement movements",
)
register_solver_family(
    "tabu",
    lambda variant, **kwargs: TabuSolver(movement=variant, **kwargs),
    available_movements,
    default_variant="swap",
    description="tabu search with router-attribute memory",
)
register_solver_family(
    "multistart",
    lambda variant, **kwargs: MultiStartSolver(movement=variant, **kwargs),
    available_movements,
    default_variant="swap",
    description="best-of-R restarts on the lockstep multi-chain engine",
)
register_solver_family(
    "ga",
    lambda variant, **kwargs: GeneticSolver(init=variant, **kwargs),
    available_methods,
    default_variant="hotspot",
    description="generational GA initialized by an ad hoc method",
)
