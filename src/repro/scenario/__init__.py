"""Dynamic deployment scenarios with warm-start re-optimization.

The paper places routers for one static client snapshot; this package
models what comes after deployment: clients drift and churn, routers
fail, radios degrade.  A :class:`Scenario` unfolds a reproducible
sequence of problem instances, and :class:`ScenarioRunner` re-optimizes
each step through any registered solver, seeding every re-solve with the
previous step's best placement and the delta engine's incumbent cache::

    from repro.scenario import Scenario, ScenarioRunner

    scenario = Scenario.client_drift(problem, n_steps=20, sigma=2.0)
    runner = ScenarioRunner("search:swap", budget=64)
    outcome = runner.run(scenario, seed=7)
    print(outcome.summary())

:class:`ScenarioFleet` scales the same loop to a whole
(scenario x solver x seed) grid — lockstep replicates, deterministic
``SeedSequence`` sharding, optional process fan-out — and aggregates it
into a :class:`FleetReport` (mean/std tables, warm-vs-cold regret,
recovery curves).
"""

from repro.scenario.fleet import (
    FleetReport,
    FleetRun,
    ScenarioFleet,
    fleet_seed_grid,
)
from repro.scenario.perturbations import (
    ClientChurn,
    ClientDrift,
    Perturbation,
    RadioDegradation,
    RouterOutage,
    StepChange,
)
from repro.scenario.runner import (
    ScenarioResult,
    ScenarioRunner,
    ScenarioStepResult,
)
from repro.scenario.scenario import Scenario, ScenarioStep

__all__ = [
    "ClientChurn",
    "ClientDrift",
    "FleetReport",
    "FleetRun",
    "Perturbation",
    "RadioDegradation",
    "RouterOutage",
    "Scenario",
    "ScenarioFleet",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioStep",
    "ScenarioStepResult",
    "StepChange",
    "fleet_seed_grid",
]
