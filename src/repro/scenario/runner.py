"""Re-optimizing a deployment as its scenario unfolds.

:class:`ScenarioRunner` walks the instance sequence of a
:class:`~repro.scenario.scenario.Scenario` and solves every step through
one :class:`~repro.solvers.base.Solver`.  Step 0 is a cold solve; each
later step is *re-optimized* rather than re-solved:

* the previous step's best placement — carried across fleet changes by
  :meth:`~repro.scenario.perturbations.StepChange.carry_placement` —
  becomes the solver's ``warm_start``, and
* the previous run's exported
  :class:`~repro.core.engine.handoff.IncumbentCache` seeds the delta
  engine's reset, so state the perturbation left valid (e.g. the whole
  router adjacency under client drift) is reused, not rebuilt.

Warm-started searches converge in a fraction of a cold solve's phases
(``benchmarks/bench_scenario.py`` pins the speedup), and on an
*unchanged* instance they reproduce the cold run bit-for-bit (the
warm-start parity tests), so the runner trades no quality for the
speed.  ``warm=False`` switches to cold re-solves of the identical
instance sequence — the controlled baseline of that benchmark.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.anytime.deadline import DEFAULT_CLOCK
from repro.resilience.checkpoint import (
    entropy_payload,
    open_store,
    solve_result_from_dict,
    solve_result_to_dict,
)
from repro.resilience.supervisor import (
    RetryPolicy,
    SupervisionReport,
    retry_call,
)
from repro.scenario.scenario import Scenario, ScenarioStep
from repro.seeding import root_sequence, spawn_children
from repro.solvers.base import SolveResult, Solver

_STEP_FORMAT = "repro.scenario_step.v1"

__all__ = ["ScenarioStepResult", "ScenarioResult", "ScenarioRunner"]




def _validate_budgets(
    budget: "int | None", warm_budget: "int | None", warm_enabled: bool
) -> None:
    """The runner/fleet budget rules — one implementation, one message set."""
    if budget is not None and budget <= 0:
        raise ValueError(
            f"budget must be a positive int or None, got {budget}"
        )
    if warm_budget is not None:
        if warm_budget <= 0:
            raise ValueError(
                "warm_budget must be a positive int or None, "
                f"got {warm_budget}"
            )
        if not warm_enabled:
            raise ValueError(
                "warm_budget only applies to warm-started steps; "
                "with warm=False it would be silently ignored — drop "
                "it or enable warm starts"
            )


@contextmanager
def _cache_tracking(solver: Solver, enabled: bool):
    """Temporarily switch on a solver's best-snapshot cache tracking.

    Cache-capable solvers expose ``track_cache``; scenario runs need it
    on so each step's exported engine cache can seed the next step's
    reset.  The prior value is restored on exit **whatever happens** —
    the runner must not leave a lasting side effect on a caller-owned
    solver (an earlier revision did, changing the snapshot behavior of
    later unrelated ``solve()`` calls).
    """
    if not (enabled and hasattr(solver, "track_cache")):
        yield
        return
    prior = solver.track_cache
    solver.track_cache = True
    try:
        yield
    finally:
        solver.track_cache = prior


@dataclass(frozen=True)
class ScenarioStepResult:
    """One step's re-optimization outcome."""

    step: ScenarioStep
    result: SolveResult
    seconds: float

    @property
    def index(self) -> int:
        """The step's position in the scenario timeline."""
        return self.step.index

    @property
    def event(self) -> str:
        """What changed going into this step."""
        return self.step.event


@dataclass(frozen=True)
class ScenarioResult:
    """A full scenario run: one solved step per instance.

    ``seed`` is the run's reproducibility provenance: the root
    ``SeedSequence.entropy``, recorded uniformly whether the caller
    passed an int or a ``SeedSequence`` (spawned children inherit their
    root's entropy, so fleet replicates all report the fleet seed).
    """

    scenario_name: str
    solver_name: str
    warm: bool
    steps: tuple[ScenarioStepResult, ...]
    seed: "int | tuple | None" = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a scenario result needs at least one step")

    @property
    def n_steps(self) -> int:
        """Number of solved steps (including the initial deployment)."""
        return len(self.steps)

    @property
    def total_evaluations(self) -> int:
        """Evaluations spent across all steps."""
        return sum(step.result.n_evaluations for step in self.steps)

    @property
    def final(self) -> SolveResult:
        """The last step's solve outcome."""
        return self.steps[-1].result

    @property
    def deadline_hits(self) -> int:
        """Steps whose solve was stopped by a deadline or cancellation."""
        return sum(1 for step in self.steps if step.result.stopped_by)

    def reopt_seconds(self) -> float:
        """Wall-clock spent on steps 1..n (the re-optimizations).

        Step 0 is excluded: both warm and cold runs solve it cold, so
        per-step speedup claims compare only the re-optimized steps.
        """
        return sum(step.seconds for step in self.steps[1:])

    def reopt_evaluations(self) -> int:
        """Evaluations spent on steps 1..n (the re-optimizations)."""
        return sum(step.result.n_evaluations for step in self.steps[1:])

    def mean_fitness(self) -> float:
        """Mean best fitness across all steps (solution quality held)."""
        return float(
            np.mean([step.result.best.fitness for step in self.steps])
        )

    def timeline(self) -> list[dict]:
        """Per-step records for reporting and rendering."""
        return [
            {
                "step": step.index,
                "seed": self.seed,
                "event": step.event,
                "giant": step.result.best.giant_size,
                "n_routers": step.result.best.metrics.n_routers,
                "coverage": step.result.best.covered_clients,
                "n_clients": step.result.best.metrics.n_clients,
                "fitness": step.result.best.fitness,
                "phases": step.result.n_phases,
                "evaluations": step.result.n_evaluations,
                "seconds": step.seconds,
                "warm": step.result.warm_started,
                "stopped_by": step.result.stopped_by,
            }
            for step in self.steps
        ]

    def summary(self) -> str:
        """One-line account of the whole run."""
        start = "warm" if self.warm else "cold"
        provenance = "" if self.seed is None else f" seed={self.seed},"
        hits = self.deadline_hits
        deadline = f", {hits} deadline-stopped step(s)" if hits else ""
        return (
            f"[{self.scenario_name} / {self.solver_name} / {start}]"
            f"{provenance} "
            f"{self.n_steps} steps, {self.total_evaluations} evaluations, "
            f"{sum(s.seconds for s in self.steps):.2f}s, "
            f"mean fitness {self.mean_fitness():.4f}{deadline}"
        )


class ScenarioRunner:
    """Drives one solver through a scenario, warm-starting each step.

    Parameters
    ----------
    solver:
        A :class:`~repro.solvers.base.Solver` or a registry spec such as
        ``"tabu:swap"`` (resolved via
        :func:`~repro.solvers.registry.make_solver`).
    budget:
        Per-step effort in the solver's native unit (``None`` keeps the
        solver's default).
    warm_budget:
        Effort for the warm-started steps 1..n; defaults to ``budget``.
        Stall-based solvers stop early on their own once the warm start
        is near-converged, so most runs leave this alone.
    warm:
        ``False`` re-solves every step cold (the benchmark baseline).
    reuse_cache:
        Whether to hand the delta engine's incumbent cache across steps
        (only ever a performance hint — results are unaffected).
    engine / fitness:
        Threaded into every solve, as on :meth:`Solver.solve`.
    policy:
        The :class:`~repro.resilience.supervisor.RetryPolicy` for the
        per-step retry loop (transient step failures — injected or real
        — are retried with backoff; a crashing compiled tier degrades
        that step to the numpy engines).
    """

    def __init__(
        self,
        solver: "Solver | str",
        *,
        budget: "int | None" = None,
        warm_budget: "int | None" = None,
        warm: bool = True,
        reuse_cache: bool = True,
        engine: str = "auto",
        fitness=None,
        policy: "RetryPolicy | None" = None,
        **solver_kwargs,
    ) -> None:
        if isinstance(solver, str):
            from repro.solvers.registry import make_solver

            solver = make_solver(solver, **solver_kwargs)
        elif solver_kwargs:
            raise ValueError(
                "solver keyword arguments require a registry spec, "
                "not a Solver instance"
            )
        _validate_budgets(budget, warm_budget, warm)
        self.solver = solver
        self.budget = budget
        self.warm_budget = warm_budget if warm_budget is not None else budget
        self.warm = warm
        self.reuse_cache = reuse_cache
        self.engine = engine
        self.fitness = fitness
        self.policy = policy

    def run(
        self,
        scenario: Scenario,
        *,
        seed: "int | np.random.SeedSequence" = 0,
        checkpoint: "str | None" = None,
        resume_from: "str | None" = None,
        report: "SupervisionReport | None" = None,
    ) -> ScenarioResult:
        """Unfold ``scenario`` and (re-)optimize every step.

        One root seed reproduces everything: its first child drives the
        scenario's perturbations, the second spawns one solve stream per
        step — so warm and cold runs of the same seed see the *same*
        instance sequence and the same per-step solver streams.

        ``checkpoint`` persists every completed step; ``resume_from``
        restores checkpointed steps (re-verifying the first restored one
        against a fresh recompute) and solves only the rest — semantics
        as on :meth:`repro.scenario.fleet.ScenarioFleet.run`, at step
        granularity.
        """
        root = root_sequence(seed)
        unfold_seq, solve_seq = spawn_children(root, 2)
        steps = scenario.unfold(unfold_seq)
        return self.run_steps(
            steps,
            seed=solve_seq,
            scenario_name=scenario.name,
            checkpoint=checkpoint,
            resume_from=resume_from,
            report=report,
        )

    def run_steps(
        self,
        steps: Sequence[ScenarioStep],
        *,
        seed: "int | np.random.SeedSequence" = 0,
        scenario_name: str = "steps",
        checkpoint: "str | None" = None,
        resume_from: "str | None" = None,
        report: "SupervisionReport | None" = None,
    ) -> ScenarioResult:
        """(Re-)optimize an already-unfolded step sequence.

        The solve half of :meth:`run`, split out so several runs can
        share one unfold: the scenario fleet replays the *same* instance
        sequence under many replication seeds (and both warm and cold),
        which is what makes its portfolios controlled comparisons.
        ``seed`` spawns one solve stream per step; the recorded
        provenance is its root entropy, exactly as :meth:`run` records
        the scenario seed.

        With a ``policy``, each step runs under the serial supervision
        loop (:func:`~repro.resilience.supervisor.retry_call`); without
        one, step errors propagate unwrapped as before.  With
        ``checkpoint``/``resume_from``, completed
        steps persist as ``step###`` documents and a resumed walk solves
        only the missing ones.  The warm-start chain survives resume
        because a restored step's best placement is exactly the computed
        one; only the engine-cache handoff (a performance hint, never a
        result input) restarts cold after a restored step.
        """
        solve_seq = root_sequence(seed)
        step_seeds = spawn_children(solve_seq, len(steps))
        warm_capable = self.warm and self.solver.supports_warm_start
        store = open_store(
            {
                "kind": "scenario-run",
                "scenario": scenario_name,
                "solver": self.solver.name,
                "n_steps": len(steps),
                "seed_entropy": entropy_payload(solve_seq.entropy),
                "budget": self.budget,
                "warm_budget": self.warm_budget,
                "warm": warm_capable,
                "reuse_cache": self.reuse_cache,
                "engine": self.engine,
                "fitness": (
                    repr(self.fitness) if self.fitness is not None else None
                ),
            },
            checkpoint=checkpoint,
            resume_from=resume_from,
        )

        results: list[ScenarioStepResult] = []
        previous: "SolveResult | None" = None
        verified_restore = False
        with _cache_tracking(self.solver, self.reuse_cache):
            for step, step_seed in zip(steps, step_seeds):
                key = f"step{step.index:03d}"
                restored = store is not None and store.has(key)
                if restored and verified_restore:
                    payload = store.load(key)
                    result = solve_result_from_dict(payload["result"])
                    results.append(
                        ScenarioStepResult(
                            step=step,
                            result=result,
                            seconds=float(payload["seconds"]),
                        )
                    )
                    previous = result
                    continue
                warm_start = None
                engine_cache = None
                if warm_capable and previous is not None:
                    warm_start = step.change.carry_placement(
                        previous.best.placement
                    )
                    if self.reuse_cache:
                        engine_cache = previous.engine_cache
                budget = (
                    self.budget if warm_start is None else self.warm_budget
                )
                # ``deadline`` makes the step cooperatively preemptible:
                # retry_call passes Deadline.after(policy.timeout) when
                # the policy carries one, so RetryPolicy(timeout=) now
                # bounds serial steps exactly like pooled tasks.
                def solve_step(
                    step=step,
                    step_seed=step_seed,
                    budget=budget,
                    warm_start=warm_start,
                    engine_cache=engine_cache,
                    deadline=None,
                ):
                    return self.solver.solve(
                        step.problem,
                        seed=step_seed,
                        budget=budget,
                        warm_start=warm_start,
                        engine=self.engine,
                        fitness=self.fitness,
                        engine_cache=engine_cache,
                        deadline=deadline,
                    )

                began = DEFAULT_CLOCK.now()
                if self.policy is None:
                    # No policy: exceptions propagate unwrapped — a
                    # genuinely broken step should fail loudly, not
                    # spend retries on a deterministic error.
                    result = solve_step()
                else:
                    result = retry_call(
                        solve_step,
                        task=step.index,
                        policy=self.policy,
                        label=(
                            f"{scenario_name}/{self.solver.name} "
                            f"step {step.index}"
                        ),
                        report=report,
                    )
                elapsed = DEFAULT_CLOCK.now() - began
                step_result = ScenarioStepResult(
                    step=step, result=result, seconds=elapsed
                )
                if store is not None:
                    payload = {
                        "format": _STEP_FORMAT,
                        "index": int(step.index),
                        "event": step.event,
                        "seconds": float(elapsed),
                        "result": solve_result_to_dict(result),
                    }
                    if restored:
                        # The first checkpointed step on a resumed walk
                        # is recomputed and compared, never trusted —
                        # the store-level parity gate.
                        store.verify_cell(key, payload)
                        verified_restore = True
                    else:
                        store.save(key, payload)
                results.append(step_result)
                previous = result
        return ScenarioResult(
            scenario_name=scenario_name,
            solver_name=self.solver.name,
            warm=warm_capable,
            steps=tuple(results),
            seed=solve_seq.entropy,
        )
