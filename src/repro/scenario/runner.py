"""Re-optimizing a deployment as its scenario unfolds.

:class:`ScenarioRunner` walks the instance sequence of a
:class:`~repro.scenario.scenario.Scenario` and solves every step through
one :class:`~repro.solvers.base.Solver`.  Step 0 is a cold solve; each
later step is *re-optimized* rather than re-solved:

* the previous step's best placement — carried across fleet changes by
  :meth:`~repro.scenario.perturbations.StepChange.carry_placement` —
  becomes the solver's ``warm_start``, and
* the previous run's exported
  :class:`~repro.core.engine.handoff.IncumbentCache` seeds the delta
  engine's reset, so state the perturbation left valid (e.g. the whole
  router adjacency under client drift) is reused, not rebuilt.

Warm-started searches converge in a fraction of a cold solve's phases
(``benchmarks/bench_scenario.py`` pins the speedup), and on an
*unchanged* instance they reproduce the cold run bit-for-bit (the
warm-start parity tests), so the runner trades no quality for the
speed.  ``warm=False`` switches to cold re-solves of the identical
instance sequence — the controlled baseline of that benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.scenario.scenario import Scenario, ScenarioStep
from repro.solvers.base import SolveResult, Solver

__all__ = ["ScenarioStepResult", "ScenarioResult", "ScenarioRunner"]


@dataclass(frozen=True)
class ScenarioStepResult:
    """One step's re-optimization outcome."""

    step: ScenarioStep
    result: SolveResult
    seconds: float

    @property
    def index(self) -> int:
        """The step's position in the scenario timeline."""
        return self.step.index

    @property
    def event(self) -> str:
        """What changed going into this step."""
        return self.step.event


@dataclass(frozen=True)
class ScenarioResult:
    """A full scenario run: one solved step per instance."""

    scenario_name: str
    solver_name: str
    warm: bool
    steps: tuple[ScenarioStepResult, ...]
    seed: "int | None" = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a scenario result needs at least one step")

    @property
    def n_steps(self) -> int:
        """Number of solved steps (including the initial deployment)."""
        return len(self.steps)

    @property
    def total_evaluations(self) -> int:
        """Evaluations spent across all steps."""
        return sum(step.result.n_evaluations for step in self.steps)

    @property
    def final(self) -> SolveResult:
        """The last step's solve outcome."""
        return self.steps[-1].result

    def reopt_seconds(self) -> float:
        """Wall-clock spent on steps 1..n (the re-optimizations).

        Step 0 is excluded: both warm and cold runs solve it cold, so
        per-step speedup claims compare only the re-optimized steps.
        """
        return sum(step.seconds for step in self.steps[1:])

    def reopt_evaluations(self) -> int:
        """Evaluations spent on steps 1..n (the re-optimizations)."""
        return sum(step.result.n_evaluations for step in self.steps[1:])

    def mean_fitness(self) -> float:
        """Mean best fitness across all steps (solution quality held)."""
        return float(
            np.mean([step.result.best.fitness for step in self.steps])
        )

    def timeline(self) -> list[dict]:
        """Per-step records for reporting and rendering."""
        return [
            {
                "step": step.index,
                "event": step.event,
                "giant": step.result.best.giant_size,
                "n_routers": step.result.best.metrics.n_routers,
                "coverage": step.result.best.covered_clients,
                "n_clients": step.result.best.metrics.n_clients,
                "fitness": step.result.best.fitness,
                "phases": step.result.n_phases,
                "evaluations": step.result.n_evaluations,
                "seconds": step.seconds,
                "warm": step.result.warm_started,
            }
            for step in self.steps
        ]

    def summary(self) -> str:
        """One-line account of the whole run."""
        start = "warm" if self.warm else "cold"
        return (
            f"[{self.scenario_name} / {self.solver_name} / {start}] "
            f"{self.n_steps} steps, {self.total_evaluations} evaluations, "
            f"{sum(s.seconds for s in self.steps):.2f}s, "
            f"mean fitness {self.mean_fitness():.4f}"
        )


class ScenarioRunner:
    """Drives one solver through a scenario, warm-starting each step.

    Parameters
    ----------
    solver:
        A :class:`~repro.solvers.base.Solver` or a registry spec such as
        ``"tabu:swap"`` (resolved via
        :func:`~repro.solvers.registry.make_solver`).
    budget:
        Per-step effort in the solver's native unit (``None`` keeps the
        solver's default).
    warm_budget:
        Effort for the warm-started steps 1..n; defaults to ``budget``.
        Stall-based solvers stop early on their own once the warm start
        is near-converged, so most runs leave this alone.
    warm:
        ``False`` re-solves every step cold (the benchmark baseline).
    reuse_cache:
        Whether to hand the delta engine's incumbent cache across steps
        (only ever a performance hint — results are unaffected).
    engine / fitness:
        Threaded into every solve, as on :meth:`Solver.solve`.
    """

    def __init__(
        self,
        solver: "Solver | str",
        *,
        budget: "int | None" = None,
        warm_budget: "int | None" = None,
        warm: bool = True,
        reuse_cache: bool = True,
        engine: str = "auto",
        fitness=None,
        **solver_kwargs,
    ) -> None:
        if isinstance(solver, str):
            from repro.solvers.registry import make_solver

            solver = make_solver(solver, **solver_kwargs)
        elif solver_kwargs:
            raise ValueError(
                "solver keyword arguments require a registry spec, "
                "not a Solver instance"
            )
        if reuse_cache and hasattr(solver, "track_cache"):
            # The handoff consumer: have cache-capable solvers snapshot
            # their best so each step can seed the next one's reset.
            solver.track_cache = True
        self.solver = solver
        self.budget = budget
        self.warm_budget = warm_budget if warm_budget is not None else budget
        self.warm = warm
        self.reuse_cache = reuse_cache
        self.engine = engine
        self.fitness = fitness

    def run(
        self,
        scenario: Scenario,
        *,
        seed: "int | np.random.SeedSequence" = 0,
    ) -> ScenarioResult:
        """Unfold ``scenario`` and (re-)optimize every step.

        One root seed reproduces everything: its first child drives the
        scenario's perturbations, the second spawns one solve stream per
        step — so warm and cold runs of the same seed see the *same*
        instance sequence and the same per-step solver streams.
        """
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        unfold_seq, solve_seq = root.spawn(2)
        steps = scenario.unfold(unfold_seq)
        step_seeds = solve_seq.spawn(len(steps))
        warm_capable = self.warm and self.solver.supports_warm_start

        results: list[ScenarioStepResult] = []
        previous: "SolveResult | None" = None
        for step, step_seed in zip(steps, step_seeds):
            warm_start = None
            engine_cache = None
            if warm_capable and previous is not None:
                warm_start = step.change.carry_placement(
                    previous.best.placement
                )
                if self.reuse_cache:
                    engine_cache = previous.engine_cache
            budget = self.budget if warm_start is None else self.warm_budget
            began = time.perf_counter()
            result = self.solver.solve(
                step.problem,
                seed=step_seed,
                budget=budget,
                warm_start=warm_start,
                engine=self.engine,
                fitness=self.fitness,
                engine_cache=engine_cache,
            )
            elapsed = time.perf_counter() - began
            results.append(
                ScenarioStepResult(step=step, result=result, seconds=elapsed)
            )
            previous = result
        return ScenarioResult(
            scenario_name=scenario.name,
            solver_name=self.solver.name,
            warm=warm_capable,
            steps=tuple(results),
            seed=seed if isinstance(seed, int) else None,
        )
