"""Time-stepped deployment scenarios.

A :class:`Scenario` is a base instance plus one
:class:`~repro.scenario.perturbations.Perturbation` per transition;
:meth:`Scenario.unfold` materializes the deterministic sequence of
problem instances (step 0 is the base, step ``t`` is step ``t-1``
perturbed).  The classmethod builders cover the regimes the dynamic-WMN
literature re-optimizes under: client drift, client churn, router
knock-out and radio-range degradation — and scenarios compose freely
from any perturbation list.

Unfolding and solving are deliberately separate: the same unfolded
scenario can be replayed against any solver (and both warm and cold),
which is what makes the warm-start benchmark a controlled comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.problem import ProblemInstance
from repro.seeding import fresh_sequence, root_sequence, spawn_children
from repro.scenario.perturbations import (
    ClientChurn,
    ClientDrift,
    Perturbation,
    RadioDegradation,
    RouterOutage,
    StepChange,
)

__all__ = ["ScenarioStep", "Scenario"]


# Back-compat aliases: the fresh-copy helpers moved to the shared
# :mod:`repro.seeding` module (the sanctioned home of all spawning).
_fresh_sequence = fresh_sequence
_root_sequence = root_sequence


@dataclass(frozen=True)
class ScenarioStep:
    """One time step of an unfolded scenario.

    ``change`` is ``None`` for step 0 (the base instance) and otherwise
    records the perturbation outcome, including the placement carry rule
    used for warm starts.
    """

    index: int
    problem: ProblemInstance
    change: "StepChange | None" = field(default=None, compare=False)

    @property
    def event(self) -> str:
        """Human-readable description of what happened this step."""
        return "initial deployment" if self.change is None else self.change.event


@dataclass(frozen=True)
class Scenario:
    """A named, reproducible sequence of deployment conditions."""

    name: str
    base: ProblemInstance
    perturbations: tuple[Perturbation, ...]

    def __post_init__(self) -> None:
        if not self.perturbations:
            raise ValueError("a scenario needs at least one perturbation step")

    @property
    def n_steps(self) -> int:
        """Number of time steps, including the initial one."""
        return len(self.perturbations) + 1

    def unfold(
        self, seed: "int | np.random.SeedSequence" = 0
    ) -> list[ScenarioStep]:
        """The deterministic instance sequence this scenario describes.

        Each transition draws from its own child of the seed's
        ``SeedSequence`` (one spawn per step), so inserting or editing a
        late perturbation never disturbs the earlier steps.  A passed
        ``SeedSequence`` is copied before spawning: the instance
        sequence depends only on the seed's identity (entropy and spawn
        key), never on how often it was spawned from before — what lets
        every fleet shard re-unfold the same steps independently.
        """
        sequence = root_sequence(seed)
        children = spawn_children(sequence, len(self.perturbations))
        steps = [ScenarioStep(index=0, problem=self.base)]
        problem = self.base
        for index, (perturbation, child) in enumerate(
            zip(self.perturbations, children), start=1
        ):
            change = perturbation.apply(problem, np.random.default_rng(child))
            problem = change.problem
            steps.append(ScenarioStep(index=index, problem=problem, change=change))
        return steps

    # ------------------------------------------------------------------
    # Builders for the canonical regimes
    # ------------------------------------------------------------------

    @classmethod
    def client_drift(
        cls,
        base: ProblemInstance,
        n_steps: int,
        sigma: float = 2.0,
        fraction: float = 1.0,
    ) -> "Scenario":
        """``n_steps`` transitions of Gaussian client drift."""
        return cls(
            name=f"drift-{n_steps}x{sigma:g}",
            base=base,
            perturbations=_repeat(ClientDrift(sigma, fraction), n_steps),
        )

    @classmethod
    def client_churn(
        cls,
        base: ProblemInstance,
        n_steps: int,
        fraction: float = 0.1,
        distribution: str = "uniform",
        **distribution_params,
    ) -> "Scenario":
        """``n_steps`` transitions of client turnover."""
        return cls(
            name=f"churn-{n_steps}x{fraction:g}",
            base=base,
            perturbations=_repeat(
                ClientChurn(fraction, distribution, dict(distribution_params)),
                n_steps,
            ),
        )

    @classmethod
    def router_outages(
        cls, base: ProblemInstance, n_steps: int, count: int = 1
    ) -> "Scenario":
        """``n_steps`` transitions each knocking out ``count`` routers."""
        if n_steps * count >= base.n_routers:
            raise ValueError(
                f"{n_steps} outages of {count} routers would exhaust the "
                f"{base.n_routers}-router fleet"
            )
        return cls(
            name=f"outage-{n_steps}x{count}",
            base=base,
            perturbations=_repeat(RouterOutage(count), n_steps),
        )

    @classmethod
    def radio_degradation(
        cls,
        base: ProblemInstance,
        n_steps: int,
        factor: float = 0.9,
        floor: float = 0.5,
    ) -> "Scenario":
        """``n_steps`` transitions of radio-range decay."""
        return cls(
            name=f"degrade-{n_steps}x{factor:g}",
            base=base,
            perturbations=_repeat(RadioDegradation(factor, floor), n_steps),
        )

    @classmethod
    def composite(
        cls,
        name: str,
        base: ProblemInstance,
        perturbations: "Sequence[Perturbation] | Iterable[Perturbation]",
    ) -> "Scenario":
        """A scenario from an explicit, possibly mixed perturbation list."""
        return cls(name=name, base=base, perturbations=tuple(perturbations))


def _repeat(perturbation: Perturbation, n_steps: int) -> tuple[Perturbation, ...]:
    if n_steps <= 0:
        raise ValueError(f"n_steps must be positive, got {n_steps}")
    return (perturbation,) * n_steps
