"""Instance perturbations: how a deployment changes between time steps.

The paper optimizes one *static* client snapshot, but the conditions a
real mesh faces drift: users move and churn, routers fail, radios
degrade.  Each :class:`Perturbation` maps a problem instance to the next
step's instance — same grid, evolved clients/fleet — and reports, via
:class:`StepChange`, how to carry a placement across the boundary (the
warm start of the re-optimization, see :mod:`repro.scenario.runner`).

All perturbations draw from the generator they are handed, never from
global state, so an unfolded scenario is exactly reproducible from its
seed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.clients import ClientSet
from repro.core.geometry import Point
from repro.core.problem import ProblemInstance
from repro.core.routers import RouterFleet
from repro.core.solution import Placement
from repro.distributions.registry import make_distribution

__all__ = [
    "Perturbation",
    "StepChange",
    "ClientDrift",
    "ClientChurn",
    "RouterOutage",
    "RadioDegradation",
]


@dataclass(frozen=True)
class StepChange:
    """One applied perturbation: the next instance plus the carry rule.

    ``kept_routers`` lists the previous step's router ids that survive
    into the new fleet, in new-fleet order; ``None`` means the fleet is
    unchanged.  :meth:`carry_placement` uses it to map the previous
    placement onto the new problem — the warm start of the next solve.
    """

    problem: ProblemInstance
    event: str
    kept_routers: "np.ndarray | None" = field(default=None, compare=False)

    def carry_placement(self, placement: "Placement | None") -> "Placement | None":
        """The previous placement, adapted to the new problem frame.

        Surviving routers keep their cells (perturbations never change
        the grid, so the cells stay valid); routers knocked out of the
        fleet drop out of the placement.  ``None`` stays ``None``.
        """
        if placement is None:
            return None
        if self.kept_routers is None:
            return placement
        return Placement.from_cells(
            self.problem.grid,
            [placement.cells[int(i)] for i in self.kept_routers],
        )


class Perturbation(abc.ABC):
    """One kind of step-to-step change of a problem instance."""

    @abc.abstractmethod
    def apply(
        self, problem: ProblemInstance, rng: np.random.Generator
    ) -> StepChange:
        """The next step's instance (and carry rule) after this change."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _clients_from_array(problem: ProblemInstance, cells: np.ndarray) -> ClientSet:
    """A client set from an integer ``(M, 2)`` cell array (grid-clipped)."""
    width, height = problem.grid.width, problem.grid.height
    xs = np.clip(cells[:, 0], 0, width - 1).astype(int)
    ys = np.clip(cells[:, 1], 0, height - 1).astype(int)
    return ClientSet.from_points(
        [Point(int(x), int(y)) for x, y in zip(xs, ys)], grid=problem.grid
    )


@dataclass(frozen=True)
class ClientDrift(Perturbation):
    """Gaussian random-walk of the client population.

    Every step, a ``fraction`` of clients (chosen at random) takes one
    Gaussian step of standard deviation ``sigma`` cells per axis,
    clipped to the grid — the "users move around" regime of the rural
    re-optimization line (Fendji et al.).  Routers are untouched, so the
    previous placement's router network survives the step intact (the
    incumbent-cache handoff reuses its adjacency wholesale).
    """

    sigma: float = 2.0
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")
        if not 0 < self.fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")

    def apply(
        self, problem: ProblemInstance, rng: np.random.Generator
    ) -> StepChange:
        cells = problem.clients.positions.copy()
        n_clients = cells.shape[0]
        n_moving = max(1, int(round(self.fraction * n_clients))) if n_clients else 0
        if n_moving:
            movers = (
                np.arange(n_clients)
                if n_moving >= n_clients
                else rng.choice(n_clients, size=n_moving, replace=False)
            )
            cells[movers] += rng.normal(0.0, self.sigma, size=(len(movers), 2))
        return StepChange(
            problem=replace(
                problem, clients=_clients_from_array(problem, np.rint(cells))
            ),
            event=f"drift sigma={self.sigma:g} ({n_moving} clients)",
        )


@dataclass(frozen=True)
class ClientChurn(Perturbation):
    """Client turnover: a fraction leaves, newcomers arrive.

    Leavers are drawn uniformly; arrivals are sampled from the named
    client distribution (the same laws the instance generator offers),
    so churn can both thin and re-shape the demand field.
    """

    fraction: float = 0.1
    distribution: str = "uniform"
    distribution_params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 < self.fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")

    def apply(
        self, problem: ProblemInstance, rng: np.random.Generator
    ) -> StepChange:
        n_clients = problem.n_clients
        n_churning = max(1, int(round(self.fraction * n_clients))) if n_clients else 0
        cells = problem.clients.positions.copy()
        if n_churning:
            leavers = (
                np.arange(n_clients)
                if n_churning >= n_clients
                else rng.choice(n_clients, size=n_churning, replace=False)
            )
            law = make_distribution(self.distribution, **self.distribution_params)
            arrivals = law.sample_clients(n_churning, problem.grid, rng)
            cells[leavers] = arrivals.positions
        return StepChange(
            problem=replace(
                problem, clients=_clients_from_array(problem, np.rint(cells))
            ),
            event=f"churn {n_churning}/{n_clients} clients ({self.distribution})",
        )


@dataclass(frozen=True)
class RouterOutage(Perturbation):
    """Hard failure of ``count`` random routers.

    The failed routers leave the fleet entirely (ids compact, order of
    the survivors preserved), and :meth:`StepChange.carry_placement`
    drops their cells from the warm start — the disaster-recovery
    re-planning regime.
    """

    count: int = 1

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"count must be positive, got {self.count}")

    def apply(
        self, problem: ProblemInstance, rng: np.random.Generator
    ) -> StepChange:
        n_routers = problem.n_routers
        if self.count >= n_routers:
            raise ValueError(
                f"cannot knock out {self.count} of {n_routers} routers; "
                "at least one must survive"
            )
        doomed = rng.choice(n_routers, size=self.count, replace=False)
        kept = np.setdiff1d(np.arange(n_routers), doomed)
        return StepChange(
            problem=replace(
                problem,
                fleet=RouterFleet.from_radii(problem.fleet.radii[kept]),
            ),
            event=f"outage of router(s) {sorted(int(i) for i in doomed)}",
            kept_routers=kept,
        )


@dataclass(frozen=True)
class RadioDegradation(Perturbation):
    """Every radio's coverage radius decays by ``factor`` per step.

    Models weather/interference margin loss; ``floor`` keeps radii
    physical.  The fleet size is unchanged, so placements carry over
    verbatim — but links and coverage shrink, which is what forces the
    re-optimization.
    """

    factor: float = 0.9
    floor: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.factor < 1:
            raise ValueError(f"factor must be in (0, 1), got {self.factor}")
        if self.floor <= 0:
            raise ValueError(f"floor must be positive, got {self.floor}")

    def apply(
        self, problem: ProblemInstance, rng: np.random.Generator
    ) -> StepChange:
        radii = np.maximum(problem.fleet.radii * self.factor, self.floor)
        return StepChange(
            problem=replace(problem, fleet=RouterFleet.from_radii(radii)),
            event=f"radio decay x{self.factor:g} (mean radius {radii.mean():.2f})",
        )
