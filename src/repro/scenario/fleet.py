"""Scenario-fleet portfolios: every (scenario, solver, seed) triple at once.

The paper's evaluation is statistical — distributions over many seeds,
not single runs — and the dynamic-scenario subsystem deserves the same
treatment: *does warm-start re-optimization stay robust across scenario
regimes, solver families and replication seeds?*  Answering that with
:class:`~repro.scenario.runner.ScenarioRunner` alone means a hand-rolled
serial loop over every triple.  :class:`ScenarioFleet` runs the whole
grid instead:

* **Deterministic sharding** — one root ``SeedSequence`` spawns one
  child per (scenario, solver) cell; each cell splits into an *unfold*
  stream (shared by every replicate, so all seeds of a cell re-optimize
  the **same** instance sequence — the controlled-comparison layout of
  the replication harness) and ``n_seeds`` per-replicate solve streams.
  Warm and cold arms reuse the same cell seeds, so a warm/cold delta is
  never an instance artifact.
* **Lockstep steps** — each cell advances all replicates together: per
  scenario step, one :meth:`~repro.solvers.base.Solver.solve_batch` call
  re-optimizes every replicate (the search family measures all chains'
  candidates in one stacked engine pass), with the same per-step
  warm-start and engine-cache handoff as the serial runner.
* **Process fan-out** — ``workers=`` shards each cell's replicates over
  a pool through the shared :mod:`repro.parallel` machinery.

Because every replicate's streams are parent-derived and consumed only
by that replicate, the per-triple results are **bit-identical** to the
serial per-triple loop (``ScenarioRunner.run_steps`` on the same seeds)
at any worker count — asserted by ``tests/scenario/test_fleet.py``, and
the speedup over that loop is pinned by
``benchmarks/bench_scenario_fleet.py``.

The outcome is a :class:`FleetReport`: per-(scenario, solver) mean/std
fitness tables, per-event recovery curves, and warm-vs-cold regret —
the aggregation layer the CLI ``scenario-fleet`` subcommand and
:func:`repro.viz.timeline.render_fleet_report` print.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

import numpy as np

from repro.anytime.deadline import DEFAULT_CLOCK
from repro.instances.shm import ProblemRef
from repro.parallel import (
    get_runtime,
    resolve_task_problem,
    run_tasks,
    runtime_enabled,
    seed_shards,
)
from repro.resilience.checkpoint import (
    RestoredStep,
    entropy_payload,
    open_store,
    scenario_result_from_dict,
    scenario_result_to_dict,
)
from repro.resilience.supervisor import RetryPolicy, SupervisionReport
from repro.scenario.runner import (
    ScenarioResult,
    ScenarioStepResult,
    _cache_tracking,
    _validate_budgets,
)
from repro.scenario.scenario import Scenario, ScenarioStep
from repro.seeding import root_sequence, spawn_children
from repro.solvers.base import SolveResult, Solver

__all__ = ["FleetRun", "FleetReport", "ScenarioFleet", "fleet_seed_grid"]


def fleet_seed_grid(
    seed: "int | np.random.SeedSequence", n_cells: int, n_seeds: int
) -> list[tuple[np.random.SeedSequence, list[np.random.SeedSequence]]]:
    """The fleet's deterministic seed layout, exposed for parity checks.

    One root spawns ``n_cells`` children (scenario-major (scenario,
    solver) cells); each cell child splits into ``(unfold, solve)`` and
    the solve stream spawns one ``SeedSequence`` per replicate.  Every
    layer is pure ``SeedSequence.spawn`` arithmetic, so any shard of the
    grid can be reproduced in any process from the root seed alone —
    and a serial :meth:`~repro.scenario.runner.ScenarioRunner.run_steps`
    loop over the returned sequences is the fleet's exact reference
    execution.
    """
    root = root_sequence(seed)
    grid = []
    for cell in spawn_children(root, n_cells):
        unfold_seq, solve_seq = spawn_children(cell, 2)
        grid.append((unfold_seq, spawn_children(solve_seq, n_seeds)))
    return grid


@dataclass(frozen=True)
class FleetRun:
    """One solved (scenario, solver, replicate) triple of the grid."""

    scenario: str
    solver: str
    warm: bool
    replicate: int
    result: ScenarioResult

    @property
    def seed(self):
        """Root-entropy provenance of this triple (see ``ScenarioResult.seed``)."""
        return self.result.seed

    @property
    def arm(self) -> str:
        """``"warm"`` or ``"cold"`` — the re-optimization mode."""
        return "warm" if self.warm else "cold"


@dataclass(frozen=True)
class FleetReport:
    """Aggregation layer over a full fleet run.

    ``runs`` is ordered scenario-major, then solver, then arm (warm
    before cold), then replicate — the same order the grid executes in.
    """

    runs: tuple[FleetRun, ...]
    n_seeds: int

    def __post_init__(self) -> None:
        if not self.runs:
            raise ValueError("a fleet report needs at least one run")

    # ------------------------------------------------------------------
    # Axes
    # ------------------------------------------------------------------

    @property
    def scenarios(self) -> list[str]:
        """Scenario labels, in grid order."""
        return _unique(run.scenario for run in self.runs)

    @property
    def solvers(self) -> list[str]:
        """Solver labels, in grid order."""
        return _unique(run.solver for run in self.runs)

    @property
    def arms(self) -> list[str]:
        """The re-optimization arms present (``warm``/``cold``)."""
        return _unique(run.arm for run in self.runs)

    def select(
        self,
        scenario: "str | None" = None,
        solver: "str | None" = None,
        warm: "bool | None" = None,
    ) -> list[FleetRun]:
        """The runs matching every given axis value."""
        return [
            run
            for run in self.runs
            if (scenario is None or run.scenario == scenario)
            and (solver is None or run.solver == solver)
            and (warm is None or run.warm == warm)
        ]

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------

    def fitness_table(self) -> dict:
        """``{(scenario, solver, arm): {metric: ReplicatedMetric}}``.

        Per cell and arm, across its replicates: the run-mean fitness,
        the final step's fitness, and the evaluations spent — mean/std
        through the replication harness's
        :class:`~repro.experiments.replication.ReplicatedMetric`.
        """
        from repro.experiments.replication import ReplicatedMetric

        table: dict = {}
        for scenario, solver, warm, runs in self._cells():
            table[(scenario, solver, "warm" if warm else "cold")] = {
                "fitness": ReplicatedMetric(
                    tuple(run.result.mean_fitness() for run in runs)
                ),
                "final": ReplicatedMetric(
                    tuple(run.result.final.best.fitness for run in runs)
                ),
                "evaluations": ReplicatedMetric(
                    tuple(float(run.result.total_evaluations) for run in runs)
                ),
            }
        return table

    def regret(self) -> dict:
        """Warm-vs-cold regret per (scenario, solver): cold − warm.

        For every replicate that ran both arms (same seeds, same
        instance sequence), the difference of run-mean fitness.
        Positive values mean the cold re-solves beat warm tracking —
        the warm start trapped the search in a stale basin; values
        around zero mean re-optimization held quality at a fraction of
        the cost.  Empty when the fleet ran a single arm.
        """
        from repro.experiments.replication import ReplicatedMetric

        table: dict = {}
        for scenario in self.scenarios:
            for solver in self.solvers:
                warm_runs = self.select(scenario, solver, warm=True)
                cold_runs = self.select(scenario, solver, warm=False)
                if not warm_runs or not cold_runs:
                    continue
                by_replicate = {run.replicate: run for run in cold_runs}
                deltas = tuple(
                    by_replicate[run.replicate].result.mean_fitness()
                    - run.result.mean_fitness()
                    for run in warm_runs
                    if run.replicate in by_replicate
                )
                if deltas:
                    table[(scenario, solver)] = ReplicatedMetric(deltas)
        return table

    # ------------------------------------------------------------------
    # Curves
    # ------------------------------------------------------------------

    def recovery_curves(
        self, scenario: "str | None" = None
    ) -> dict[str, list[tuple[int, float]]]:
        """Mean fitness per step, one labelled curve per (cell, arm).

        The fleet's recovery picture: a perturbation event dents the
        curve, the re-optimizer climbs back.  Labels are
        ``"scenario / solver (arm)"``; restrict to one scenario to
        overlay its solvers and arms.  Feed the result straight into
        :func:`repro.viz.ascii_chart.render_chart` (or through
        :func:`repro.viz.timeline.render_fleet_report`).
        """
        curves: dict[str, list[tuple[int, float]]] = {}
        for cell_scenario, solver, warm, runs in self._cells():
            if scenario is not None and cell_scenario != scenario:
                continue
            arm = "warm" if warm else "cold"
            label = f"{cell_scenario} / {solver} ({arm})"
            per_step = np.array(
                [
                    [step.result.best.fitness for step in run.result.steps]
                    for run in runs
                ]
            )
            curves[label] = [
                (step, float(value))
                for step, value in enumerate(per_step.mean(axis=0))
            ]
        return curves

    def recovery_series(self, scenario: str, solver: str, warm: bool = True):
        """The cell's mean giant-size curve as an analysis-ready series.

        Returns a :class:`~repro.experiments.figures.Series` (x = step,
        y = mean giant size across replicates), so the convergence
        toolbox of :mod:`repro.experiments.analysis` —
        :func:`~repro.experiments.analysis.area_under_curve`,
        :func:`~repro.experiments.analysis.effort_to_reach` — applies to
        scenario recovery exactly as it does to search convergence.
        """
        from repro.experiments.figures import Series

        runs = self.select(scenario, solver, warm)
        if not runs:
            raise KeyError(
                f"no fleet runs for ({scenario!r}, {solver!r}, "
                f"{'warm' if warm else 'cold'})"
            )
        per_step = np.array(
            [
                [step.result.best.giant_size for step in run.result.steps]
                for run in runs
            ]
        )
        means = per_step.mean(axis=0)
        arm = "warm" if warm else "cold"
        return Series(
            label=f"{solver} ({arm})",
            x=tuple(range(len(means))),
            giant_sizes=tuple(float(value) for value in means),
        )

    def recovery_auc(self) -> dict:
        """``{(scenario, solver, arm): AUC}`` of the mean giant curves.

        The scale-free "average connectivity held over the scenario"
        number, via :func:`repro.experiments.analysis.area_under_curve`.
        """
        from repro.experiments.analysis import area_under_curve

        table: dict = {}
        for scenario, solver, warm, _ in self._cells():
            arm = "warm" if warm else "cold"
            table[(scenario, solver, arm)] = area_under_curve(
                self.recovery_series(scenario, solver, warm)
            )
        return table

    def event_impact(self) -> dict:
        """Mean net fitness impact per perturbation event kind.

        For every non-initial step, keyed by the event's first word
        (``"drift"``, ``"churn"``, ``"outage"``, ``"radio"`` for the
        built-in perturbations): ``impact`` is the mean fitness change
        from the previous step to the event step, across every run
        containing the event.  Each step's fitness is measured *after*
        its re-optimization, so the number is the event's damage net of
        what the re-optimizer clawed back — negative means the solver
        could not keep up with that event kind, around zero means it
        absorbed it.  (A separate "recovery one step later" reading
        would be meaningless here: every step carries its own event, so
        the next step's change is dominated by the next perturbation.)
        """
        impacts: dict[str, list[float]] = {}
        for run in self.runs:
            steps = run.result.steps
            for index in range(1, len(steps)):
                kind = steps[index].event.split()[0]
                before = steps[index - 1].result.best.fitness
                at = steps[index].result.best.fitness
                impacts.setdefault(kind, []).append(at - before)
        return {
            kind: {
                "impact": float(np.mean(values)),
                "n_events": len(values),
            }
            for kind, values in impacts.items()
        }

    def summary(self) -> str:
        """One-line account of the whole fleet."""
        evaluations = sum(run.result.total_evaluations for run in self.runs)
        return (
            f"[fleet] {len(self.scenarios)} scenarios x "
            f"{len(self.solvers)} solvers x {self.n_seeds} seeds "
            f"({'+'.join(self.arms)}): {len(self.runs)} runs, "
            f"{evaluations} evaluations"
        )

    def _cells(self):
        """Iterate ``(scenario, solver, warm, runs)`` in grid order."""
        for scenario in self.scenarios:
            for solver in self.solvers:
                for warm in (True, False):
                    runs = self.select(scenario, solver, warm)
                    if runs:
                        yield scenario, solver, warm, runs


def _unique(values) -> list:
    seen: dict = {}
    for value in values:
        seen.setdefault(value, None)
    return list(seen)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def _fleet_key(cell: int, warm: bool, replicate: int) -> str:
    """Grid-stable checkpoint key of one triple.

    Keyed by (cell index, arm, replicate) — never by shard/worker
    layout, so a run checkpointed at one worker count resumes at any
    other.
    """
    arm = "warm" if warm else "cold"
    return f"c{cell:03d}-{arm}-r{replicate:03d}"


def _shard_label(entry) -> str:
    """The supervision label naming one shard task's grid identity."""
    scenario_label, solver_label, warm, shard, _ = entry
    arm = "warm" if warm else "cold"
    seeds = (
        f"replicate {shard.start}"
        if len(shard) == 1
        else f"replicates {shard.start}..{shard.stop - 1}"
    )
    return f"{scenario_label}/{solver_label} ({arm}) {seeds}"


@dataclass(frozen=True)
class _ScenarioRef:
    """A scenario whose base instance travels as a broadcast handle.

    The perturbation list and name pickle inline (they are small); the
    base — the only array-heavy payload — rides shared memory.  Workers
    rebuild the :class:`Scenario` around the attached instance and
    re-unfold from the deterministic unfold stream as before.
    """

    name: str
    base: ProblemRef
    perturbations: tuple

    def unpack(self) -> Scenario:
        return Scenario(
            name=self.name,
            base=resolve_task_problem(self.base),
            perturbations=self.perturbations,
        )

    def swap_broadcast(self, lookup) -> "Scenario | None":
        """The pickled form, for the supervisor's broadcast-loss retry."""
        problem = lookup(self.base.token)
        if problem is None:
            return None
        return Scenario(
            name=self.name, base=problem, perturbations=self.perturbations
        )


def _pack_scenario(scenario: Scenario):
    """Broadcast a scenario's base instance when it is worth it."""
    if not runtime_enabled():
        return scenario
    payload = get_runtime().broadcast(scenario.base)
    if not isinstance(payload, ProblemRef):
        return scenario
    return _ScenarioRef(
        name=scenario.name,
        base=payload,
        perturbations=scenario.perturbations,
    )


def _unpack_scenario(payload) -> Scenario:
    return payload.unpack() if isinstance(payload, _ScenarioRef) else payload


def _resolve_solver(payload) -> Solver:
    """A per-process solver from its picklable description."""
    if isinstance(payload, Solver):
        return payload
    spec, kwargs = payload
    from repro.solvers.registry import make_solver

    return make_solver(spec, **kwargs)


def _solve_portfolio(
    solver: Solver,
    scenario_name: str,
    steps: Sequence[ScenarioStep],
    rep_seqs: Sequence[np.random.SeedSequence],
    *,
    warm: bool,
    budget: "int | None",
    warm_budget: "int | None",
    reuse_cache: bool,
    engine: str,
    fitness,
) -> list[ScenarioResult]:
    """All replicates of one (scenario, solver, arm) cell, in lockstep.

    Replicate ``r`` consumes exactly the streams of
    ``ScenarioRunner.run_steps(steps, seed=rep_seqs[r])`` — the same
    per-step ``spawn``, the same warm-start carry and engine-cache
    handoff, the same budget rule — but every step solves all
    replicates through one :meth:`Solver.solve_batch` call, so families
    with a lockstep engine pay one stacked pass per phase for the whole
    cell.  Per-step ``seconds`` is the batch wall-clock amortized over
    the replicates (individual timings have no meaning inside a batch).
    """
    n = len(rep_seqs)
    warm_capable = warm and solver.supports_warm_start
    # Spawn from fresh copies: both arms (and any rerun) must derive the
    # same per-step children whatever was spawned from these sequences
    # before (see repro.seeding).
    step_seed_grid = [spawn_children(seq, len(steps)) for seq in rep_seqs]
    per_rep: list[list[ScenarioStepResult]] = [[] for _ in range(n)]
    previous: list["SolveResult | None"] = [None] * n
    with _cache_tracking(solver, reuse_cache):
        for index, step in enumerate(steps):
            warm_starts = None
            engine_caches = None
            step_budget = budget
            if warm_capable and index > 0:
                warm_starts = [
                    step.change.carry_placement(prev.best.placement)
                    for prev in previous
                ]
                if reuse_cache:
                    engine_caches = [prev.engine_cache for prev in previous]
                step_budget = warm_budget
            began = DEFAULT_CLOCK.now()
            results = solver.solve_batch(
                step.problem,
                [step_seed_grid[r][index] for r in range(n)],
                budget=step_budget,
                warm_starts=warm_starts,
                engine=engine,
                fitness=fitness,
                engine_caches=engine_caches,
            )
            elapsed = (DEFAULT_CLOCK.now() - began) / n
            for r, result in enumerate(results):
                per_rep[r].append(
                    ScenarioStepResult(
                        step=step, result=result, seconds=elapsed
                    )
                )
                previous[r] = result
    return [
        ScenarioResult(
            scenario_name=scenario_name,
            solver_name=solver.name,
            warm=warm_capable,
            steps=tuple(per_rep[r]),
            seed=rep_seqs[r].entropy,
        )
        for r in range(n)
    ]


def _compact_results(results: list[ScenarioResult]) -> list[ScenarioResult]:
    """Shed the per-step problem instances from a shard's return payload.

    A fan-out shard's results would otherwise pickle every perturbed
    instance back to the parent — at city scale, megabytes per step that
    the broadcast just saved on the way *in*.  The steps are swapped for
    the same :class:`~repro.resilience.checkpoint.RestoredStep` stand-ins
    checkpoint restore produces: every aggregation downstream reads only
    ``index``/``event`` off a completed step.
    """
    return [
        replace(
            result,
            steps=tuple(
                replace(
                    item, step=RestoredStep(item.step.index, item.step.event)
                )
                for item in result.steps
            ),
        )
        for result in results
    ]


def _run_fleet_shard(task) -> list[ScenarioResult]:
    """One (cell, arm, replicate-shard) task (top-level: pickling).

    ``steps`` is the cell's pre-unfolded sequence when the fleet runs
    in-process (unfolded once per cell, shared by its arm/shard tasks)
    and ``None`` under ``workers=`` fan-out — there each worker
    re-unfolds from the deterministic unfold stream, which beats
    pickling every step's problem across the process boundary, and the
    returned rows carry step stand-ins instead of the instances
    (:func:`_compact_results`).
    """
    (scenario, solver_payload, config, unfold_seq, steps, rep_seqs, warm) = task
    scenario = _unpack_scenario(scenario)
    solver = _resolve_solver(solver_payload)
    fanned_out = steps is None
    if fanned_out:
        steps = scenario.unfold(unfold_seq)
    results = _solve_portfolio(
        solver, scenario.name, steps, rep_seqs, warm=warm, **config
    )
    if fanned_out and runtime_enabled():
        results = _compact_results(results)
    return results


class ScenarioFleet:
    """A full (scenario x solver x seed) re-optimization portfolio.

    Parameters
    ----------
    scenarios:
        The scenario axis: a sequence of :class:`Scenario` (labelled by
        their ``name``) or a ``{label: Scenario}`` mapping.  Labels must
        be unique — they key every report table.
    solvers:
        The solver axis: registry specs (``"tabu:swap"``), ``(spec,
        kwargs)`` pairs, or :class:`~repro.solvers.base.Solver`
        instances.  Specs are re-instantiated inside worker processes;
        instances are pickled.  Labels (the spec, or the instance's
        ``name``) must be unique.
    n_seeds:
        Replicates per (scenario, solver) cell.
    budget / warm_budget / warm / reuse_cache / engine / fitness:
        As on :class:`~repro.scenario.runner.ScenarioRunner` — applied
        uniformly to every cell.  ``warm`` additionally accepts
        ``"both"`` to run warm *and* cold arms on identical seeds, which
        is what feeds :meth:`FleetReport.regret`.
    workers:
        Fan each cell's replicate shards out over a process pool
        (results identical to serial at any count).
    policy:
        The :class:`~repro.resilience.supervisor.RetryPolicy` governing
        crash/timeout recovery of shard tasks (default: bounded retry
        with compiled-tier degradation).
    """

    def __init__(
        self,
        scenarios: "Sequence[Scenario] | Mapping[str, Scenario]",
        solvers: Sequence,
        *,
        n_seeds: int = 8,
        budget: "int | None" = None,
        warm_budget: "int | None" = None,
        warm: "bool | str" = True,
        reuse_cache: bool = True,
        engine: str = "auto",
        fitness=None,
        workers: "int | None" = None,
        policy: "RetryPolicy | None" = None,
    ) -> None:
        self._scenarios = _label_scenarios(scenarios)
        self._solvers = _label_solvers(solvers)
        if n_seeds <= 0:
            raise ValueError(f"n_seeds must be positive, got {n_seeds}")
        if workers is not None and workers < 1:
            raise ValueError(
                f"workers must be a positive int or None, got {workers}"
            )
        self._arms = _resolve_arms(warm)
        _validate_budgets(budget, warm_budget, True in self._arms)
        self.n_seeds = n_seeds
        self.budget = budget
        self.warm_budget = warm_budget if warm_budget is not None else budget
        self.reuse_cache = reuse_cache
        self.engine = engine
        self.fitness = fitness
        self.workers = workers
        self.policy = policy

    @property
    def n_cells(self) -> int:
        """Number of (scenario, solver) grid cells."""
        return len(self._scenarios) * len(self._solvers)

    @property
    def n_runs(self) -> int:
        """Total triples the fleet will solve (cells x arms x seeds)."""
        return self.n_cells * len(self._arms) * self.n_seeds

    def run(
        self,
        seed: "int | np.random.SeedSequence" = 0,
        *,
        checkpoint: "str | None" = None,
        resume_from: "str | None" = None,
        report: "SupervisionReport | None" = None,
    ) -> FleetReport:
        """Execute the whole grid; returns the :class:`FleetReport`.

        The root seed fixes everything: cell unfolds, per-replicate
        solve streams, and their sharding over workers (which never
        changes a stream, only where it is consumed).

        ``checkpoint`` names a directory where every completed
        (scenario, solver, arm, replicate) triple is persisted as an
        atomic JSON document under a manifest pinning the grid's
        configuration and root-seed provenance.  ``resume_from`` opens
        such a directory (it must exist and its manifest must match this
        fleet exactly), skips every fully checkpointed shard, re-runs
        the rest, and — because completed cells are trusted but verified
        — recomputes one checkpointed triple and asserts it matches its
        stored document field-for-field
        (:class:`~repro.resilience.checkpoint.CheckpointParityError`
        otherwise).  ``report`` collects supervision activity (retries,
        degradations) for the caller to surface.
        """
        root = root_sequence(seed)
        grid = fleet_seed_grid(root, self.n_cells, self.n_seeds)
        shards = seed_shards(self.n_seeds, self.workers)
        store = open_store(
            self._manifest(root), checkpoint=checkpoint, resume_from=resume_from
        )
        config = dict(
            budget=self.budget,
            warm_budget=self.warm_budget,
            reuse_cache=self.reuse_cache,
            engine=self.engine,
            fitness=self.fitness,
        )
        serial = self.workers is None or self.workers == 1
        tasks = []
        order: list[tuple[str, str, bool, range, list[str]]] = []
        cell = 0
        for scenario_label, scenario in self._scenarios:
            for solver_label, payload in self._solvers:
                unfold_seq, rep_seqs = grid[cell]
                # In-process execution unfolds each cell once and shares
                # the steps across its arm/shard tasks; worker processes
                # re-unfold from the seed instead (see _run_fleet_shard),
                # attaching the broadcast base rather than unpickling it
                # (see _pack_scenario).
                steps = scenario.unfold(unfold_seq) if serial else None
                packed = scenario if serial else _pack_scenario(scenario)
                for warm in self._arms:
                    for shard in shards:
                        keys = [
                            _fleet_key(cell, warm, replicate)
                            for replicate in shard
                        ]
                        tasks.append(
                            (
                                packed,
                                payload,
                                config,
                                unfold_seq,
                                steps,
                                [rep_seqs[r] for r in shard],
                                warm,
                            )
                        )
                        order.append(
                            (scenario_label, solver_label, warm, shard, keys)
                        )
                cell += 1

        # A shard task is skipped only when *all* its replicates are
        # checkpointed; a partially persisted shard recomputes whole
        # (deterministic, so recomputation is merely redundant work).
        restored = [
            index
            for index in range(len(tasks))
            if store is not None and all(store.has(k) for k in order[index][4])
        ]
        if restored:
            self._verify_restored(store, tasks[restored[0]], order[restored[0]])
        pending = [i for i in range(len(tasks)) if i not in set(restored)]

        def persist(position: int, rows) -> None:
            keys = order[pending[position]][4]
            for key, result in zip(keys, rows):
                store.save(key, scenario_result_to_dict(result))

        flat = run_tasks(
            _run_fleet_shard,
            [tasks[i] for i in pending],
            self.workers,
            policy=self.policy,
            labels=[_shard_label(order[i]) for i in pending],
            on_shard=persist if store is not None else None,
            report=report,
        )
        results: dict[int, list[ScenarioResult]] = {}
        offset = 0
        for position, index in enumerate(pending):
            shard = order[index][3]
            results[index] = flat[offset : offset + len(shard)]
            offset += len(shard)
        for index in restored:
            results[index] = [
                scenario_result_from_dict(store.load(key))
                for key in order[index][4]
            ]

        runs: list[FleetRun] = []
        for index, (scenario_label, solver_label, warm, shard, _) in enumerate(
            order
        ):
            for replicate, result in zip(shard, results[index]):
                # Key the run by its *arm* (what the grid asked for), not
                # by ``result.warm`` — a warm-incapable solver still
                # belongs to the warm arm it ran in, or a "both" grid
                # would collapse its two arms into one cell.
                runs.append(
                    FleetRun(
                        scenario=scenario_label,
                        solver=solver_label,
                        warm=warm,
                        replicate=replicate,
                        result=result,
                    )
                )
        return FleetReport(runs=tuple(runs), n_seeds=self.n_seeds)

    def _manifest(self, root: np.random.SeedSequence) -> dict:
        """The checkpoint identity of this grid: config + seed provenance."""
        return {
            "kind": "scenario-fleet",
            "seed_entropy": entropy_payload(root.entropy),
            "scenarios": [label for label, _ in self._scenarios],
            "solvers": [label for label, _ in self._solvers],
            "n_seeds": self.n_seeds,
            "arms": ["warm" if arm else "cold" for arm in self._arms],
            "budget": self.budget,
            "warm_budget": self.warm_budget,
            "reuse_cache": self.reuse_cache,
            "engine": self.engine,
            "fitness": repr(self.fitness) if self.fitness is not None else None,
        }

    def _verify_restored(self, store, task, entry) -> None:
        """Recompute one checkpointed triple and assert stored parity.

        The resume gate: one replicate of the first restored shard is
        re-run in-process (identical streams by the determinism
        contract) and compared field-for-field against its stored
        document, wall-clock excluded.  Catches stale directories and
        code drift that the manifest alone cannot.
        """
        scenario, payload, config, unfold_seq, steps, rep_seqs, warm = task
        scenario = _unpack_scenario(scenario)
        keys = entry[4]
        if steps is None:
            steps = scenario.unfold(unfold_seq)
        fresh = _solve_portfolio(
            _resolve_solver(payload),
            scenario.name,
            steps,
            rep_seqs[:1],
            warm=warm,
            **config,
        )[0]
        store.verify_cell(keys[0], scenario_result_to_dict(fresh))

    def __repr__(self) -> str:
        scenarios = [label for label, _ in self._scenarios]
        solvers = [label for label, _ in self._solvers]
        return (
            f"ScenarioFleet(scenarios={scenarios!r}, solvers={solvers!r}, "
            f"n_seeds={self.n_seeds}, arms={len(self._arms)}, "
            f"workers={self.workers!r})"
        )


def _label_scenarios(scenarios) -> list[tuple[str, Scenario]]:
    if isinstance(scenarios, Mapping):
        items = [(str(label), s) for label, s in scenarios.items()]
    else:
        items = [(None, s) for s in scenarios]
    pairs: list[tuple[str, Scenario]] = []
    for label, scenario in items:
        if not isinstance(scenario, Scenario):
            raise TypeError(
                f"expected a Scenario, got {type(scenario).__name__}"
            )
        pairs.append((label or scenario.name, scenario))
    if not pairs:
        raise ValueError("a fleet needs at least one scenario")
    _check_unique("scenario", [label for label, _ in pairs])
    return pairs


def _label_solvers(solvers) -> list[tuple[str, object]]:
    """``(label, payload)`` pairs; payloads stay picklable descriptions.

    A ``{label: item}`` mapping overrides the default labels (the spec
    string, or an instance's ``name``) — the way to put two
    configurations of one registry spec into the same fleet.
    """
    if isinstance(solvers, Mapping):
        items = [(str(label), item) for label, item in solvers.items()]
    else:
        items = [(None, item) for item in solvers]
    pairs: list[tuple[str, object]] = []
    for label, item in items:
        if isinstance(item, Solver):
            pairs.append((label or item.name, item))
        elif isinstance(item, str):
            pairs.append((label or item, (item, {})))
        elif (
            isinstance(item, tuple)
            and len(item) == 2
            and isinstance(item[0], str)
            and isinstance(item[1], Mapping)
        ):
            pairs.append((label or item[0], (item[0], dict(item[1]))))
        else:
            raise TypeError(
                "solvers items must be a registry spec, a (spec, kwargs) "
                f"pair or a Solver instance, got {item!r}"
            )
    if not pairs:
        raise ValueError("a fleet needs at least one solver")
    _check_unique("solver", [label for label, _ in pairs])
    return pairs


def _resolve_arms(warm: "bool | str") -> tuple[bool, ...]:
    if warm is True or warm == "warm":
        return (True,)
    if warm is False or warm == "cold":
        return (False,)
    if warm == "both":
        return (True, False)
    raise ValueError(
        f"warm must be True, False, 'warm', 'cold' or 'both', got {warm!r}"
    )


def _check_unique(axis: str, labels: list[str]) -> None:
    seen: set = set()
    for label in labels:
        if label in seen:
            raise ValueError(
                f"duplicate {axis} label {label!r}; labels key the report "
                "tables and must be unique (use a mapping or (spec, kwargs) "
                "labels to disambiguate)"
            )
        seen.add(label)
