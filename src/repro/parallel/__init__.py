"""Process fan-out shared by every ``workers=`` harness.

Three layers run portfolios over a process pool: the lockstep
multi-chain engine (:mod:`repro.neighborhood.multichain`), the
replication harness (:mod:`repro.experiments.replication`) and the
scenario fleet (:mod:`repro.scenario.fleet`).  They all shard the same
way — contiguous, order-preserving splits, executed serially when
``workers`` is ``None``/1 and flattened back in submission order — so
the split and the pool plumbing live here once.  One implementation also
means one determinism argument: a shard boundary can never change which
seed owns which stream, only which process advances it.

Execution itself is delegated to the supervised pool
(:mod:`repro.resilience.supervisor`): worker crashes, hung kernels and
transient task errors are retried per :class:`RetryPolicy` with only the
failed shard resubmitted — safe precisely because of the determinism
contract above — and a shard that keeps crashing under the compiled
engine tier is degraded to the bit-identical numpy engines.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.parallel.runtime import (
    ParallelRuntime,
    effective_pool_size,
    get_runtime,
    resolve_task_problem,
    runtime_enabled,
    shutdown_runtime,
)
from repro.resilience.supervisor import (
    RetryPolicy,
    SupervisionReport,
    _worker_init,
    run_supervised,
)

__all__ = [
    "shard_slices",
    "seed_shards",
    "run_tasks",
    "ParallelRuntime",
    "effective_pool_size",
    "get_runtime",
    "resolve_task_problem",
    "runtime_enabled",
    "shutdown_runtime",
]

# Pool-worker bootstrap (OMP pinning) now lives with the supervisor; the
# old name stays importable for anything that referenced it here.
_limit_worker_threads = _worker_init


def shard_slices(count: int, shards: int) -> list[slice]:
    """Contiguous, order-preserving split of ``count`` items.

    Layout depends on ``shards`` (the caller's ``workers=`` request)
    alone — never on the machine — so which seed lands in which shard is
    reproducible everywhere.  How many *processes* actually serve those
    shards is a separate, runtime-aware decision:
    :func:`repro.parallel.runtime.effective_pool_size` caps the pool at
    ``min(workers, n_tasks, cpu count)`` so a request larger than the
    shard count (or the machine) never holds idle workers alive.
    """
    shards = min(shards, count)
    bounds = np.linspace(0, count, shards + 1).astype(int)
    return [
        slice(int(bounds[i]), int(bounds[i + 1]))
        for i in range(shards)
        if bounds[i] < bounds[i + 1]
    ]


def seed_shards(n_seeds: int, workers: "int | None") -> list[range]:
    """Contiguous seed ranges: one per worker slot (one total when serial).

    Like :func:`shard_slices`, the *layout* uses the requested
    ``workers`` so seed ownership is machine-independent; the persistent
    pool then sizes itself to ``min(workers, n_shards, cpu count)``
    (:func:`repro.parallel.runtime.effective_pool_size`), so asking for
    more workers than seeds or cores costs nothing but the request.
    """
    if workers is None or workers <= 1 or n_seeds <= 1:
        return [range(n_seeds)]
    return [
        range(part.start, part.stop) for part in shard_slices(n_seeds, workers)
    ]


def run_tasks(
    runner: Callable[[object], Sequence],
    tasks: list,
    workers: "int | None",
    *,
    policy: "RetryPolicy | None" = None,
    labels: "Sequence[str] | None" = None,
    on_shard: "Callable[[int, Sequence], None] | None" = None,
    report: "SupervisionReport | None" = None,
    on_retry: "Callable | None" = None,
) -> list:
    """Run shard tasks serially or over a supervised pool, flat, in order.

    ``runner`` must be a top-level function and every task picklable when
    ``workers > 1``.  Results come back in task-submission order whatever
    the pool's scheduling, so callers can slice the flat list by shard
    arithmetic alone.

    Supervision kwargs are all optional and default to the standard
    :class:`RetryPolicy` (bounded retry, crash degradation).  ``labels``
    names each shard task for failure messages — pass the shard's
    scenario/solver/seed identity so a
    :class:`~repro.resilience.supervisor.RetryExhaustedError` says which
    seeds were lost.  ``on_shard(index, rows)`` fires in the parent as
    each shard completes (the checkpoint persistence hook); ``report``
    collects recovery activity for the caller to surface; ``on_retry``
    may rewrite a failed task before resubmission (the broadcast
    fallback hook — defaults to the global runtime's
    :meth:`~repro.parallel.runtime.ParallelRuntime.task_fallback`).

    Pools are warm by default: execution goes through the process-wide
    :class:`~repro.parallel.runtime.ParallelRuntime`, which keeps its
    worker pool alive between calls (``REPRO_RUNTIME=0`` restores the
    legacy pool-per-call behavior).
    """
    shards = run_supervised(
        runner,
        tasks,
        workers=workers,
        policy=policy,
        labels=labels,
        on_result=on_shard,
        report=report,
        on_retry=on_retry,
    )
    return [row for shard in shards for row in shard]
