"""The process-wide persistent parallel runtime.

Every ``workers=`` harness used to build a fresh ``ProcessPoolExecutor``
per call (and per retry round) and pickle full problem instances into
every shard task.  For one-shot CLI runs that is merely wasteful; for
the fleet/live/service layers — thousands of fan-outs against the same
city-scale instance — pool cold-start plus per-task serialization
dominates wall-clock.  :class:`ParallelRuntime` amortizes both:

* **Warm worker pools.**  One supervised pool per process, created
  lazily, reused across ``run_tasks``/``run_supervised`` calls, and
  sized ``min(workers, n_tasks, cpu count)`` so idle slots never hold
  processes alive (see :func:`effective_pool_size`).  A dirty release —
  worker crash, hung task — terminates and discards the pool; the next
  acquire rebuilds it.  Supervision semantics are unchanged: the
  supervisor marks the pool dirty exactly where it used to tear its
  per-round pool down.
* **Zero-copy problem broadcast.**  :meth:`broadcast` publishes an
  instance's numpy payloads once through :mod:`repro.instances.shm` and
  hands back a small picklable :class:`~repro.instances.shm.ProblemRef`;
  workers attach read-only views (cached per process, keyed by content
  hash).  Broadcasts are content-addressed, so a crashed worker rebuilds
  the *pool* without republishing anything, and re-broadcasting an
  already-published instance is a dictionary hit.
* **Deterministic results.**  Neither layer touches any result stream:
  pools only decide *where* a task runs, broadcasts only change *how*
  its bytes travel.  Results stay bit-identical to serial execution at
  any worker count (the existing parity suites run through this runtime
  unchanged).

The process-global instance (:func:`get_runtime`) is what the harnesses
use implicitly; ``REPRO_RUNTIME=0`` restores the legacy
pool-per-call/pickle-everything behavior wholesale (the benchmark's
cold-baseline arm, and the escape hatch).  Long-running services should
call :func:`shutdown_runtime` (or use the runtime as a context manager)
when a workload ends; an ``atexit`` hook covers interpreter exit, so no
``/dev/shm`` segment ever outlives the parent.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro import envgates
from repro.instances.shm import (
    ProblemRef,
    attach_problem,
    problem_nbytes,
    publish_problem,
)

__all__ = [
    "ParallelRuntime",
    "RuntimeStats",
    "effective_pool_size",
    "get_runtime",
    "resolve_task_problem",
    "runtime_enabled",
    "shutdown_runtime",
]

#: Gate for the persistent runtime as a whole (pools *and* broadcast).
RUNTIME_ENV = "REPRO_RUNTIME"

#: Instances whose array payload is below this many bytes are pickled
#: rather than broadcast — segment setup is pure overhead for the
#: paper-scale instances that dominate the test suite.
SHM_MIN_BYTES_ENV = "REPRO_SHM_MIN_BYTES"
DEFAULT_SHM_MIN_BYTES = 1 << 16


def runtime_enabled() -> bool:
    """Whether the persistent runtime is active (``REPRO_RUNTIME`` gate)."""
    return envgates.runtime_enabled()


def _cpu_count() -> int:
    count = getattr(os, "process_cpu_count", os.cpu_count)() or 1
    return max(1, count)


def effective_pool_size(workers: int, n_tasks: "int | None" = None) -> int:
    """How many worker processes a fan-out actually warrants.

    The sizing rule of the persistent pool: ``workers`` is the caller's
    parallelism *request*, but a pool never holds more processes than
    there are tasks to run or cores to run them on —
    ``min(workers, n_tasks, cpu count)``, floored at 1.  Shard *layout*
    (:func:`repro.parallel.seed_shards`) deliberately keeps using the
    raw ``workers`` value: which seed lands in which shard is part of
    the determinism contract and must not depend on the machine.
    """
    size = min(workers, _cpu_count())
    if n_tasks is not None:
        size = min(size, n_tasks)
    return max(1, size)


def _shm_min_bytes() -> int:
    return envgates.shm_min_bytes(DEFAULT_SHM_MIN_BYTES)


@dataclass
class RuntimeStats:
    """Observable runtime activity, mostly for tests and diagnostics."""

    pool_creates: int = 0
    pool_reuses: int = 0
    pool_rebuilds_dirty: int = 0
    publishes: int = 0
    broadcast_hits: int = 0
    broadcast_fallbacks: int = 0


@dataclass
class _Broadcast:
    """One live broadcast: handle, owned segments, source instance."""

    ref: ProblemRef
    segments: list
    problem: object
    nbytes: int = 0


class ParallelRuntime:
    """A persistent pool provider plus broadcast registry (see module doc).

    Thread-safe; the global instance is shared by every harness in the
    process.  Usable as a context manager::

        with ParallelRuntime() as runtime:
            run_tasks(fn, tasks, workers=4, pool_provider=runtime)

    The pool-provider protocol consumed by
    :func:`repro.resilience.supervisor.run_supervised` is
    ``acquire_pool(workers) -> executor`` / ``release_pool(executor,
    dirty=...)``: a clean release keeps the pool warm for the next call,
    a dirty one terminates its processes so no crashed or hung worker is
    ever reused.
    """

    def __init__(self, shm_min_bytes: "int | None" = None) -> None:
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._pool: "ProcessPoolExecutor | None" = None
        self._pool_size = 0
        self._pool_in_use = False
        self._broadcasts: dict[str, _Broadcast] = {}
        #: Source instances of released broadcasts, kept so a task that
        #: still carries the old handle can be re-shipped by pickle.
        self._lost: dict[str, object] = {}
        self._by_id: dict[int, str] = {}
        self._shm_min_bytes = shm_min_bytes
        self._closed = False
        self.stats = RuntimeStats()

    # ------------------------------------------------------------------
    # Pool provider protocol
    # ------------------------------------------------------------------

    def acquire_pool(self, workers: int) -> ProcessPoolExecutor:
        """A warm executor with at least ``min(workers, cpus)`` slots.

        Reuses the kept pool when it is big enough and free; otherwise
        builds a fresh one (replacing a too-small kept pool).  A second
        concurrent acquisition — nested harnesses — gets a private
        throwaway pool rather than sharing submission order with the
        first caller.
        """
        size = effective_pool_size(workers)
        from repro.resilience.supervisor import _worker_init

        with self._lock:
            if self._closed:
                raise RuntimeError("parallel runtime is shut down")
            healthy = self._pool is not None and not getattr(
                self._pool, "_broken", False
            )
            if (
                healthy
                and not self._pool_in_use
                and self._pool_size >= size
            ):
                self._pool_in_use = True
                self.stats.pool_reuses += 1
                return self._pool
            if self._pool is not None and not self._pool_in_use:
                # Too small for this request — or a worker died while
                # the pool sat warm: retire it and build fresh (workers
                # are fungible; only warmth is lost).
                _terminate_pool(self._pool, force=not healthy)
                self._pool = None
            pool = ProcessPoolExecutor(
                max_workers=size, initializer=_worker_init
            )
            self.stats.pool_creates += 1
            if not self._pool_in_use:
                self._pool = pool
                self._pool_size = size
                self._pool_in_use = True
            return pool

    def release_pool(self, pool: ProcessPoolExecutor, dirty: bool) -> None:
        """Return an executor; ``dirty`` discards it, clean keeps it warm."""
        with self._lock:
            if pool is not self._pool:
                # A private overflow pool: always torn down.
                _terminate_pool(pool, force=dirty)
                return
            self._pool_in_use = False
            if dirty:
                self.stats.pool_rebuilds_dirty += 1
                self._pool = None
                self._pool_size = 0
                _terminate_pool(pool, force=True)

    def worker_pids(self) -> set[int]:
        """Pids of the kept pool's processes (empty when no pool lives)."""
        with self._lock:
            if self._pool is None:
                return set()
            processes = getattr(self._pool, "_processes", None) or {}
            return set(processes.keys())

    # ------------------------------------------------------------------
    # Broadcast registry
    # ------------------------------------------------------------------

    def broadcast(self, problem, force: bool = False):
        """Publish ``problem`` once; returns its task payload.

        The payload is a :class:`~repro.instances.shm.ProblemRef` when
        the instance was broadcast and the instance itself when it was
        not (too small, SHM unavailable, or the runtime disabled) — so
        call sites can splice the return value straight into task tuples
        and let :func:`resolve_task_problem` undo it on the worker side.
        Re-broadcasting an already-published instance is a registry hit;
        nothing is republished (the invariant the crash path relies on:
        a dead worker rebuilds the *pool*, never the broadcast).
        """
        with self._lock:
            if self._closed:
                return problem
            token = self._by_id.get(id(problem))
            entry = self._broadcasts.get(token) if token is not None else None
            # The identity check guards against id() reuse after a
            # broadcast instance was garbage-collected.
            if entry is not None and entry.problem is problem:
                self.stats.broadcast_hits += 1
                return entry.ref
        minimum = (
            self._shm_min_bytes
            if self._shm_min_bytes is not None
            else _shm_min_bytes()
        )
        if not force and problem_nbytes(problem) < minimum:
            return problem
        try:
            ref, segments = publish_problem(problem)
        except Exception:
            # No usable /dev/shm (or an exotic platform failure): the
            # pickle path is always correct, just slower.
            self.stats.broadcast_fallbacks += 1
            return problem
        with self._lock:
            if self._closed or ref.token in self._broadcasts:
                # Lost a publish race with ourselves (same content via a
                # different object) or shut down meanwhile: drop ours.
                for shm in segments:
                    _destroy_segment(shm)
                entry = self._broadcasts.get(ref.token)
                if entry is None:
                    return problem
                self.stats.broadcast_hits += 1
            else:
                entry = _Broadcast(
                    ref=ref,
                    segments=segments,
                    problem=problem,
                    nbytes=problem_nbytes(problem),
                )
                self._broadcasts[ref.token] = entry
                self.stats.publishes += 1
            self._by_id[id(problem)] = ref.token
            return entry.ref

    def broadcast_problem(self, token: str):
        """The source instance of a (possibly released) broadcast."""
        with self._lock:
            entry = self._broadcasts.get(token)
            if entry is not None:
                return entry.problem
            return self._lost.get(token)

    def release_broadcast(self, payload) -> None:
        """Unlink one broadcast's segments (no-op for pickle payloads).

        Callers that know a broadcast instance is done for good — e.g. a
        service evicting a problem — release it explicitly; everything
        else is reclaimed at :meth:`shutdown`.
        """
        token = payload.token if isinstance(payload, ProblemRef) else None
        with self._lock:
            entry = self._broadcasts.pop(token, None) if token else None
            if entry is not None:
                self._by_id.pop(id(entry.problem), None)
                self._lost[token] = entry.problem
        if entry is not None:
            for shm in entry.segments:
                _destroy_segment(shm)

    def task_fallback(self, index: int, task, kind: str, error: str):
        """``on_retry`` hook: re-ship lost broadcasts by pickle.

        When a task failed because a worker attached after the segments
        were gone (:class:`~repro.instances.shm.BroadcastLost`), the
        retry gets the task with every :class:`ProblemRef` element
        replaced by its source instance.  Elements that *contain* a
        handle (e.g. the fleet's packed scenarios) participate through a
        ``swap_broadcast(lookup)`` method returning their pickled form.
        Any other failure keeps the original payload — crashes must
        *not* rebroadcast.
        """
        if "BroadcastLost" not in error or not isinstance(task, tuple):
            return None
        replaced = False
        swapped = []
        for element in task:
            if isinstance(element, ProblemRef):
                problem = self.broadcast_problem(element.token)
                if problem is not None:
                    swapped.append(problem)
                    replaced = True
                    continue
            else:
                swapper = getattr(element, "swap_broadcast", None)
                if swapper is not None:
                    replacement = swapper(self.broadcast_problem)
                    if replacement is not None:
                        swapped.append(replacement)
                        replaced = True
                        continue
            swapped.append(element)
        return tuple(swapped) if replaced else None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Tear down the pool and unlink every broadcast segment.

        Idempotent.  After shutdown the runtime refuses new pools;
        :func:`get_runtime` builds a fresh instance next time.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool = self._pool
            self._pool = None
            self._pool_size = 0
            entries = list(self._broadcasts.values())
            for entry in entries:
                self._lost[entry.ref.token] = entry.problem
            self._broadcasts.clear()
            self._by_id.clear()
        if pool is not None:
            _terminate_pool(pool, force=True)
        for entry in entries:
            for shm in entry.segments:
                _destroy_segment(shm)

    def __enter__(self) -> "ParallelRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _terminate_pool(pool: ProcessPoolExecutor, force: bool) -> None:
    if not force:
        pool.shutdown(wait=True)
        return
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # repro-lint: disable=RL007
            # Best-effort teardown of an already-dying process.
            pass


def _destroy_segment(shm) -> None:
    try:
        shm.close()
    except Exception:  # repro-lint: disable=RL007
        # Best-effort: the segment may already be gone.
        pass
    try:
        shm.unlink()
    except Exception:  # repro-lint: disable=RL007
        # Best-effort: another owner may have unlinked it first.
        pass


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Per-process cache of attached instances, keyed by broadcast token.
#: Workers are recycled with their pool; entries pin the mapped segments
#: for exactly as long as the attached instance is reachable.
_ATTACHED: dict[str, object] = {}


def resolve_task_problem(payload):
    """Turn a task's problem payload back into a :class:`ProblemInstance`.

    Identity for plain instances (the pickle path); for a
    :class:`~repro.instances.shm.ProblemRef` the segment is attached
    once per process and cached by content hash.  Raises
    :class:`~repro.instances.shm.BroadcastLost` when the parent already
    unlinked the segments — the supervisor's retry hook then re-ships
    the instance by pickle (:meth:`ParallelRuntime.task_fallback`).
    """
    if not isinstance(payload, ProblemRef):
        return payload
    # In the publishing process itself (the resume-verify and packing
    # paths) the registry already holds the source instance — no reason
    # to map a second view of our own segments.  The pid check keeps
    # forked workers off this path: their inherited registry snapshot
    # would bypass shared memory entirely.
    runtime = _global_runtime
    if (
        runtime is not None
        and runtime._pid == os.getpid()
    ):
        problem = runtime.broadcast_problem(payload.token)
        if problem is not None:
            return problem
    cached = _ATTACHED.get(payload.token)
    if cached is not None:
        return cached
    problem = attach_problem(payload)
    _ATTACHED[payload.token] = problem
    return problem


# ----------------------------------------------------------------------
# The process-global runtime
# ----------------------------------------------------------------------

_global_lock = threading.Lock()
_global_runtime: "ParallelRuntime | None" = None


def get_runtime() -> ParallelRuntime:
    """The process-wide runtime, created lazily (atexit-managed)."""
    global _global_runtime
    with _global_lock:
        if _global_runtime is None or _global_runtime._closed:
            _global_runtime = ParallelRuntime()
        return _global_runtime


def shutdown_runtime() -> None:
    """Shut the global runtime down now (idempotent; atexit calls this)."""
    with _global_lock:
        runtime = _global_runtime
    if runtime is not None:
        runtime.shutdown()


atexit.register(shutdown_runtime)
