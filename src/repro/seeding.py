"""The fresh-copy ``SeedSequence`` helpers — the repo's spawn discipline.

``numpy.random.SeedSequence.spawn`` is **stateful**: every call advances
the parent's spawn counter, so the children a sequence produces depend
on how often it was spawned from before.  That history-dependence broke
warm-vs-cold fleet parity once already (the PR 5 state-leak fix): two
arms sharing seed objects silently derived different replication
streams.  The discipline since then — now machine-enforced by the
``RL003`` lint rule (:mod:`repro.lint`) — is that *nothing spawns from a
caller-owned sequence*.  All spawning happens here, on fresh copies, so
children are a pure function of a seed's identity (entropy and spawn
key), never of its history:

- :func:`fresh_sequence` — an unspawned copy of a sequence.
- :func:`root_sequence` — normalize ``int | tuple | SeedSequence`` user
  seeds into a fresh root.
- :func:`spawn_children` — the only sanctioned way to derive children
  from a sequence another function handed you.

Everything here is pure ``SeedSequence`` arithmetic: for a sequence
whose spawn counter is still zero (the normal case — children arrive
freshly spawned), ``spawn_children(seq, n)`` returns exactly
``seq.spawn(n)`` would, so routing existing call sites through these
helpers changes no result stream.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fresh_sequence", "root_sequence", "spawn_children"]


def fresh_sequence(seq: np.random.SeedSequence) -> np.random.SeedSequence:
    """An unspawned copy of ``seq`` (same entropy and spawn key)."""
    return np.random.SeedSequence(
        entropy=seq.entropy,
        spawn_key=seq.spawn_key,
        pool_size=seq.pool_size,
    )


def root_sequence(
    seed: "int | tuple | np.random.SeedSequence",
) -> np.random.SeedSequence:
    """A fresh root for a user-facing seed argument.

    Ints and entropy tuples build a new sequence; an existing
    ``SeedSequence`` is copied so the caller's spawn history cannot leak
    into the streams derived from it.
    """
    return (
        fresh_sequence(seed)
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )


def spawn_children(
    seq: np.random.SeedSequence, n_children: int
) -> list[np.random.SeedSequence]:
    """``n_children`` children of ``seq``, independent of its history.

    Spawns from a fresh copy, so calling this twice with the same
    sequence yields the *same* children — spawning becomes idempotent,
    which is exactly the property replays, resumes and multi-arm fleet
    comparisons rely on.
    """
    if n_children < 0:
        raise ValueError(f"n_children must be >= 0, got {n_children}")
    return fresh_sequence(seq).spawn(n_children)
