"""Crossover operators.

A chromosome is the vector of router cells, so crossover mixes the
positions two parents assign to each router.  Children can inherit
colliding cells (two routers on one cell); the shared ``_repair`` step
nudges collisions apart, preserving the placement invariants.
"""

from __future__ import annotations

import abc
from typing import ClassVar

import numpy as np

from repro.adhoc.base import resolve_collisions
from repro.core.geometry import Point, Rect
from repro.core.solution import Placement

__all__ = [
    "CrossoverOperator",
    "UniformCrossover",
    "OnePointCrossover",
    "RegionExchangeCrossover",
]


def _repair(grid, cells: list[Point], rng: np.random.Generator) -> Placement:
    """Nudge duplicate cells apart and build a valid placement."""
    return Placement.from_cells(grid, resolve_collisions(grid, cells, rng))


class CrossoverOperator(abc.ABC):
    """Produces two children from two parent placements."""

    name: ClassVar[str] = "abstract"

    @abc.abstractmethod
    def crossover(
        self,
        parent_a: Placement,
        parent_b: Placement,
        rng: np.random.Generator,
    ) -> tuple[Placement, Placement]:
        """Two valid child placements."""

    def _check_parents(self, parent_a: Placement, parent_b: Placement) -> None:
        if len(parent_a) != len(parent_b):
            raise ValueError(
                f"parents place {len(parent_a)} and {len(parent_b)} routers; "
                "crossover needs equal-length chromosomes"
            )
        if parent_a.grid != parent_b.grid:
            raise ValueError("parents live on different grids")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class UniformCrossover(CrossoverOperator):
    """Each gene comes from either parent with probability ``mix_rate``.

    Child 1 takes parent A's cell for router ``i`` unless a coin flip
    says otherwise; child 2 takes the complementary choices.
    """

    name: ClassVar[str] = "uniform"

    def __init__(self, mix_rate: float = 0.5) -> None:
        if not 0.0 <= mix_rate <= 1.0:
            raise ValueError(f"mix_rate must be in [0, 1], got {mix_rate}")
        self.mix_rate = mix_rate

    def crossover(
        self,
        parent_a: Placement,
        parent_b: Placement,
        rng: np.random.Generator,
    ) -> tuple[Placement, Placement]:
        self._check_parents(parent_a, parent_b)
        take_b = rng.uniform(size=len(parent_a)) < self.mix_rate
        child1 = [
            parent_b[i] if take_b[i] else parent_a[i] for i in range(len(parent_a))
        ]
        child2 = [
            parent_a[i] if take_b[i] else parent_b[i] for i in range(len(parent_a))
        ]
        return (
            _repair(parent_a.grid, child1, rng),
            _repair(parent_a.grid, child2, rng),
        )

    def __repr__(self) -> str:
        return f"UniformCrossover(mix_rate={self.mix_rate})"


class OnePointCrossover(CrossoverOperator):
    """Classic single cut point over the router index order."""

    name: ClassVar[str] = "one-point"

    def crossover(
        self,
        parent_a: Placement,
        parent_b: Placement,
        rng: np.random.Generator,
    ) -> tuple[Placement, Placement]:
        self._check_parents(parent_a, parent_b)
        n = len(parent_a)
        cut = int(rng.integers(1, n)) if n > 1 else 0
        child1 = list(parent_a.cells[:cut]) + list(parent_b.cells[cut:])
        child2 = list(parent_b.cells[:cut]) + list(parent_a.cells[cut:])
        return (
            _repair(parent_a.grid, child1, rng),
            _repair(parent_a.grid, child2, rng),
        )


class RegionExchangeCrossover(CrossoverOperator):
    """Exchange the routers inside a random rectangle of the grid.

    Child 1 keeps parent A's assignment for routers that parent A placed
    inside the rectangle and takes parent B's genes elsewhere (child 2 is
    the mirror image).  This is a *spatial* crossover: it trades whole
    sub-topologies (a corner cluster, a diagonal segment) between
    parents, which suits a problem whose fitness is spatial.
    """

    name: ClassVar[str] = "region-exchange"

    def __init__(
        self, min_fraction: float = 0.25, max_fraction: float = 0.75
    ) -> None:
        if not 0.0 < min_fraction <= max_fraction <= 1.0:
            raise ValueError(
                "require 0 < min_fraction <= max_fraction <= 1, got "
                f"{min_fraction}, {max_fraction}"
            )
        self.min_fraction = min_fraction
        self.max_fraction = max_fraction

    def _random_region(self, grid, rng: np.random.Generator) -> Rect:
        width = max(
            1,
            int(
                rng.uniform(self.min_fraction, self.max_fraction) * grid.width
            ),
        )
        height = max(
            1,
            int(
                rng.uniform(self.min_fraction, self.max_fraction) * grid.height
            ),
        )
        x0 = int(rng.integers(0, grid.width - width + 1))
        y0 = int(rng.integers(0, grid.height - height + 1))
        return Rect(x0, y0, width, height)

    def crossover(
        self,
        parent_a: Placement,
        parent_b: Placement,
        rng: np.random.Generator,
    ) -> tuple[Placement, Placement]:
        self._check_parents(parent_a, parent_b)
        region = self._random_region(parent_a.grid, rng)
        child1 = [
            parent_a[i] if region.contains(parent_a[i]) else parent_b[i]
            for i in range(len(parent_a))
        ]
        child2 = [
            parent_b[i] if region.contains(parent_b[i]) else parent_a[i]
            for i in range(len(parent_a))
        ]
        return (
            _repair(parent_a.grid, child1, rng),
            _repair(parent_a.grid, child2, rng),
        )

    def __repr__(self) -> str:
        return (
            f"RegionExchangeCrossover(min_fraction={self.min_fraction}, "
            f"max_fraction={self.max_fraction})"
        )
