"""The genetic algorithm engine.

Section 5 evaluates the ad hoc methods "by using a genetic algorithm
implementation for the problem".  The paper does not publish its GA
internals, so this is a standard generational GA with elitism (DESIGN.md
decision D8): tournament selection, spatial crossover and composite
mutation by default, all operators pluggable.

The engine reports a :class:`~repro.genetic.trace.GATrace` whose
``best_giant_size`` series is exactly what Figures 1-3 plot.

Each offspring generation is evaluated as one batch through the
vectorized engine (see :mod:`repro.core.engine` and
:meth:`~repro.genetic.population.Population.evaluate_all`); elites keep
their cached evaluations, so counts match the scalar loop exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.anytime.deadline import DEFAULT_CLOCK
from repro.core.evaluation import Evaluation, Evaluator
from repro.genetic.crossover import CrossoverOperator, RegionExchangeCrossover
from repro.genetic.individual import Individual
from repro.genetic.initializers import PopulationInitializer
from repro.genetic.mutation import (
    CompositeMutation,
    JiggleMutation,
    MutationOperator,
    ResetMutation,
    TowardCentroidMutation,
)
from repro.genetic.population import Population
from repro.genetic.selection import SelectionOperator, TournamentSelection
from repro.genetic.trace import GATrace, GenerationRecord

if TYPE_CHECKING:
    from repro.anytime.deadline import Deadline

__all__ = ["GAConfig", "GAResult", "GeneticAlgorithm"]


def _default_crossover() -> CrossoverOperator:
    return RegionExchangeCrossover()


def _default_mutation() -> MutationOperator:
    # Local refinement, centroid-directed compaction (the follow-up
    # WMN-GA directed mutation) and occasional teleports for exploration.
    return CompositeMutation(
        [
            JiggleMutation(radius=4, per_gene_rate=0.1),
            TowardCentroidMutation(),
            ResetMutation(count=1),
        ],
        weights=[0.5, 0.35, 0.15],
    )


def _default_selection() -> SelectionOperator:
    return TournamentSelection(size=3)


@dataclass
class GAConfig:
    """Hyper-parameters of one GA run."""

    population_size: int = 64
    n_generations: int = 200
    crossover_rate: float = 0.8
    mutation_rate: float = 0.3
    n_elites: int = 2
    selection: SelectionOperator = field(default_factory=_default_selection)
    crossover: CrossoverOperator = field(default_factory=_default_crossover)
    mutation: MutationOperator = field(default_factory=_default_mutation)

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError(
                f"population_size must be >= 2, got {self.population_size}"
            )
        if self.n_generations < 0:
            raise ValueError(
                f"n_generations must be non-negative, got {self.n_generations}"
            )
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError(
                f"crossover_rate must be in [0, 1], got {self.crossover_rate}"
            )
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError(
                f"mutation_rate must be in [0, 1], got {self.mutation_rate}"
            )
        if not 0 <= self.n_elites < self.population_size:
            raise ValueError(
                f"n_elites must be in [0, population_size), got {self.n_elites}"
            )


@dataclass(frozen=True)
class GAResult:
    """Outcome of one GA run.

    ``stopped_by`` is ``None`` for a run that completed its generation
    budget (or hit its fitness target) and ``"deadline"``/``"cancelled"``
    when a :class:`~repro.anytime.deadline.Deadline` stopped it early.
    ``elapsed_seconds`` is wall-clock (excluded from equality).
    """

    best: Evaluation
    trace: GATrace
    n_generations: int
    n_evaluations: int
    stopped_by: str | None = None
    elapsed_seconds: float = field(default=0.0, compare=False)

    @property
    def giant_size(self) -> int:
        """Giant component size of the best individual found."""
        return self.best.giant_size

    @property
    def covered_clients(self) -> int:
        """Covered clients of the best individual found."""
        return self.best.covered_clients


class GeneticAlgorithm:
    """Generational GA with elitism over placement chromosomes."""

    def __init__(self, config: GAConfig | None = None) -> None:
        self.config = config if config is not None else GAConfig()

    def run(
        self,
        evaluator: Evaluator,
        initializer: PopulationInitializer,
        rng: np.random.Generator,
        fitness_target: float | None = None,
        deadline: "Deadline | None" = None,
    ) -> GAResult:
        """Evolve from ``initializer``'s population; returns best + trace.

        ``deadline`` is polled once per generation boundary (cooperative
        cancellation): when it fires the run stops and returns the best
        individual so far with ``stopped_by`` set.  An already-expired
        deadline still evaluates the initial population, so the result
        is always a valid evaluated solution.
        """
        started = DEFAULT_CLOCK.now()
        config = self.config
        evaluations_before = evaluator.n_evaluations
        placements = initializer.generate(
            evaluator.problem, config.population_size, rng
        )
        population = Population.from_placements(placements)
        population.evaluate_all(evaluator)

        trace = GATrace()
        best = population.best().evaluation
        assert best is not None
        self._record(trace, 0, population, best, evaluator, evaluations_before)

        generation = 0
        stopped_by: str | None = None
        for next_generation in range(1, config.n_generations + 1):
            if deadline is not None:
                stopped_by = deadline.stop_reason()
                if stopped_by is not None:
                    break
            generation = next_generation
            population = self._next_generation(population, evaluator, rng)
            generation_best = population.best().evaluation
            assert generation_best is not None
            if generation_best.fitness > best.fitness:
                best = generation_best
            self._record(
                trace, generation, population, best, evaluator, evaluations_before
            )
            if fitness_target is not None and best.fitness >= fitness_target:
                break
        return GAResult(
            best=best,
            trace=trace,
            n_generations=generation,
            n_evaluations=evaluator.n_evaluations - evaluations_before,
            stopped_by=stopped_by,
            elapsed_seconds=DEFAULT_CLOCK.now() - started,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _next_generation(
        self,
        population: Population,
        evaluator: Evaluator,
        rng: np.random.Generator,
    ) -> Population:
        config = self.config
        offspring: list[Individual] = population.elites(config.n_elites)
        while len(offspring) < config.population_size:
            parent_a, parent_b = config.selection.select_pair(population, rng)
            if rng.uniform() < config.crossover_rate:
                child_a, child_b = config.crossover.crossover(
                    parent_a.placement, parent_b.placement, rng
                )
                children = [Individual(child_a), Individual(child_b)]
            else:
                children = [parent_a.copy(), parent_b.copy()]
            for child in children:
                if rng.uniform() < config.mutation_rate:
                    child = Individual(config.mutation.mutate(child.placement, rng))
                offspring.append(child)
                if len(offspring) == config.population_size:
                    break
        next_population = Population(offspring)
        next_population.evaluate_all(evaluator)
        return next_population

    @staticmethod
    def _record(
        trace: GATrace,
        generation: int,
        population: Population,
        best: Evaluation,
        evaluator: Evaluator,
        evaluations_before: int,
    ) -> None:
        trace.append(
            GenerationRecord(
                generation=generation,
                best_fitness=best.fitness,
                mean_fitness=population.mean_fitness(),
                best_giant_size=best.giant_size,
                best_covered_clients=best.covered_clients,
                diversity=population.diversity(),
                n_evaluations=evaluator.n_evaluations - evaluations_before,
            )
        )

    def __repr__(self) -> str:
        return f"GeneticAlgorithm(config={self.config!r})"
