"""Population initializers.

Section 5's second scenario: "ad hoc methods are used for generating the
initial population of GA ... using ad hoc methods is more effective than
pure random generation of initial population".  An initializer turns an
ad hoc method into a population factory; because the methods are
stochastic (random filler share, window sampling, collision nudging),
repeated calls yield distinct chromosomes around the same topology.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.adhoc.base import AdHocMethod
from repro.adhoc.random_placement import RandomPlacement
from repro.core.problem import ProblemInstance
from repro.core.solution import Placement

__all__ = [
    "PopulationInitializer",
    "AdHocInitializer",
    "RandomInitializer",
    "MixedInitializer",
]


class PopulationInitializer(abc.ABC):
    """Generates the initial placements of a GA population."""

    @abc.abstractmethod
    def generate(
        self, problem: ProblemInstance, size: int, rng: np.random.Generator
    ) -> list[Placement]:
        """``size`` initial placements."""

    def _check_size(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"population size must be positive, got {size}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class AdHocInitializer(PopulationInitializer):
    """Every individual from one ad hoc method (paper's scenario 2)."""

    def __init__(self, method: AdHocMethod) -> None:
        self.method = method

    def generate(
        self, problem: ProblemInstance, size: int, rng: np.random.Generator
    ) -> list[Placement]:
        self._check_size(size)
        return [self.method.place(problem, rng) for _ in range(size)]

    def __repr__(self) -> str:
        return f"AdHocInitializer(method={self.method!r})"


class RandomInitializer(AdHocInitializer):
    """Pure random initial population — the baseline the paper improves on."""

    def __init__(self) -> None:
        super().__init__(RandomPlacement())


class MixedInitializer(PopulationInitializer):
    """Round-robin over several ad hoc methods.

    Maximizes initial diversity by seeding the population with several
    distinct topologies at once — a natural extension of the paper's
    initializer study.
    """

    def __init__(self, methods: Sequence[AdHocMethod]) -> None:
        if not methods:
            raise ValueError("MixedInitializer needs at least one method")
        self.methods = list(methods)

    def generate(
        self, problem: ProblemInstance, size: int, rng: np.random.Generator
    ) -> list[Placement]:
        self._check_size(size)
        return [
            self.methods[index % len(self.methods)].place(problem, rng)
            for index in range(size)
        ]

    def __repr__(self) -> str:
        inner = ", ".join(repr(method) for method in self.methods)
        return f"MixedInitializer([{inner}])"
