"""Genetic algorithm substrate (paper Section 5, scenario 2).

The GA the paper uses to evaluate ad hoc methods as population
initializers: individuals, populations, selection / crossover / mutation
operators, initializers wrapping the ad hoc methods, the generational
engine with elitism and the per-generation trace behind Figures 1-3.
"""

from repro.genetic.crossover import (
    CrossoverOperator,
    OnePointCrossover,
    RegionExchangeCrossover,
    UniformCrossover,
)
from repro.genetic.engine import GAConfig, GAResult, GeneticAlgorithm
from repro.genetic.individual import Individual
from repro.genetic.initializers import (
    AdHocInitializer,
    MixedInitializer,
    PopulationInitializer,
    RandomInitializer,
)
from repro.genetic.mutation import (
    CompositeMutation,
    GeneSwapMutation,
    JiggleMutation,
    MutationOperator,
    ResetMutation,
    TowardCentroidMutation,
)
from repro.genetic.population import Population
from repro.genetic.selection import (
    RankSelection,
    RouletteWheelSelection,
    SelectionOperator,
    TournamentSelection,
)
from repro.genetic.trace import GATrace, GenerationRecord

__all__ = [
    "CrossoverOperator",
    "OnePointCrossover",
    "RegionExchangeCrossover",
    "UniformCrossover",
    "GAConfig",
    "GAResult",
    "GeneticAlgorithm",
    "Individual",
    "AdHocInitializer",
    "MixedInitializer",
    "PopulationInitializer",
    "RandomInitializer",
    "CompositeMutation",
    "GeneSwapMutation",
    "JiggleMutation",
    "MutationOperator",
    "ResetMutation",
    "TowardCentroidMutation",
    "Population",
    "RankSelection",
    "RouletteWheelSelection",
    "SelectionOperator",
    "TournamentSelection",
    "GATrace",
    "GenerationRecord",
]
