"""Mutation operators.

Small random changes to a chromosome.  ``JiggleMutation`` performs
radius-bounded relocations (local refinement); ``ResetMutation`` teleports
routers anywhere (exploration); ``GeneSwapMutation`` exchanges the
positions of two routers — the GA analogue of the paper's swap movement.
``CompositeMutation`` mixes them.
"""

from __future__ import annotations

import abc
from typing import ClassVar, Sequence

import numpy as np

from repro.core.geometry import Point, Rect
from repro.core.solution import Placement

__all__ = [
    "MutationOperator",
    "JiggleMutation",
    "ResetMutation",
    "GeneSwapMutation",
    "TowardCentroidMutation",
    "CompositeMutation",
]


class MutationOperator(abc.ABC):
    """Perturbs a placement into a new valid placement."""

    name: ClassVar[str] = "abstract"

    @abc.abstractmethod
    def mutate(self, placement: Placement, rng: np.random.Generator) -> Placement:
        """A mutated copy (the input placement is never modified)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class JiggleMutation(MutationOperator):
    """Relocate routers within a small Chebyshev radius.

    Each router mutates independently with probability ``per_gene_rate``
    and moves to a random free cell within ``radius`` of its current
    position (falling back to staying put when its neighborhood is
    full).
    """

    name: ClassVar[str] = "jiggle"

    def __init__(self, radius: int = 4, per_gene_rate: float = 0.1) -> None:
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        if not 0.0 < per_gene_rate <= 1.0:
            raise ValueError(
                f"per_gene_rate must be in (0, 1], got {per_gene_rate}"
            )
        self.radius = radius
        self.per_gene_rate = per_gene_rate

    def mutate(self, placement: Placement, rng: np.random.Generator) -> Placement:
        grid = placement.grid
        cells = list(placement.cells)
        occupied = set(cells)
        for router_id in range(len(cells)):
            if rng.uniform() >= self.per_gene_rate:
                continue
            current = cells[router_id]
            window = Rect(
                current.x - self.radius,
                current.y - self.radius,
                2 * self.radius + 1,
                2 * self.radius + 1,
            )
            occupied.discard(current)
            try:
                target = grid.random_free_cell(occupied, rng, within=window)
            except ValueError:
                # Neighborhood completely full: keep the router in place.
                target = current
            occupied.add(target)
            cells[router_id] = target
        return Placement.from_cells(grid, cells)

    def __repr__(self) -> str:
        return (
            f"JiggleMutation(radius={self.radius}, "
            f"per_gene_rate={self.per_gene_rate})"
        )


class ResetMutation(MutationOperator):
    """Teleport ``count`` random routers to uniform random free cells."""

    name: ClassVar[str] = "reset"

    def __init__(self, count: int = 1) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self.count = count

    def mutate(self, placement: Placement, rng: np.random.Generator) -> Placement:
        grid = placement.grid
        cells = list(placement.cells)
        occupied = set(cells)
        n_resets = min(self.count, len(cells))
        victims = rng.choice(len(cells), size=n_resets, replace=False)
        for router_id in victims:
            router_id = int(router_id)
            occupied.discard(cells[router_id])
            target = grid.random_free_cell(occupied, rng)
            occupied.add(target)
            cells[router_id] = target
        return Placement.from_cells(grid, cells)

    def __repr__(self) -> str:
        return f"ResetMutation(count={self.count})"


class GeneSwapMutation(MutationOperator):
    """Exchange the cells of two random routers.

    Positions are preserved; only the radii move — useful when strong
    routers should sit where the topology needs reach (the GA-internal
    mirror of Algorithm 3's literal swap).
    """

    name: ClassVar[str] = "gene-swap"

    def mutate(self, placement: Placement, rng: np.random.Generator) -> Placement:
        n = len(placement)
        if n < 2:
            return placement
        a, b = rng.choice(n, size=2, replace=False)
        return placement.with_swap(int(a), int(b))


class TowardCentroidMutation(MutationOperator):
    """Pull a random router a step towards the fleet's centroid.

    The directed-mutation idea from the authors' follow-up WMN-GA work:
    network connectivity improves when routers compact, so one router
    moves a random fraction of the way towards the placement's centre of
    mass (with a little jitter to avoid pile-ups).  Selection still
    decides whether the compaction actually helped.
    """

    name: ClassVar[str] = "toward-centroid"

    def __init__(self, max_step_fraction: float = 0.5, jitter: int = 2) -> None:
        if not 0.0 < max_step_fraction <= 1.0:
            raise ValueError(
                f"max_step_fraction must be in (0, 1], got {max_step_fraction}"
            )
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        self.max_step_fraction = max_step_fraction
        self.jitter = jitter

    def mutate(self, placement: Placement, rng: np.random.Generator) -> Placement:
        grid = placement.grid
        positions = placement.positions_array()
        centroid = positions.mean(axis=0)
        router_id = int(rng.integers(0, len(placement)))
        current = placement[router_id]
        fraction = rng.uniform(0.0, self.max_step_fraction)
        target_x = current.x + fraction * (centroid[0] - current.x)
        target_y = current.y + fraction * (centroid[1] - current.y)
        if self.jitter:
            target_x += rng.integers(-self.jitter, self.jitter + 1)
            target_y += rng.integers(-self.jitter, self.jitter + 1)
        target = grid.bounds.clamped(Point(int(round(target_x)), int(round(target_y))))
        if target == current:
            return placement
        occupied = set(placement.cells)
        occupied.discard(current)
        if target in occupied:
            # Land on the nearest free spot around the intended target.
            window = Rect(target.x - 2, target.y - 2, 5, 5)
            try:
                target = grid.random_free_cell(occupied, rng, within=window)
            except ValueError:
                return placement
        return placement.with_move(router_id, target)

    def __repr__(self) -> str:
        return (
            f"TowardCentroidMutation(max_step_fraction={self.max_step_fraction}, "
            f"jitter={self.jitter})"
        )


class CompositeMutation(MutationOperator):
    """Apply one of several operators, drawn by weight."""

    name: ClassVar[str] = "composite"

    def __init__(
        self,
        operators: Sequence[MutationOperator],
        weights: Sequence[float] | None = None,
    ) -> None:
        if not operators:
            raise ValueError("CompositeMutation needs at least one operator")
        self.operators = list(operators)
        if weights is None:
            weights = [1.0] * len(self.operators)
        if len(weights) != len(self.operators):
            raise ValueError(
                f"{len(weights)} weights for {len(self.operators)} operators"
            )
        if any(weight < 0 for weight in weights) or sum(weights) <= 0:
            raise ValueError("weights must be non-negative and not all zero")
        total = float(sum(weights))
        self._probabilities = np.array([weight / total for weight in weights])

    @property
    def probabilities(self) -> np.ndarray:
        """Normalized operator selection probabilities."""
        return self._probabilities

    def mutate(self, placement: Placement, rng: np.random.Generator) -> Placement:
        index = int(rng.choice(len(self.operators), p=self._probabilities))
        return self.operators[index].mutate(placement, rng)

    def __repr__(self) -> str:
        inner = ", ".join(repr(op) for op in self.operators)
        return f"CompositeMutation([{inner}])"
