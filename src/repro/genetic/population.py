"""GA populations.

A thin, explicit container over :class:`~repro.genetic.individual.Individual`
with the aggregate queries the engine and the diversity analysis need
(best individual, mean fitness, spatial diversity of the gene pool).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.core.evaluation import Evaluator
from repro.genetic.individual import Individual

__all__ = ["Population"]


@dataclass
class Population:
    """An ordered collection of individuals."""

    individuals: list[Individual] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.individuals:
            raise ValueError("a population must contain at least one individual")

    def __len__(self) -> int:
        return len(self.individuals)

    def __iter__(self) -> Iterator[Individual]:
        return iter(self.individuals)

    def __getitem__(self, index: int) -> Individual:
        return self.individuals[index]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate_all(self, evaluator: Evaluator) -> None:
        """Ensure every individual carries an evaluation.

        The unevaluated individuals (a whole offspring generation, after
        elites carried their cached evaluations over) are measured as one
        batch through the vectorized engine — bit-identical results and
        evaluation counts, one pass instead of a Python loop.  Evaluators
        without a batch path (e.g. test doubles) fall back to the scalar
        loop.
        """
        pending = [ind for ind in self.individuals if not ind.is_evaluated]
        if not pending:
            return
        evaluate_many = getattr(evaluator, "evaluate_many", None)
        if evaluate_many is None:
            for individual in pending:
                individual.ensure_evaluated(evaluator)
            return
        evaluations = evaluate_many([ind.placement for ind in pending])
        for individual, evaluation in zip(pending, evaluations):
            individual.evaluation = evaluation

    def require_evaluated(self) -> None:
        """Raise unless every individual is evaluated."""
        for index, individual in enumerate(self.individuals):
            if not individual.is_evaluated:
                raise ValueError(f"individual {index} has not been evaluated")

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def best(self) -> Individual:
        """The fittest individual (first on ties, deterministic)."""
        self.require_evaluated()
        return max(self.individuals, key=lambda ind: ind.fitness)

    def elites(self, count: int) -> list[Individual]:
        """The ``count`` fittest individuals, fittest first."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self.require_evaluated()
        ranked = sorted(self.individuals, key=lambda ind: ind.fitness, reverse=True)
        return [individual.copy() for individual in ranked[:count]]

    def mean_fitness(self) -> float:
        """Average fitness over the population."""
        self.require_evaluated()
        return float(
            np.mean([individual.fitness for individual in self.individuals])
        )

    def fitness_values(self) -> np.ndarray:
        """Fitness of every individual, in population order."""
        self.require_evaluated()
        return np.array([individual.fitness for individual in self.individuals])

    def diversity(self) -> float:
        """Mean pairwise distance between chromosomes (gene-averaged).

        "The diversity of the population ... is a crucial factor to avoid
        premature convergence" (Section 5): this metric lets experiments
        quantify what the different ad hoc initializers contribute.
        Computed as the average over router ids of the mean pairwise
        Euclidean distance between the routers' cells across individuals.
        """
        if len(self.individuals) < 2:
            return 0.0
        # stack: (P, N, 2) — population size x routers x coordinates
        stack = np.stack(
            [ind.placement.positions_array() for ind in self.individuals]
        )
        total = 0.0
        pairs = 0
        for i in range(len(self.individuals)):
            deltas = stack[i + 1 :] - stack[i]
            if deltas.size:
                distances = np.sqrt((deltas**2).sum(axis=2))
                total += float(distances.mean(axis=1).sum())
                pairs += deltas.shape[0]
        return total / pairs if pairs else 0.0

    @classmethod
    def from_placements(cls, placements: Sequence) -> "Population":
        """Wrap raw placements into unevaluated individuals."""
        return cls([Individual(placement=placement) for placement in placements])
