"""GA individuals.

A chromosome for the placement problem *is* a placement: gene ``i`` is
the cell of router ``i`` (the "genetic information encoded in the
chromosomes" of Section 5).  :class:`Individual` pairs a placement with
its cached evaluation so the engine never evaluates the same individual
twice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evaluation import Evaluation, Evaluator
from repro.core.solution import Placement

__all__ = ["Individual"]


@dataclass
class Individual:
    """One member of a GA population."""

    placement: Placement
    evaluation: Evaluation | None = None

    @property
    def is_evaluated(self) -> bool:
        """Whether a cached evaluation exists."""
        return self.evaluation is not None

    @property
    def fitness(self) -> float:
        """Cached fitness; raises if the individual is not evaluated yet."""
        if self.evaluation is None:
            raise ValueError("individual has not been evaluated")
        return self.evaluation.fitness

    def ensure_evaluated(self, evaluator: Evaluator) -> Evaluation:
        """Evaluate on first use, reuse the cache afterwards."""
        if self.evaluation is None:
            self.evaluation = evaluator.evaluate(self.placement)
        return self.evaluation

    def copy(self) -> "Individual":
        """A shallow copy sharing the immutable placement and evaluation."""
        return Individual(placement=self.placement, evaluation=self.evaluation)
