"""Parent selection operators.

Standard GA selection schemes over evaluated populations.  All operators
are maximizing and deterministic given the RNG, so experiment runs
reproduce exactly from a seed.
"""

from __future__ import annotations

import abc
from typing import ClassVar

import numpy as np

from repro.genetic.individual import Individual
from repro.genetic.population import Population

__all__ = [
    "SelectionOperator",
    "TournamentSelection",
    "RouletteWheelSelection",
    "RankSelection",
]


class SelectionOperator(abc.ABC):
    """Chooses one parent from an evaluated population."""

    name: ClassVar[str] = "abstract"

    @abc.abstractmethod
    def select(self, population: Population, rng: np.random.Generator) -> Individual:
        """One parent (the population must be fully evaluated)."""

    def select_pair(
        self, population: Population, rng: np.random.Generator
    ) -> tuple[Individual, Individual]:
        """Two independently selected parents (may coincide)."""
        return self.select(population, rng), self.select(population, rng)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class TournamentSelection(SelectionOperator):
    """Best of ``size`` uniformly drawn contestants (with replacement)."""

    name: ClassVar[str] = "tournament"

    def __init__(self, size: int = 3) -> None:
        if size <= 0:
            raise ValueError(f"tournament size must be positive, got {size}")
        self.size = size

    def select(self, population: Population, rng: np.random.Generator) -> Individual:
        population.require_evaluated()
        indices = rng.integers(0, len(population), size=self.size)
        best_index = max(indices, key=lambda i: population[int(i)].fitness)
        return population[int(best_index)]

    def __repr__(self) -> str:
        return f"TournamentSelection(size={self.size})"


class RouletteWheelSelection(SelectionOperator):
    """Fitness-proportionate selection.

    Fitness values are shifted to be positive before normalization, so
    the operator works for any scalarization (lexicographic scores are
    large but finite).  A degenerate population (all equal fitness)
    selects uniformly.
    """

    name: ClassVar[str] = "roulette"

    def select(self, population: Population, rng: np.random.Generator) -> Individual:
        values = population.fitness_values()
        shifted = values - values.min()
        total = shifted.sum()
        if total <= 0:
            index = int(rng.integers(0, len(population)))
        else:
            index = int(rng.choice(len(population), p=shifted / total))
        return population[index]


class RankSelection(SelectionOperator):
    """Linear rank-proportionate selection.

    Selection pressure depends only on fitness ordering, not magnitude —
    robust when fitness scales vary wildly across instances.
    """

    name: ClassVar[str] = "rank"

    def select(self, population: Population, rng: np.random.Generator) -> Individual:
        values = population.fitness_values()
        # ranks: worst individual gets 1, best gets len(population)
        order = np.argsort(np.argsort(values, kind="stable"), kind="stable") + 1
        probabilities = order / order.sum()
        index = int(rng.choice(len(population), p=probabilities))
        return population[index]
