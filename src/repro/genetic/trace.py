"""GA evolution traces.

Figures 1-3 plot "the evolution of size of giant component" against
"nb generations" for each initializing ad hoc method.  The engine
records one :class:`GenerationRecord` per generation; the harness prints
selected generations as the figures' series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["GenerationRecord", "GATrace"]


@dataclass(frozen=True, slots=True)
class GenerationRecord:
    """Aggregate state of the population after one generation.

    ``best_giant_size`` / ``best_covered_clients`` describe the best
    individual *by fitness* found so far: the fitness series is monotone
    under elitism, while the giant series may occasionally dip when a
    fitter solution trades connectivity for coverage.
    """

    generation: int
    best_fitness: float
    mean_fitness: float
    best_giant_size: int
    best_covered_clients: int
    diversity: float
    n_evaluations: int

    def as_dict(self) -> dict:
        """Plain-dict form for serialization and reporting."""
        return {
            "generation": self.generation,
            "best_fitness": self.best_fitness,
            "mean_fitness": self.mean_fitness,
            "best_giant_size": self.best_giant_size,
            "best_covered_clients": self.best_covered_clients,
            "diversity": self.diversity,
            "n_evaluations": self.n_evaluations,
        }


@dataclass
class GATrace:
    """Generation-by-generation history of one GA run."""

    records: list[GenerationRecord] = field(default_factory=list)

    def append(self, record: GenerationRecord) -> None:
        """Add the next generation record (in order)."""
        if self.records and record.generation <= self.records[-1].generation:
            raise ValueError(
                f"generation {record.generation} out of order after "
                f"{self.records[-1].generation}"
            )
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[GenerationRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> GenerationRecord:
        return self.records[index]

    @property
    def generations(self) -> list[int]:
        """Generation numbers (the figures' x axis)."""
        return [record.generation for record in self.records]

    @property
    def giant_sizes(self) -> list[int]:
        """Best giant component size per generation (the y axis)."""
        return [record.best_giant_size for record in self.records]

    @property
    def best_fitnesses(self) -> list[float]:
        """Best fitness per generation."""
        return [record.best_fitness for record in self.records]

    def final(self) -> GenerationRecord:
        """The last generation record."""
        if not self.records:
            raise ValueError("empty trace")
        return self.records[-1]

    def at_generation(self, generation: int) -> GenerationRecord:
        """The record for an exact generation number."""
        for record in self.records:
            if record.generation == generation:
                return record
        raise KeyError(f"no record for generation {generation}")

    def sampled(self, step: int) -> list[GenerationRecord]:
        """Every ``step``-th record plus the final one (figure series)."""
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        picked = [
            record for index, record in enumerate(self.records) if index % step == 0
        ]
        if self.records and picked[-1] is not self.records[-1]:
            picked.append(self.records[-1])
        return picked
