"""The GA initializer study: one table plus one figure per distribution.

The paper's Tables 1-3 and Figures 1-3 are two views of the same runs:
the table reports the final giant component and coverage per ad hoc
initializer, the figure plots the evolution that produced them.
:func:`run_distribution_study` therefore runs the GA once per method and
derives both artifacts, which halves the cost of a full reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adhoc.registry import PAPER_METHOD_ORDER, make_method
from repro.core.evaluation import Evaluator
from repro.core.fitness import FitnessFunction
from repro.core.problem import ProblemInstance
from repro.experiments.config import ExperimentScale, current_scale
from repro.genetic.engine import GAConfig, GeneticAlgorithm
from repro.genetic.initializers import AdHocInitializer
from repro.instances.catalog import catalog
from repro.instances.generator import InstanceSpec

__all__ = ["MethodStudy", "DistributionStudy", "run_distribution_study"]


@dataclass(frozen=True)
class MethodStudy:
    """One ad hoc method's results: stand-alone and GA-initialized."""

    method: str
    giant_standalone: int
    coverage_standalone: int
    giant_by_ga: int
    coverage_by_ga: int
    #: ``(generation, best giant size)`` points sampled for the figure.
    series: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class DistributionStudy:
    """All methods' results on one client distribution."""

    distribution: str
    spec: InstanceSpec
    scale_name: str
    seed: int
    methods: tuple[MethodStudy, ...]

    def method(self, name: str) -> MethodStudy:
        """The study entry for the given method name."""
        for entry in self.methods:
            if entry.method == name:
                return entry
        raise KeyError(f"no study entry for method {name!r}")


def resolve_spec(distribution: str, spec: InstanceSpec | None) -> InstanceSpec:
    """The catalog spec for ``distribution`` unless an override is given."""
    if spec is not None:
        return spec
    try:
        return catalog()[distribution]
    except KeyError:
        known = ", ".join(sorted(catalog()))
        raise ValueError(
            f"unknown distribution {distribution!r}; known: {known}"
        ) from None


def run_distribution_study(
    distribution: str,
    scale: ExperimentScale | None = None,
    seed: int = 1,
    spec: InstanceSpec | None = None,
    fitness: FitnessFunction | None = None,
    methods: tuple[str, ...] = PAPER_METHOD_ORDER,
    engine: str = "auto",
) -> DistributionStudy:
    """Run the full initializer study for one client distribution."""
    if scale is None:
        scale = current_scale()
    spec = resolve_spec(distribution, spec)
    problem = spec.generate()
    entries = tuple(
        _study_method(name, problem, scale, seed, fitness, engine)
        for name in methods
    )
    return DistributionStudy(
        distribution=distribution,
        spec=spec,
        scale_name=scale.name,
        seed=seed,
        methods=entries,
    )


def _study_method(
    method_name: str,
    problem: ProblemInstance,
    scale: ExperimentScale,
    seed: int,
    fitness: FitnessFunction | None,
    engine: str = "auto",
) -> MethodStudy:
    from repro.experiments.replication import label_key

    method = make_method(method_name)

    # Stand-alone: one placement, exactly as the tables' right columns.
    # Stable CRC32 label keys — the salted builtin ``hash`` of earlier
    # revisions made `reproduce` output differ between interpreter runs.
    standalone_rng = np.random.default_rng((seed, label_key(method_name), 1))
    standalone = Evaluator(problem, fitness, engine=engine).evaluate(
        method.place(problem, standalone_rng)
    )

    # GA initialized by the method; the trace provides the figure series.
    ga_rng = np.random.default_rng((seed, label_key(method_name), 2))
    ga = GeneticAlgorithm(
        GAConfig(
            population_size=scale.population_size,
            n_generations=scale.n_generations,
        )
    )
    result = ga.run(
        Evaluator(problem, fitness, engine=engine), AdHocInitializer(method), ga_rng
    )
    sampled = result.trace.sampled(scale.record_step)

    return MethodStudy(
        method=method_name,
        giant_standalone=standalone.giant_size,
        coverage_standalone=standalone.covered_clients,
        giant_by_ga=result.giant_size,
        coverage_by_ga=result.covered_clients,
        series=tuple(
            (record.generation, record.best_giant_size) for record in sampled
        ),
    )
