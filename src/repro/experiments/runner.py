"""One-shot regeneration of every table and figure.

``run_all`` executes the whole evaluation section of the paper —
Tables 1-3, Figures 1-3 (GA initializer study) and Figure 4
(neighborhood search) — and renders each artifact as text and CSV.
Used by the CLI (``wmn-placement reproduce``) and by EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.experiments.config import ExperimentScale, current_scale
from repro.experiments.figures import (
    FigureResult,
    PAPER_GA_FIGURE_NUMBERS,
    figure_from_study,
    run_ns_figure,
)
from repro.experiments.reporting import (
    figure_to_csv,
    format_figure,
    format_table,
    table_to_csv,
)
from repro.experiments.study import run_distribution_study
from repro.experiments.tables import (
    PAPER_TABLE_NUMBERS,
    TableResult,
    table_from_study,
)

__all__ = ["ReproductionReport", "run_all"]


@dataclass(frozen=True)
class ReproductionReport:
    """Every regenerated artifact from one full run."""

    tables: tuple[TableResult, ...]
    figures: tuple[FigureResult, ...]
    scale_name: str
    seed: int

    def render_text(self) -> str:
        """All artifacts as one readable text report.

        Each figure is followed by its convergence analysis (effort to
        reach 50% / 75% connectivity, area under the curve) — the "how
        fast" question the paper asks of the search methods.
        """
        from repro.experiments.analysis import speed_summary

        parts = [
            f"Reproduction report (scale={self.scale_name}, seed={self.seed})",
            "=" * 64,
            "",
        ]
        for table in self.tables:
            parts.append(format_table(table))
            parts.append("")
        for figure in self.figures:
            parts.append(format_figure(figure))
            parts.append("Convergence analysis:")
            parts.append(speed_summary(figure))
            parts.append("")
        return "\n".join(parts)

    def save_csvs(self, directory: "str | Path") -> list[Path]:
        """Write one CSV per artifact into ``directory``; returns paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written: list[Path] = []
        for table in self.tables:
            path = directory / f"table{table.table_number}_{table.distribution}.csv"
            path.write_text(table_to_csv(table))
            written.append(path)
        for figure in self.figures:
            path = directory / f"figure{figure.figure_number}.csv"
            path.write_text(figure_to_csv(figure))
            written.append(path)
        return written


def run_all(
    scale: ExperimentScale | None = None,
    seed: int = 1,
    distributions: tuple[str, ...] = ("normal", "exponential", "weibull"),
    specs: dict | None = None,
    engine: str = "auto",
) -> ReproductionReport:
    """Regenerate Tables 1-3 and Figures 1-4.

    ``specs`` optionally maps distribution names to
    :class:`~repro.instances.generator.InstanceSpec` overrides (smaller
    instances for tests and demos); the catalog instances are used
    otherwise.
    """
    if scale is None:
        scale = current_scale()
    specs = specs or {}
    # Table k and Figure k are two views of the same GA runs (as in the
    # paper), so each distribution's study executes exactly once.
    tables = []
    ga_figures = []
    for distribution in distributions:
        if distribution not in PAPER_TABLE_NUMBERS:
            continue
        study = run_distribution_study(
            distribution,
            scale=scale,
            seed=seed,
            spec=specs.get(distribution),
            engine=engine,
        )
        tables.append(table_from_study(study))
        if distribution in PAPER_GA_FIGURE_NUMBERS:
            ga_figures.append(figure_from_study(study))
    ns_figure = run_ns_figure(
        scale=scale, seed=seed, spec=specs.get("normal"), engine=engine
    )
    return ReproductionReport(
        tables=tuple(tables),
        figures=tuple(ga_figures) + (ns_figure,),
        scale_name=scale.name,
        seed=seed,
    )
