"""Multi-seed replication of the paper's experiments.

The paper reports single runs.  A faithful reproduction should also show
that the claims are not seed artifacts, so this harness reruns the
stand-alone method comparison and the movement comparison across many
seeds and reports mean +/- standard deviation per metric.

Both harnesses accept ``workers=``: replication runs are embarrassingly
parallel, so seeds fan out over a ``ProcessPoolExecutor``.  Every run's
RNG is seeded in the parent from the same per-seed key the serial loop
uses, so means, stds and per-seed values are identical to the serial
path — parallelism only changes wall-clock time.  Serial remains the
default; with ``workers > 1`` the method/movement inputs must be
picklable (the built-in registries and movements all are).
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.adhoc.registry import PAPER_METHOD_ORDER, make_method
from repro.core.evaluation import Evaluator
from repro.core.fitness import FitnessFunction
from repro.instances.generator import InstanceSpec
from repro.neighborhood.movements import MovementType
from repro.neighborhood.search import NeighborhoodSearch

__all__ = [
    "ReplicatedMetric",
    "replicate_standalone",
    "replicate_movements",
    "format_replication",
]

#: Per-process cache of generated instances, keyed by the spec's repr
#: (specs are frozen dataclasses, so the repr captures every field).
#: Workers receive the spec and regenerate once instead of pickling the
#: whole instance per task.
_PROBLEM_CACHE: dict[str, "object"] = {}


def _cached_problem(spec: InstanceSpec):
    key = repr(spec)
    problem = _PROBLEM_CACHE.get(key)
    if problem is None:
        problem = spec.generate()
        _PROBLEM_CACHE[key] = problem
    return problem


def _name_key(name: str) -> int:
    """Stable 16-bit key from a method/movement label.

    Earlier revisions used the built-in ``hash``, whose per-process salt
    made replication results differ between interpreter runs; CRC32 is
    deterministic everywhere, so fixed seeds now mean fixed statistics.
    """
    return zlib.crc32(name.encode("utf-8")) & 0xFFFF


def _standalone_run(task) -> tuple[float, float, float]:
    """One (method, seed) stand-alone run; top-level for pickling."""
    spec, method_name, fitness, rng_key = task
    problem = _cached_problem(spec)
    evaluator = Evaluator(problem, fitness)
    rng = np.random.default_rng(rng_key)
    evaluation = evaluator.evaluate(make_method(method_name).place(problem, rng))
    return (
        float(evaluation.giant_size),
        float(evaluation.covered_clients),
        evaluation.fitness,
    )


def _movement_run(task) -> tuple[float, float]:
    """One (movement, seed) search run; top-level for pickling."""
    from repro.core.solution import Placement

    spec, factory, n_candidates, max_phases, fitness, rng_key = task
    problem = _cached_problem(spec)
    rng = np.random.default_rng(rng_key)
    evaluator = Evaluator(problem, fitness)
    initial = Placement.random(problem.grid, problem.n_routers, rng)
    search = NeighborhoodSearch(
        factory(),
        n_candidates=n_candidates,
        max_phases=max_phases,
        stall_phases=None,
    )
    outcome = search.run(evaluator, initial, rng)
    return (float(outcome.best.giant_size), float(outcome.best.covered_clients))


def _run_tasks(runner, tasks: list, workers: int | None) -> list:
    """Run tasks serially or over a process pool, preserving order."""
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be a positive int or None, got {workers}")
    if workers is None or workers == 1:
        return [runner(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(runner, tasks))


@dataclass(frozen=True)
class ReplicatedMetric:
    """Mean / standard deviation / extremes of one metric across seeds."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("a replicated metric needs at least one value")

    @property
    def n_seeds(self) -> int:
        """Number of replications."""
        return len(self.values)

    @property
    def mean(self) -> float:
        """Sample mean."""
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1; 0 for a single run)."""
        if len(self.values) < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def minimum(self) -> float:
        """Smallest observed value."""
        return float(min(self.values))

    @property
    def maximum(self) -> float:
        """Largest observed value."""
        return float(max(self.values))

    def __str__(self) -> str:
        return f"{self.mean:.1f} +/- {self.std:.1f}"


def replicate_standalone(
    spec: InstanceSpec,
    n_seeds: int = 10,
    methods: tuple[str, ...] = PAPER_METHOD_ORDER,
    fitness: FitnessFunction | None = None,
    workers: int | None = None,
) -> dict[str, dict[str, ReplicatedMetric]]:
    """Stand-alone ad hoc results across seeds.

    Returns ``{method: {"giant": ..., "coverage": ..., "fitness": ...}}``.
    The instance is fixed (the spec's seed); only the methods' randomness
    varies, exactly like repeated planning runs on one deployment area.
    With ``workers``, seeds fan out over a process pool; every run's RNG
    key is computed here in the parent, so the per-seed values are
    identical to the serial path.
    """
    if n_seeds <= 0:
        raise ValueError(f"n_seeds must be positive, got {n_seeds}")
    tasks = [
        (spec, name, fitness, (spec.seed, _name_key(name), seed))
        for name in methods
        for seed in range(n_seeds)
    ]
    values = _run_tasks(_standalone_run, tasks, workers)
    results: dict[str, dict[str, ReplicatedMetric]] = {}
    for index, name in enumerate(methods):
        rows = values[index * n_seeds : (index + 1) * n_seeds]
        results[name] = {
            "giant": ReplicatedMetric(tuple(row[0] for row in rows)),
            "coverage": ReplicatedMetric(tuple(row[1] for row in rows)),
            "fitness": ReplicatedMetric(tuple(row[2] for row in rows)),
        }
    return results


def replicate_movements(
    spec: InstanceSpec,
    movements: dict[str, "type[MovementType] | None"] = None,
    n_seeds: int = 5,
    n_candidates: int = 16,
    max_phases: int = 30,
    fitness: FitnessFunction | None = None,
    workers: int | None = None,
) -> dict[str, dict[str, ReplicatedMetric]]:
    """Final neighborhood-search giants across seeds, per movement.

    ``movements`` maps labels to zero-argument movement factories; the
    default compares the paper's Swap and Random movements.  Each seed
    draws its own initial random placement, so the statistics cover both
    the start and the search randomness.  With ``workers``, the
    (movement, seed) runs fan out over a process pool with
    parent-computed RNG keys — identical statistics, less wall-clock.
    """
    from repro.neighborhood.movements import RandomMovement, SwapMovement

    if n_seeds <= 0:
        raise ValueError(f"n_seeds must be positive, got {n_seeds}")
    if movements is None:
        movements = {"Swap": SwapMovement, "Random": RandomMovement}
    labels = list(movements)
    tasks = [
        (
            spec,
            movements[label],
            n_candidates,
            max_phases,
            fitness,
            (spec.seed, _name_key(label), seed),
        )
        for label in labels
        for seed in range(n_seeds)
    ]
    values = _run_tasks(_movement_run, tasks, workers)
    results: dict[str, dict[str, ReplicatedMetric]] = {}
    for index, label in enumerate(labels):
        rows = values[index * n_seeds : (index + 1) * n_seeds]
        results[label] = {
            "giant": ReplicatedMetric(tuple(row[0] for row in rows)),
            "coverage": ReplicatedMetric(tuple(row[1] for row in rows)),
        }
    return results


def format_replication(
    results: dict[str, dict[str, ReplicatedMetric]], title: str
) -> str:
    """Aligned text table of replicated metrics."""
    lines = [title]
    metric_names = list(next(iter(results.values())))
    header = f"{'name':12s}" + "".join(
        f"{metric:>20s}" for metric in metric_names
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, metrics in results.items():
        lines.append(
            f"{name:12s}"
            + "".join(f"{str(metrics[metric]):>20s}" for metric in metric_names)
        )
    return "\n".join(lines) + "\n"
