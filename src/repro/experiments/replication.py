"""Multi-seed replication of the paper's experiments.

The paper reports single runs.  A faithful reproduction should also show
that the claims are not seed artifacts, so this harness reruns the
stand-alone method comparison and the movement comparison across many
seeds and reports mean +/- standard deviation per metric.

Both harnesses execute their portfolios through the vectorized engine
layer: the stand-alone placements of each method are evaluated as one
batched candidate set, and the (movement, seed) search chains advance in
lockstep through :class:`~repro.neighborhood.multichain.MultiChainSearch`
— one stacked engine pass per phase instead of one small batch per chain
per phase (see ``benchmarks/bench_multichain.py`` for the measured
speedup).

Per-chain RNG contract
----------------------

Every (method/movement, seed) run owns one ``numpy`` Generator seeded in
the parent from the stable key ``(spec.seed, crc32(label), seed)``
(:func:`label_key`; CRC32 because the builtin ``hash`` is salted per
process).  A movement chain consumes its generator in a fixed order —
the initial random placement first, then the per-phase candidate
proposals — and **only** that chain touches it, so the per-seed values
are bit-identical however the chains are grouped: the lockstep engine,
the serial per-chain loop and every ``workers=`` sharding all report the
same numbers (asserted by ``tests/experiments/test_replication_parallel``
and ``tests/neighborhood/test_multichain.py``).

``workers=`` composes both parallelism axes: chains run in lockstep
*within* a process while contiguous seed shards fan out over a
``ProcessPoolExecutor`` *across* cores.  Serial remains the default;
with ``workers > 1`` the method/movement inputs must be picklable (the
built-in registries and movements all are).
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass

import numpy as np

from repro.adhoc.registry import PAPER_METHOD_ORDER, make_method
from repro.core.evaluation import Evaluator
from repro.core.fitness import FitnessFunction
from repro.instances.generator import InstanceSpec
from repro.instances.shm import ProblemRef
from repro.neighborhood.movements import MovementType
from repro.neighborhood.multichain import MultiChainSearch
from repro.parallel import (
    get_runtime,
    resolve_task_problem,
    run_tasks,
    runtime_enabled,
    seed_shards,
)
from repro.resilience.checkpoint import open_store
from repro.resilience.supervisor import RetryPolicy, SupervisionReport

__all__ = [
    "ReplicatedMetric",
    "label_key",
    "replicate_standalone",
    "replicate_movements",
    "format_replication",
]

#: Per-process cache of generated instances, keyed by the spec's repr
#: (specs are frozen dataclasses, so the repr captures every field).
#: Workers receive the spec and regenerate once instead of pickling the
#: whole instance per task.
_PROBLEM_CACHE: dict[str, "object"] = {}


def _cached_problem(source):
    """The instance behind a task's problem payload.

    ``source`` is an :class:`InstanceSpec` (regenerate once per process,
    the pickle path) or a :class:`~repro.instances.shm.ProblemRef`
    (attach the broadcast shared-memory payload, cached per process by
    content hash).
    """
    if isinstance(source, ProblemRef):
        return resolve_task_problem(source)
    key = repr(source)
    problem = _PROBLEM_CACHE.get(key)
    if problem is None:
        problem = source.generate()
        _PROBLEM_CACHE[key] = problem
    return problem


def _problem_source(spec: InstanceSpec, workers: "int | None"):
    """What shard tasks carry for ``spec``: a broadcast handle when the
    fan-out is real and the instance is big enough, the spec otherwise
    (a spec pickles smaller than any instance, so the legacy path keeps
    shipping the recipe and regenerating per worker).
    """
    if workers is None or workers <= 1 or not runtime_enabled():
        return spec
    payload = get_runtime().broadcast(_cached_problem(spec))
    return payload if isinstance(payload, ProblemRef) else spec


def label_key(name: str) -> int:
    """Stable 16-bit key from a method/movement label.

    Earlier revisions used the built-in ``hash``, whose per-process salt
    made replication results differ between interpreter runs; CRC32 is
    deterministic everywhere, so fixed seeds now mean fixed statistics.
    Shared by replication, sweeps, the study/figure harnesses and the
    benchmarks — one key rule, so labels mean the same stream everywhere.
    """
    return zlib.crc32(name.encode("utf-8")) & 0xFFFF


#: Backward-compatible alias (pre-PR-4 name).
_name_key = label_key


#: Backward-compatible aliases: the sharding and pool plumbing moved to
#: :mod:`repro.parallel`, shared with the multi-chain engine and the
#: scenario fleet so the three ``workers=`` layers cannot drift.
_seed_shards = seed_shards


def _standalone_run(task) -> list[tuple[float, float, float]]:
    """One (method, seed-shard) batch of stand-alone runs (picklable).

    The shard's placements are generated per seed on that seed's own
    generator, then measured as one batched candidate set — identical
    values to per-seed scalar evaluation (engine parity), one stacked
    pass instead of ``len(shard)``.
    """
    spec, method_name, fitness, engine, rng_keys = task
    problem = _cached_problem(spec)
    placements = []
    for key in rng_keys:
        rng = np.random.default_rng(key)
        placements.append(make_method(method_name).place(problem, rng))
    evaluator = Evaluator(problem, fitness, engine=engine)
    evaluations = evaluator.evaluate_many(placements)
    return [
        (float(e.giant_size), float(e.covered_clients), e.fitness)
        for e in evaluations
    ]


def _movement_run(task) -> list[tuple[float, float]]:
    """One (movement, seed-shard) lockstep portfolio (picklable).

    Chain ``i`` draws its initial placement and all proposals from the
    generator seeded with ``rng_keys[i]`` — exactly the serial per-chain
    loop's stream — so the per-seed results are bit-identical to running
    each seed through its own ``NeighborhoodSearch``.
    """
    from repro.core.solution import Placement

    spec, factory, n_candidates, max_phases, fitness, engine, rng_keys = task
    problem = _cached_problem(spec)
    rngs = [np.random.default_rng(key) for key in rng_keys]
    initials = [
        Placement.random(problem.grid, problem.n_routers, rng) for rng in rngs
    ]
    search = MultiChainSearch(
        factory(),
        n_candidates=n_candidates,
        max_phases=max_phases,
        stall_phases=None,
        engine=engine,
    )
    outcomes = search.run(problem, initials, rngs, fitness=fitness)
    return [
        (float(outcome.best.giant_size), float(outcome.best.covered_clients))
        for outcome in outcomes
    ]


_run_tasks = run_tasks

_ROW_FORMAT = "repro.replicate_row.v1"


def _rep_key(label: str, seed: int) -> str:
    """Checkpoint key of one (label, seed) row: readable + collision-free.

    The sanitized label is for humans; the CRC key (the same
    :func:`label_key` that seeds the row's generator) disambiguates
    labels that sanitize identically.  Seed-granular — never
    shard-granular — so a checkpoint written at one worker count resumes
    at any other.
    """
    safe = re.sub(r"[^A-Za-z0-9._-]+", "-", label).strip("-") or "label"
    return f"{safe}.{label_key(label):05d}-s{seed:03d}"


def _row_doc(label: str, seed: int, row) -> dict:
    return {
        "format": _ROW_FORMAT,
        "label": label,
        "seed": seed,
        "values": [float(value) for value in row],
    }


def _run_replication(
    run_fn,
    labels,
    make_task,
    n_seeds: int,
    workers: "int | None",
    policy: "RetryPolicy | None",
    store,
    report: "SupervisionReport | None",
) -> dict[str, list[tuple]]:
    """Shared supervised/checkpointed grid walk of both harnesses.

    ``make_task(label, seeds)`` builds the picklable shard task for any
    contiguous seed range — the same builder serves normal execution and
    the single-seed parity re-verification on resume.  Returns
    ``{label: rows-ordered-by-seed}``.
    """
    shards = _seed_shards(n_seeds, workers)
    entries = [
        (label, shard, [_rep_key(label, seed) for seed in shard])
        for label in labels
        for shard in shards
    ]
    restored = [
        index
        for index, (_, _, keys) in enumerate(entries)
        if store is not None and all(store.has(key) for key in keys)
    ]
    if restored:
        # Trust-but-verify: recompute one checkpointed row and assert it
        # matches its stored document exactly.
        label, shard, keys = entries[restored[0]]
        seed = shard.start
        row = run_fn(make_task(label, range(seed, seed + 1)))[0]
        store.verify_cell(keys[0], _row_doc(label, seed, row))
    pending = [i for i in range(len(entries)) if i not in set(restored)]

    def persist(position: int, rows) -> None:
        label, shard, keys = entries[pending[position]]
        for seed, key, row in zip(shard, keys, rows):
            store.save(key, _row_doc(label, seed, row))

    flat = _run_tasks(
        run_fn,
        [make_task(entries[i][0], entries[i][1]) for i in pending],
        workers,
        policy=policy,
        labels=[
            f"{label} seeds {shard.start}..{shard.stop - 1}"
            for label, shard, _ in (entries[i] for i in pending)
        ],
        on_shard=persist if store is not None else None,
        report=report,
    )
    rows_by_entry: dict[int, list] = {}
    offset = 0
    for position, index in enumerate(pending):
        shard = entries[index][1]
        rows_by_entry[index] = flat[offset : offset + len(shard)]
        offset += len(shard)
    for index in restored:
        rows_by_entry[index] = [
            tuple(store.load(key)["values"]) for key in entries[index][2]
        ]
    results: dict[str, list[tuple]] = {label: [] for label in labels}
    for index, (label, _, _) in enumerate(entries):
        results[label].extend(tuple(row) for row in rows_by_entry[index])
    return results


@dataclass(frozen=True)
class ReplicatedMetric:
    """Mean / standard deviation / extremes of one metric across seeds."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("a replicated metric needs at least one value")

    @property
    def n_seeds(self) -> int:
        """Number of replications."""
        return len(self.values)

    @property
    def mean(self) -> float:
        """Sample mean."""
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1; 0 for a single run)."""
        if len(self.values) < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def minimum(self) -> float:
        """Smallest observed value."""
        return float(min(self.values))

    @property
    def maximum(self) -> float:
        """Largest observed value."""
        return float(max(self.values))

    def __str__(self) -> str:
        return f"{self.mean:.1f} +/- {self.std:.1f}"


def replicate_standalone(
    spec: InstanceSpec,
    n_seeds: int = 10,
    methods: tuple[str, ...] = PAPER_METHOD_ORDER,
    fitness: FitnessFunction | None = None,
    workers: int | None = None,
    engine: str = "auto",
    policy: "RetryPolicy | None" = None,
    checkpoint: "str | None" = None,
    resume_from: "str | None" = None,
    report: "SupervisionReport | None" = None,
) -> dict[str, dict[str, ReplicatedMetric]]:
    """Stand-alone ad hoc results across seeds.

    Returns ``{method: {"giant": ..., "coverage": ..., "fitness": ...}}``.
    The instance is fixed (the spec's seed); only the methods' randomness
    varies, exactly like repeated planning runs on one deployment area.
    Every method's seed batch is evaluated in one stacked engine pass;
    with ``workers``, contiguous seed shards fan out over a process pool.
    RNG keys are computed here in the parent (see the module docstring),
    so the per-seed values are identical in every configuration.

    Execution is supervised (``policy``: retry/backoff/degradation, see
    :mod:`repro.resilience`); ``checkpoint`` persists each completed
    (method, seed) row and ``resume_from`` skips checkpointed rows
    after re-verifying one of them — semantics as on
    :meth:`repro.scenario.fleet.ScenarioFleet.run`.
    """
    if n_seeds <= 0:
        raise ValueError(f"n_seeds must be positive, got {n_seeds}")
    store = open_store(
        {
            "kind": "replicate-standalone",
            "spec": repr(spec),
            "n_seeds": n_seeds,
            "methods": list(methods),
            "fitness": repr(fitness) if fitness is not None else None,
            "engine": engine,
        },
        checkpoint=checkpoint,
        resume_from=resume_from,
    )

    source = _problem_source(spec, workers)

    def make_task(name, seeds):
        return (
            source,
            name,
            fitness,
            engine,
            [(spec.seed, label_key(name), seed) for seed in seeds],
        )

    by_label = _run_replication(
        _standalone_run,
        list(methods),
        make_task,
        n_seeds,
        workers,
        policy,
        store,
        report,
    )
    return {
        name: {
            "giant": ReplicatedMetric(tuple(row[0] for row in rows)),
            "coverage": ReplicatedMetric(tuple(row[1] for row in rows)),
            "fitness": ReplicatedMetric(tuple(row[2] for row in rows)),
        }
        for name, rows in by_label.items()
    }


def replicate_movements(
    spec: InstanceSpec,
    movements: dict[str, "type[MovementType] | None"] = None,
    n_seeds: int = 5,
    n_candidates: int = 16,
    max_phases: int = 30,
    fitness: FitnessFunction | None = None,
    workers: int | None = None,
    engine: str = "auto",
    policy: "RetryPolicy | None" = None,
    checkpoint: "str | None" = None,
    resume_from: "str | None" = None,
    report: "SupervisionReport | None" = None,
) -> dict[str, dict[str, ReplicatedMetric]]:
    """Final neighborhood-search giants across seeds, per movement.

    ``movements`` maps labels to zero-argument movement factories; the
    default compares the paper's Swap and Random movements.  Each label's
    seed chains advance in lockstep through one
    :class:`~repro.neighborhood.multichain.MultiChainSearch` portfolio
    (per-seed results bit-identical to the serial per-chain loop — see
    the module docstring for the RNG contract).  Each seed draws its own
    initial random placement, so the statistics cover both the start and
    the search randomness.  With ``workers``, contiguous seed shards of
    every portfolio fan out over a process pool — identical statistics,
    less wall-clock.

    Supervision and checkpoint/resume kwargs behave exactly as on
    :func:`replicate_standalone` (rows are checkpointed per (movement,
    seed); resume re-verifies one row).
    """
    from repro.neighborhood.movements import RandomMovement, SwapMovement

    if n_seeds <= 0:
        raise ValueError(f"n_seeds must be positive, got {n_seeds}")
    if movements is None:
        movements = {"Swap": SwapMovement, "Random": RandomMovement}
    labels = list(movements)
    store = open_store(
        {
            "kind": "replicate-movements",
            "spec": repr(spec),
            "n_seeds": n_seeds,
            "movements": labels,
            "n_candidates": n_candidates,
            "max_phases": max_phases,
            "fitness": repr(fitness) if fitness is not None else None,
            "engine": engine,
        },
        checkpoint=checkpoint,
        resume_from=resume_from,
    )

    source = _problem_source(spec, workers)

    def make_task(label, seeds):
        return (
            source,
            movements[label],
            n_candidates,
            max_phases,
            fitness,
            engine,
            [(spec.seed, label_key(label), seed) for seed in seeds],
        )

    by_label = _run_replication(
        _movement_run,
        labels,
        make_task,
        n_seeds,
        workers,
        policy,
        store,
        report,
    )
    return {
        label: {
            "giant": ReplicatedMetric(tuple(row[0] for row in rows)),
            "coverage": ReplicatedMetric(tuple(row[1] for row in rows)),
        }
        for label, rows in by_label.items()
    }


def format_replication(
    results: dict[str, dict[str, ReplicatedMetric]], title: str
) -> str:
    """Aligned text table of replicated metrics."""
    lines = [title]
    metric_names = list(next(iter(results.values())))
    header = f"{'name':12s}" + "".join(
        f"{metric:>20s}" for metric in metric_names
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, metrics in results.items():
        lines.append(
            f"{name:12s}"
            + "".join(f"{str(metrics[metric]):>20s}" for metric in metric_names)
        )
    return "\n".join(lines) + "\n"
