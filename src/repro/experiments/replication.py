"""Multi-seed replication of the paper's experiments.

The paper reports single runs.  A faithful reproduction should also show
that the claims are not seed artifacts, so this harness reruns the
stand-alone method comparison and the movement comparison across many
seeds and reports mean +/- standard deviation per metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adhoc.registry import PAPER_METHOD_ORDER, make_method
from repro.core.evaluation import Evaluator
from repro.core.fitness import FitnessFunction
from repro.instances.generator import InstanceSpec
from repro.neighborhood.movements import MovementType
from repro.neighborhood.search import NeighborhoodSearch

__all__ = [
    "ReplicatedMetric",
    "replicate_standalone",
    "replicate_movements",
    "format_replication",
]


@dataclass(frozen=True)
class ReplicatedMetric:
    """Mean / standard deviation / extremes of one metric across seeds."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("a replicated metric needs at least one value")

    @property
    def n_seeds(self) -> int:
        """Number of replications."""
        return len(self.values)

    @property
    def mean(self) -> float:
        """Sample mean."""
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1; 0 for a single run)."""
        if len(self.values) < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def minimum(self) -> float:
        """Smallest observed value."""
        return float(min(self.values))

    @property
    def maximum(self) -> float:
        """Largest observed value."""
        return float(max(self.values))

    def __str__(self) -> str:
        return f"{self.mean:.1f} +/- {self.std:.1f}"


def replicate_standalone(
    spec: InstanceSpec,
    n_seeds: int = 10,
    methods: tuple[str, ...] = PAPER_METHOD_ORDER,
    fitness: FitnessFunction | None = None,
) -> dict[str, dict[str, ReplicatedMetric]]:
    """Stand-alone ad hoc results across seeds.

    Returns ``{method: {"giant": ..., "coverage": ..., "fitness": ...}}``.
    The instance is fixed (the spec's seed); only the methods' randomness
    varies, exactly like repeated planning runs on one deployment area.
    """
    if n_seeds <= 0:
        raise ValueError(f"n_seeds must be positive, got {n_seeds}")
    problem = spec.generate()
    evaluator = Evaluator(problem, fitness)
    results: dict[str, dict[str, ReplicatedMetric]] = {}
    for name in methods:
        method = make_method(name)
        giants: list[float] = []
        coverages: list[float] = []
        fitness_values: list[float] = []
        for seed in range(n_seeds):
            rng = np.random.default_rng((spec.seed, hash(name) & 0xFFFF, seed))
            evaluation = evaluator.evaluate(method.place(problem, rng))
            giants.append(float(evaluation.giant_size))
            coverages.append(float(evaluation.covered_clients))
            fitness_values.append(evaluation.fitness)
        results[name] = {
            "giant": ReplicatedMetric(tuple(giants)),
            "coverage": ReplicatedMetric(tuple(coverages)),
            "fitness": ReplicatedMetric(tuple(fitness_values)),
        }
    return results


def replicate_movements(
    spec: InstanceSpec,
    movements: dict[str, "type[MovementType] | None"] = None,
    n_seeds: int = 5,
    n_candidates: int = 16,
    max_phases: int = 30,
    fitness: FitnessFunction | None = None,
) -> dict[str, dict[str, ReplicatedMetric]]:
    """Final neighborhood-search giants across seeds, per movement.

    ``movements`` maps labels to zero-argument movement factories; the
    default compares the paper's Swap and Random movements.  Each seed
    draws its own initial random placement, so the statistics cover both
    the start and the search randomness.
    """
    from repro.neighborhood.movements import RandomMovement, SwapMovement

    if n_seeds <= 0:
        raise ValueError(f"n_seeds must be positive, got {n_seeds}")
    if movements is None:
        movements = {"Swap": SwapMovement, "Random": RandomMovement}
    problem = spec.generate()
    results: dict[str, dict[str, ReplicatedMetric]] = {}
    for label, factory in movements.items():
        giants: list[float] = []
        coverages: list[float] = []
        for seed in range(n_seeds):
            rng = np.random.default_rng((spec.seed, hash(label) & 0xFFFF, seed))
            evaluator = Evaluator(problem, fitness)
            from repro.core.solution import Placement

            initial = Placement.random(problem.grid, problem.n_routers, rng)
            search = NeighborhoodSearch(
                factory(),
                n_candidates=n_candidates,
                max_phases=max_phases,
                stall_phases=None,
            )
            outcome = search.run(evaluator, initial, rng)
            giants.append(float(outcome.best.giant_size))
            coverages.append(float(outcome.best.covered_clients))
        results[label] = {
            "giant": ReplicatedMetric(tuple(giants)),
            "coverage": ReplicatedMetric(tuple(coverages)),
        }
    return results


def format_replication(
    results: dict[str, dict[str, ReplicatedMetric]], title: str
) -> str:
    """Aligned text table of replicated metrics."""
    lines = [title]
    metric_names = list(next(iter(results.values())))
    header = f"{'name':12s}" + "".join(
        f"{metric:>20s}" for metric in metric_names
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, metrics in results.items():
        lines.append(
            f"{name:12s}"
            + "".join(f"{str(metrics[metric]):>20s}" for metric in metric_names)
        )
    return "\n".join(lines) + "\n"
