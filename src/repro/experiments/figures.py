"""Figures 1-4: evolution curves.

* Figures 1-3 — "evolution of size of giant component" over GA
  generations, one curve per initializing ad hoc method, for the Normal,
  Exponential and Weibull instances.
* Figure 4 — "evolution of neighborhood search for Swap and Random
  movements": giant component size per search phase on the Normal
  instance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adhoc.registry import PAPER_METHOD_ORDER, make_method
from repro.core.evaluation import Evaluator
from repro.core.fitness import FitnessFunction
from repro.experiments.replication import label_key
from repro.experiments.config import ExperimentScale, current_scale
from repro.experiments.study import DistributionStudy, run_distribution_study
from repro.instances.catalog import paper_normal
from repro.instances.generator import InstanceSpec
from repro.neighborhood.movements import MovementType, RandomMovement, SwapMovement
from repro.neighborhood.search import NeighborhoodSearch

__all__ = [
    "Series",
    "FigureResult",
    "run_ga_figure",
    "run_ns_figure",
    "figure_from_study",
    "PAPER_GA_FIGURE_NUMBERS",
    "NS_FIGURE_NUMBER",
]

#: Which paper figure corresponds to which client distribution (GA study).
PAPER_GA_FIGURE_NUMBERS = {"normal": 1, "exponential": 2, "weibull": 3}

#: Figure number of the neighborhood search comparison.
NS_FIGURE_NUMBER = 4


@dataclass(frozen=True)
class Series:
    """One labelled curve: x (generations or phases) vs giant size."""

    label: str
    x: tuple[int, ...]
    giant_sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.giant_sizes):
            raise ValueError(
                f"series {self.label!r}: {len(self.x)} x-values vs "
                f"{len(self.giant_sizes)} y-values"
            )

    @property
    def final_giant(self) -> int:
        """Giant size at the end of the curve."""
        if not self.giant_sizes:
            raise ValueError(f"series {self.label!r} is empty")
        return self.giant_sizes[-1]

    def value_at(self, x: int) -> int:
        """Giant size at an exact x coordinate."""
        for xi, yi in zip(self.x, self.giant_sizes):
            if xi == x:
                return yi
        raise KeyError(f"series {self.label!r} has no point at x={x}")


@dataclass(frozen=True)
class FigureResult:
    """A regenerated figure: several series plus provenance."""

    figure_number: int
    title: str
    x_label: str
    series: tuple[Series, ...]
    spec: InstanceSpec
    scale_name: str
    seed: int

    def series_by_label(self, label: str) -> Series:
        """The curve with the given label."""
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"no series labelled {label!r}")

    def ranking_by_final_giant(self) -> list[str]:
        """Labels sorted by final giant size, best first."""
        return [
            series.label
            for series in sorted(
                self.series, key=lambda s: s.final_giant, reverse=True
            )
        ]


def figure_from_study(study: DistributionStudy) -> FigureResult:
    """The figure view of an initializer study."""
    all_series = tuple(
        Series(
            label=entry.method,
            x=tuple(generation for generation, _ in entry.series),
            giant_sizes=tuple(giant for _, giant in entry.series),
        )
        for entry in study.methods
    )
    spec = study.spec
    return FigureResult(
        figure_number=PAPER_GA_FIGURE_NUMBERS.get(study.distribution, 0),
        title=(
            f"Ad hoc methods initializing GA ({study.distribution} distribution "
            f"of client mesh nodes in {spec.width}x{spec.height} grid area)"
        ),
        x_label="nb generations",
        series=all_series,
        spec=spec,
        scale_name=study.scale_name,
        seed=study.seed,
    )


def run_ga_figure(
    distribution: str,
    scale: ExperimentScale | None = None,
    seed: int = 1,
    spec: InstanceSpec | None = None,
    fitness: FitnessFunction | None = None,
    methods: tuple[str, ...] = PAPER_METHOD_ORDER,
    engine: str = "auto",
) -> FigureResult:
    """Regenerate Figure 1, 2 or 3 (GA evolution per initializer)."""
    study = run_distribution_study(
        distribution,
        scale=scale,
        seed=seed,
        spec=spec,
        fitness=fitness,
        methods=methods,
        engine=engine,
    )
    return figure_from_study(study)


def run_ns_figure(
    scale: ExperimentScale | None = None,
    seed: int = 1,
    spec: InstanceSpec | None = None,
    fitness: FitnessFunction | None = None,
    movements: "dict[str, MovementType] | None" = None,
    engine: str = "auto",
) -> FigureResult:
    """Regenerate Figure 4 (neighborhood search, Swap vs Random).

    Both searches start from the same Random ad hoc placement on the
    Normal-distribution instance, exactly as in Section 5.2.2.
    """
    if scale is None:
        scale = current_scale()
    if spec is None:
        spec = paper_normal()
    problem = spec.generate()
    if movements is None:
        movements = {
            "Random": RandomMovement(),
            "Swap": SwapMovement(),
        }

    initial_rng = np.random.default_rng((seed, 4))
    initial = make_method("random").place(problem, initial_rng)

    all_series: list[Series] = []
    for label, movement in movements.items():
        # Stable CRC32 key (the salted builtin ``hash`` made Figure 4
        # irreproducible across interpreter runs).
        rng = np.random.default_rng((seed, label_key(label), 5))
        evaluator = Evaluator(problem, fitness, engine=engine)
        search = NeighborhoodSearch(
            movement=movement,
            n_candidates=scale.ns_candidates,
            max_phases=scale.ns_phases,
            stall_phases=None,
        )
        result = search.run(evaluator, initial, rng)
        all_series.append(
            Series(
                label=label,
                x=tuple(result.trace.phases),
                giant_sizes=tuple(result.trace.giant_sizes),
            )
        )
    return FigureResult(
        figure_number=NS_FIGURE_NUMBER,
        title=(
            "Evolution of neighborhood search for Swap and Random movements "
            f"({spec.width}x{spec.height} grid size)"
        ),
        x_label="nb phases",
        series=tuple(all_series),
        spec=spec,
        scale_name=scale.name,
        seed=seed,
    )
