"""Text rendering of regenerated tables and figures.

The harness prints the same rows and series the paper reports:
:func:`format_table` mirrors the Tables 1-3 layout,
:func:`format_figure` prints each figure's curves as aligned columns
(a terminal-friendly stand-in for the plots), and the CSV helpers feed
external plotting tools.
"""

from __future__ import annotations

import io

from repro.experiments.figures import FigureResult
from repro.experiments.tables import TableResult

__all__ = [
    "format_table",
    "format_figure",
    "table_to_csv",
    "figure_to_csv",
]

_METHOD_DISPLAY = {
    "random": "Random",
    "colleft": "ColLeft",
    "diag": "Diag",
    "cross": "Cross",
    "near": "Near",
    "corners": "Corners",
    "hotspot": "HotSpot",
}


def display_method(name: str) -> str:
    """Paper-style capitalization of a method name."""
    return _METHOD_DISPLAY.get(name, name)


def format_table(result: TableResult) -> str:
    """The paper's table layout as aligned text."""
    title_number = (
        f"Table {result.table_number}. " if result.table_number else ""
    )
    header = (
        f"{title_number}Values of size of giant component and user coverage\n"
        f"(client mesh nodes generated with {result.distribution.capitalize()} "
        f"distribution)\n"
        f"[instance: {result.spec.describe()}; scale={result.scale_name}, "
        f"seed={result.seed}]\n"
    )
    columns = [
        "Method",
        "Giant by GA",
        "Coverage by GA",
        "Giant standalone",
        "Coverage standalone",
    ]
    rows = [
        [
            display_method(row.method),
            str(row.giant_by_ga),
            str(row.coverage_by_ga),
            str(row.giant_standalone),
            str(row.coverage_standalone),
        ]
        for row in result.rows
    ]
    return header + _render_grid([columns] + rows)


def format_figure(result: FigureResult) -> str:
    """A figure's series as aligned columns (x + one column per curve)."""
    header = (
        f"Figure {result.figure_number}. {result.title}\n"
        f"[instance: {result.spec.describe()}; scale={result.scale_name}, "
        f"seed={result.seed}]\n"
    )
    labels = [series.label for series in result.series]
    columns = [result.x_label] + [display_method(label) for label in labels]
    # Union of x coordinates keeps curves of different lengths aligned.
    xs = sorted({x for series in result.series for x in series.x})
    lookup = {
        series.label: dict(zip(series.x, series.giant_sizes))
        for series in result.series
    }
    rows = []
    for x in xs:
        row = [str(x)]
        for label in labels:
            value = lookup[label].get(x)
            row.append("" if value is None else str(value))
        rows.append(row)
    return header + _render_grid([columns] + rows)


def table_to_csv(result: TableResult) -> str:
    """CSV form of a table (paper column order)."""
    buffer = io.StringIO()
    buffer.write(
        "method,giant_by_ga,coverage_by_ga,giant_standalone,coverage_standalone\n"
    )
    for row in result.rows:
        buffer.write(
            f"{row.method},{row.giant_by_ga},{row.coverage_by_ga},"
            f"{row.giant_standalone},{row.coverage_standalone}\n"
        )
    return buffer.getvalue()


def figure_to_csv(result: FigureResult) -> str:
    """CSV form of a figure (x column + one column per series)."""
    buffer = io.StringIO()
    labels = [series.label for series in result.series]
    buffer.write(",".join(["x"] + labels) + "\n")
    xs = sorted({x for series in result.series for x in series.x})
    lookup = {
        series.label: dict(zip(series.x, series.giant_sizes))
        for series in result.series
    }
    for x in xs:
        cells = [str(x)]
        for label in labels:
            value = lookup[label].get(x)
            cells.append("" if value is None else str(value))
        buffer.write(",".join(cells) + "\n")
    return buffer.getvalue()


def _render_grid(rows: list[list[str]]) -> str:
    """Align a list of string rows into fixed-width columns."""
    if not rows:
        return ""
    widths = [
        max(len(row[column]) for row in rows) for column in range(len(rows[0]))
    ]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines) + "\n"
