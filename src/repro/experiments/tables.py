"""Tables 1-3: ad hoc methods stand-alone and as GA initializers.

Each table reports, per ad hoc method, four numbers: the size of the
giant component and the user coverage achieved (a) by the GA initialized
with that method and (b) by the method used stand-alone.  Tables differ
only in the client distribution: Normal (Table 1), Exponential
(Table 2), Weibull (Table 3).

The underlying runs come from
:func:`repro.experiments.study.run_distribution_study`, which the figure
pipeline shares — Table *k* and Figure *k* are two views of the same GA
runs, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fitness import FitnessFunction
from repro.experiments.config import ExperimentScale
from repro.experiments.study import DistributionStudy, run_distribution_study
from repro.instances.generator import InstanceSpec

__all__ = ["TableRow", "TableResult", "run_table", "table_from_study", "PAPER_TABLE_NUMBERS"]

#: Which paper table corresponds to which client distribution.
PAPER_TABLE_NUMBERS = {"normal": 1, "exponential": 2, "weibull": 3}


@dataclass(frozen=True)
class TableRow:
    """One method's line in a table (paper column order)."""

    method: str
    giant_by_ga: int
    coverage_by_ga: int
    giant_standalone: int
    coverage_standalone: int

    def as_dict(self) -> dict:
        """Plain-dict form for serialization and reporting."""
        return {
            "method": self.method,
            "giant_by_ga": self.giant_by_ga,
            "coverage_by_ga": self.coverage_by_ga,
            "giant_standalone": self.giant_standalone,
            "coverage_standalone": self.coverage_standalone,
        }


@dataclass(frozen=True)
class TableResult:
    """A regenerated table plus its provenance."""

    distribution: str
    table_number: int
    rows: tuple[TableRow, ...]
    spec: InstanceSpec
    scale_name: str
    seed: int

    def row(self, method: str) -> TableRow:
        """The row for a given method name."""
        for row in self.rows:
            if row.method == method:
                return row
        raise KeyError(f"no row for method {method!r}")

    def best_ga_method(self) -> str:
        """The initializer achieving the largest giant component by GA."""
        return max(self.rows, key=lambda row: row.giant_by_ga).method


def table_from_study(study: DistributionStudy) -> TableResult:
    """The table view of an initializer study."""
    rows = tuple(
        TableRow(
            method=entry.method,
            giant_by_ga=entry.giant_by_ga,
            coverage_by_ga=entry.coverage_by_ga,
            giant_standalone=entry.giant_standalone,
            coverage_standalone=entry.coverage_standalone,
        )
        for entry in study.methods
    )
    return TableResult(
        distribution=study.distribution,
        table_number=PAPER_TABLE_NUMBERS.get(study.distribution, 0),
        rows=rows,
        spec=study.spec,
        scale_name=study.scale_name,
        seed=study.seed,
    )


def run_table(
    distribution: str,
    scale: ExperimentScale | None = None,
    seed: int = 1,
    spec: InstanceSpec | None = None,
    fitness: FitnessFunction | None = None,
) -> TableResult:
    """Regenerate the paper table for the given client distribution.

    ``seed`` controls the algorithms' randomness (the instance itself is
    fixed by the catalog spec, mirroring "an instance in which 64 routers
    are to be placed ...").
    """
    study = run_distribution_study(
        distribution, scale=scale, seed=seed, spec=spec, fitness=fitness
    )
    return table_from_study(study)
