"""Experiment harness (paper Section 5).

Regenerates every table and figure of the paper's evaluation: the scale
configuration, the table and figure pipelines, text/CSV reporting and
the run-everything entry point.
"""

from repro.experiments.config import (
    ExperimentScale,
    PAPER_SCALE,
    QUICK_SCALE,
    current_scale,
)
from repro.experiments.figures import (
    FigureResult,
    NS_FIGURE_NUMBER,
    PAPER_GA_FIGURE_NUMBERS,
    Series,
    run_ga_figure,
    run_ns_figure,
)
from repro.experiments.reporting import (
    figure_to_csv,
    format_figure,
    format_table,
    table_to_csv,
)
from repro.experiments.analysis import (
    area_under_curve,
    crossover_points,
    effort_to_reach,
    speed_summary,
)
from repro.experiments.replication import (
    ReplicatedMetric,
    format_replication,
    replicate_movements,
    replicate_standalone,
)
from repro.experiments.runner import ReproductionReport, run_all
from repro.experiments.sweeps import (
    SweepPoint,
    SweepResult,
    format_sweep,
    sweep_radio_range,
    sweep_router_count,
)
from repro.experiments.study import (
    DistributionStudy,
    MethodStudy,
    run_distribution_study,
)
from repro.experiments.tables import (
    PAPER_TABLE_NUMBERS,
    TableResult,
    TableRow,
    run_table,
)

__all__ = [
    "ExperimentScale",
    "PAPER_SCALE",
    "QUICK_SCALE",
    "current_scale",
    "FigureResult",
    "NS_FIGURE_NUMBER",
    "PAPER_GA_FIGURE_NUMBERS",
    "Series",
    "run_ga_figure",
    "run_ns_figure",
    "figure_to_csv",
    "format_figure",
    "format_table",
    "table_to_csv",
    "area_under_curve",
    "crossover_points",
    "effort_to_reach",
    "speed_summary",
    "ReplicatedMetric",
    "format_replication",
    "replicate_movements",
    "replicate_standalone",
    "ReproductionReport",
    "run_all",
    "SweepPoint",
    "SweepResult",
    "format_sweep",
    "sweep_radio_range",
    "sweep_router_count",
    "DistributionStudy",
    "MethodStudy",
    "run_distribution_study",
    "PAPER_TABLE_NUMBERS",
    "TableResult",
    "TableRow",
    "run_table",
]
