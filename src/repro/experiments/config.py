"""Experiment scales.

The paper's runs use roughly 800 GA generations and 60+ neighborhood
search phases on the 64-router instance.  Regenerating every table and
figure at that scale takes minutes; CI and `pytest benchmarks/` need
seconds.  :class:`ExperimentScale` captures the knobs, and
:func:`current_scale` picks the scale from the ``REPRO_SCALE``
environment variable (``quick`` by default, ``paper`` for full runs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import envgates

__all__ = ["ExperimentScale", "QUICK_SCALE", "PAPER_SCALE", "current_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Effort knobs shared by all experiments."""

    name: str
    #: GA population size.
    population_size: int
    #: GA generations (Figures 1-3 run to ~800 in the paper).
    n_generations: int
    #: Neighborhood search phases (Figure 4 runs to ~61).
    ns_phases: int
    #: Neighbor candidates sampled per phase (Algorithm 2).
    ns_candidates: int
    #: Every how many generations a figure series samples a point.
    record_step: int

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError(
                f"population_size must be >= 2, got {self.population_size}"
            )
        if self.n_generations <= 0:
            raise ValueError(
                f"n_generations must be positive, got {self.n_generations}"
            )
        if self.ns_phases <= 0:
            raise ValueError(f"ns_phases must be positive, got {self.ns_phases}")
        if self.ns_candidates <= 0:
            raise ValueError(
                f"ns_candidates must be positive, got {self.ns_candidates}"
            )
        if self.record_step <= 0:
            raise ValueError(f"record_step must be positive, got {self.record_step}")


#: Fast setting for CI / default bench runs (minutes for everything).
QUICK_SCALE = ExperimentScale(
    name="quick",
    population_size=24,
    n_generations=80,
    ns_phases=40,
    ns_candidates=32,
    record_step=5,
)

#: Paper-faithful setting (Figures 1-3 to 800 generations).
PAPER_SCALE = ExperimentScale(
    name="paper",
    population_size=64,
    n_generations=800,
    ns_phases=64,
    ns_candidates=128,
    record_step=20,
)

_SCALES = {scale.name: scale for scale in (QUICK_SCALE, PAPER_SCALE)}


def current_scale(default: str = "quick") -> ExperimentScale:
    """The scale selected by ``REPRO_SCALE`` (falling back to ``default``)."""
    name = envgates.scale_name(default)
    try:
        return _SCALES[name]
    except KeyError:
        known = ", ".join(sorted(_SCALES))
        raise ValueError(f"unknown REPRO_SCALE {name!r}; known: {known}") from None
