"""Convergence analysis of evolution curves.

For the neighborhood search "the interest is to see *how fast* (in terms
of phases of neighborhood search exploration) is achieved a good
connectivity of the network" (paper, Section 1).  This module turns
traces and figure series into exactly those speed metrics: effort to
reach a connectivity target, area under the curve and curve crossovers.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.figures import FigureResult, Series

__all__ = [
    "effort_to_reach",
    "area_under_curve",
    "crossover_points",
    "speed_summary",
]


def effort_to_reach(series: Series, target: int) -> int | None:
    """First x value (generations/phases) where the curve hits ``target``.

    ``None`` when the curve never reaches the target — the caller decides
    whether that means "failed" or "needs a longer budget".
    """
    for x, giant in zip(series.x, series.giant_sizes):
        if giant >= target:
            return x
    return None


def area_under_curve(series: Series) -> float:
    """Trapezoidal area under the giant-size curve, normalized by span.

    A scale-free "average giant size over the run": two curves with the
    same endpoints but different climb speeds separate clearly.
    """
    if len(series.x) < 2:
        return float(series.giant_sizes[0]) if series.x else 0.0
    area = 0.0
    for (x0, y0), (x1, y1) in zip(
        zip(series.x, series.giant_sizes),
        zip(series.x[1:], series.giant_sizes[1:]),
    ):
        area += (x1 - x0) * (y0 + y1) / 2.0
    span = series.x[-1] - series.x[0]
    return area / span if span else float(series.giant_sizes[-1])


def crossover_points(a: Series, b: Series) -> list[int]:
    """The x values where the sign of ``a - b`` changes.

    Only x coordinates shared by both series are compared (the series of
    one figure share their sampling grid).
    """
    shared = sorted(set(a.x) & set(b.x))
    if not shared:
        return []
    lookup_a = dict(zip(a.x, a.giant_sizes))
    lookup_b = dict(zip(b.x, b.giant_sizes))
    crossings: list[int] = []
    previous_sign = 0
    for x in shared:
        diff = lookup_a[x] - lookup_b[x]
        sign = (diff > 0) - (diff < 0)
        if sign != 0 and previous_sign != 0 and sign != previous_sign:
            crossings.append(x)
        if sign != 0:
            previous_sign = sign
    return crossings


def speed_summary(
    figure: FigureResult, targets: Sequence[float] = (0.5, 0.75)
) -> str:
    """Text table: per curve, effort to reach each connectivity target.

    Targets are fractions of the fleet (0.5 = half the routers in the
    giant component).
    """
    n = figure.spec.n_routers
    header = f"{'series':12s} {'AUC':>8s}" + "".join(
        f"{f'x@{int(t * 100)}%':>10s}" for t in targets
    )
    lines = [header, "-" * len(header)]
    for series in figure.series:
        cells = [f"{series.label:12s}", f"{area_under_curve(series):8.1f}"]
        for target in targets:
            effort = effort_to_reach(series, int(target * n))
            cells.append(f"{'-' if effort is None else effort:>10}")
        lines.append(" ".join(cells))
    return "\n".join(lines) + "\n"
