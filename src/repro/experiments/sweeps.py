"""Parameter sweeps around the paper's operating point.

The paper evaluates one frame (64 routers, 128x128, 192 clients, one
radio interval).  These sweeps ask how its conclusions scale: what
happens to stand-alone quality and to the Swap-vs-Random gap when the
fleet grows, when radios strengthen or when the client population
thickens.  Each sweep reruns a compact version of the relevant
experiment per parameter value.

Each point's Swap and Random searches run as best-of-``n_restarts``
portfolios on the lockstep engine
(:class:`~repro.neighborhood.multichain.MultiStartSearch`): restart
chains advance together through one stacked evaluation per phase, so
raising ``n_restarts`` costs far less than proportional wall-clock.
Search seeds derive from stable CRC32 label keys (the salted builtin
``hash`` of earlier revisions made sweep values irreproducible across
interpreter runs).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.adhoc.registry import make_method
from repro.core.evaluation import Evaluator
from repro.experiments.config import ExperimentScale, current_scale
from repro.experiments.replication import label_key
from repro.instances.generator import InstanceSpec
from repro.neighborhood.movements import RandomMovement, SwapMovement
from repro.neighborhood.multichain import MultiStartSearch

__all__ = ["SweepPoint", "SweepResult", "sweep_router_count", "sweep_radio_range", "format_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """Outcome at one parameter value."""

    parameter: float
    standalone_giant: int
    swap_giant: int
    random_giant: int
    swap_coverage: int

    def as_dict(self) -> dict:
        """Plain-dict form for serialization and reporting."""
        return {
            "parameter": self.parameter,
            "standalone_giant": self.standalone_giant,
            "swap_giant": self.swap_giant,
            "random_giant": self.random_giant,
            "swap_coverage": self.swap_coverage,
        }


@dataclass(frozen=True)
class SweepResult:
    """A named sweep: one point per parameter value."""

    parameter_name: str
    points: tuple[SweepPoint, ...]
    base_spec: InstanceSpec
    scale_name: str
    seed: int

    def parameters(self) -> list[float]:
        """The swept parameter values, in run order."""
        return [point.parameter for point in self.points]


def _measure_point(
    spec: InstanceSpec,
    parameter: float,
    scale: ExperimentScale,
    seed: int,
    n_restarts: int,
    engine: str = "auto",
) -> SweepPoint:
    """Stand-alone + best-of-restarts Swap/Random searches on one instance."""
    problem = spec.generate()
    parameter_key = int(parameter * 1000) & 0xFFFF
    rng = np.random.default_rng((seed, parameter_key))
    standalone = Evaluator(problem, engine=engine).evaluate(
        make_method("random").place(problem, rng)
    )
    outcomes = {}
    for label, movement in (
        ("swap", SwapMovement),
        ("random", RandomMovement),
    ):
        search = MultiStartSearch(
            movement,
            n_restarts=n_restarts,
            n_candidates=scale.ns_candidates,
            max_phases=scale.ns_phases,
            stall_phases=None,
            engine=engine,
        )
        outcome = search.run(
            problem, seed=(seed, label_key(label), parameter_key)
        )
        outcomes[label] = outcome.best_evaluation
    return SweepPoint(
        parameter=parameter,
        standalone_giant=standalone.giant_size,
        swap_giant=outcomes["swap"].giant_size,
        random_giant=outcomes["random"].giant_size,
        swap_coverage=outcomes["swap"].covered_clients,
    )


def sweep_router_count(
    base_spec: InstanceSpec,
    counts: Sequence[int] = (16, 32, 64, 96),
    scale: ExperimentScale | None = None,
    seed: int = 1,
    n_restarts: int = 1,
    engine: str = "auto",
) -> SweepResult:
    """How fleet size changes the picture (paper fixes N = 64).

    ``n_restarts`` widens each point's search into a best-of-``R``
    lockstep portfolio per movement (default 1 keeps the historical
    single-run cost).
    """
    if scale is None:
        scale = current_scale()
    if not counts:
        raise ValueError("counts must not be empty")
    if n_restarts <= 0:
        raise ValueError(f"n_restarts must be positive, got {n_restarts}")
    points = []
    for count in counts:
        if count <= 0:
            raise ValueError(f"router counts must be positive, got {count}")
        spec = replace(base_spec, n_routers=int(count))
        points.append(
            _measure_point(spec, float(count), scale, seed, n_restarts, engine)
        )
    return SweepResult(
        parameter_name="n_routers",
        points=tuple(points),
        base_spec=base_spec,
        scale_name=scale.name,
        seed=seed,
    )


def sweep_radio_range(
    base_spec: InstanceSpec,
    max_radii: Sequence[float] = (4.0, 7.0, 10.0, 14.0),
    scale: ExperimentScale | None = None,
    seed: int = 1,
    n_restarts: int = 1,
    engine: str = "auto",
) -> SweepResult:
    """How radio strength changes the picture (the oscillation ceiling)."""
    if scale is None:
        scale = current_scale()
    if not max_radii:
        raise ValueError("max_radii must not be empty")
    if n_restarts <= 0:
        raise ValueError(f"n_restarts must be positive, got {n_restarts}")
    points = []
    for max_radius in max_radii:
        if max_radius < base_spec.min_radius:
            raise ValueError(
                f"max radius {max_radius} below the spec's min radius "
                f"{base_spec.min_radius}"
            )
        spec = replace(base_spec, max_radius=float(max_radius))
        points.append(
            _measure_point(spec, float(max_radius), scale, seed, n_restarts, engine)
        )
    return SweepResult(
        parameter_name="max_radius",
        points=tuple(points),
        base_spec=base_spec,
        scale_name=scale.name,
        seed=seed,
    )


def format_sweep(result: SweepResult) -> str:
    """Aligned text table of a sweep."""
    header = (
        f"{result.parameter_name:>12s} {'alone':>7s} {'swap':>6s} "
        f"{'random':>7s} {'swap-cov':>9s}"
    )
    lines = [
        f"sweep over {result.parameter_name} "
        f"(base: {result.base_spec.describe()})",
        header,
        "-" * len(header),
    ]
    for point in result.points:
        lines.append(
            f"{point.parameter:12g} {point.standalone_giant:7d} "
            f"{point.swap_giant:6d} {point.random_giant:7d} "
            f"{point.swap_coverage:9d}"
        )
    return "\n".join(lines) + "\n"
