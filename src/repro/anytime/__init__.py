"""Deadline-aware anytime execution.

The neighborhood searches are naturally *anytime*: they hold a valid
incumbent at every phase boundary, so stopping early always yields a
well-formed result.  This package supplies the missing harness:

- :mod:`repro.anytime.deadline` — a cooperative cancellation protocol
  built on monotonic (or simulated) clocks: :class:`Deadline`,
  :class:`CancelToken`, and the clock implementations.
- :mod:`repro.anytime.live` — :class:`LiveRunner`, an event loop over
  the scenario subsystem with per-event response SLAs, a degradation
  ladder that sheds load under pressure, and :class:`LiveReport`
  latency/regret accounting.
"""

from repro.anytime.deadline import (
    CancelToken,
    Clock,
    Deadline,
    MonotonicClock,
    SimulatedClock,
    SteppingClock,
)
from repro.anytime.live import (
    LadderRung,
    LiveEvent,
    LiveReport,
    LiveRunner,
    DEFAULT_LADDER,
)

__all__ = [
    "CancelToken",
    "Clock",
    "Deadline",
    "MonotonicClock",
    "SimulatedClock",
    "SteppingClock",
    "LadderRung",
    "LiveEvent",
    "LiveReport",
    "LiveRunner",
    "DEFAULT_LADDER",
]
