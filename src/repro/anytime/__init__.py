"""Deadline-aware anytime execution.

The neighborhood searches are naturally *anytime*: they hold a valid
incumbent at every phase boundary, so stopping early always yields a
well-formed result.  This package supplies the missing harness:

- :mod:`repro.anytime.deadline` — a cooperative cancellation protocol
  built on monotonic (or simulated) clocks: :class:`Deadline`,
  :class:`CancelToken`, and the clock implementations.
- :mod:`repro.anytime.live` — :class:`LiveRunner`, an event loop over
  the scenario subsystem with per-event response SLAs, a degradation
  ladder that sheds load under pressure, and :class:`LiveReport`
  latency/regret accounting.

The ``live`` names are imported lazily (:pep:`562`): ``live`` pulls in
the scenario and solver layers, which themselves time their phases
through :data:`repro.anytime.deadline.DEFAULT_CLOCK` — an eager import
here would make that a cycle.
"""

from repro.anytime.deadline import (
    DEFAULT_CLOCK,
    CancelToken,
    Clock,
    Deadline,
    MonotonicClock,
    SimulatedClock,
    SteppingClock,
)

_LIVE_NAMES = frozenset(
    {"LadderRung", "LiveEvent", "LiveReport", "LiveRunner", "DEFAULT_LADDER"}
)

__all__ = [
    "CancelToken",
    "Clock",
    "DEFAULT_CLOCK",
    "Deadline",
    "MonotonicClock",
    "SimulatedClock",
    "SteppingClock",
    "LadderRung",
    "LiveEvent",
    "LiveReport",
    "LiveRunner",
    "DEFAULT_LADDER",
]


def __getattr__(name):
    if name in _LIVE_NAMES:
        from repro.anytime import live

        return getattr(live, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _LIVE_NAMES)
