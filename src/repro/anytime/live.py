"""Live re-optimization under per-event latency SLAs.

:class:`LiveRunner` is the online counterpart of
:class:`~repro.scenario.runner.ScenarioRunner`: the same unfolded
perturbation steps, but arriving as *events* on a clock — one every
``interval`` seconds — each with a response SLA.  The runner keeps a
live incumbent (warm starts + :class:`~repro.core.engine.handoff.IncumbentCache`
handoff, exactly the scenario runner's layout) and bounds every
re-optimization with a cooperative :class:`~repro.anytime.deadline.Deadline`
so the response ships by its SLA with whatever best-so-far the solver
holds.

Under load — when solving one event pushes the runner past the next
arrivals — a **degradation ladder** sheds work instead of queueing
without bound: mild lag shrinks the per-phase candidate budget, heavier
lag shrinks restart chains and the phase budget, and saturation skips to
the latest arrived event, *coalescing* the skipped perturbations into
one warm-start carry.  Every rung decision, shed event and response
latency lands in the :class:`LiveReport`.

Two clock modes:

* **Real clock** (default, ``seconds_per_evaluation=None``): solve
  durations are measured wall-clock and solver deadlines run on the
  monotonic clock — the latency numbers in ``BENCH_live_sla.json``.
* **Simulated clock** (``seconds_per_evaluation`` set): each solve is
  *charged* ``n_evaluations * seconds_per_evaluation`` on a
  :class:`~repro.anytime.deadline.SimulatedClock`, making the entire
  run — lag, ladder rungs, shedding, latencies — a pure function of
  the seed.  A simulated-clock run with no deadline pressure is
  bit-identical to the plain :class:`ScenarioRunner` walk (asserted by
  the bench and the tests/anytime suite).
"""

from __future__ import annotations

import dataclasses
import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.anytime.deadline import (
    DEFAULT_CLOCK,
    Clock,
    Deadline,
    MonotonicClock,
    SimulatedClock,
)
from repro.parallel import (
    get_runtime,
    resolve_task_problem,
    run_tasks,
    runtime_enabled,
)
from repro.scenario.runner import _cache_tracking, _validate_budgets
from repro.scenario.scenario import Scenario, ScenarioStep
from repro.seeding import root_sequence, spawn_children
from repro.solvers.base import SolveResult, Solver

if TYPE_CHECKING:
    from repro.scenario.runner import ScenarioResult

__all__ = [
    "LadderRung",
    "DEFAULT_LADDER",
    "LiveEvent",
    "LiveReport",
    "LiveRunner",
]


@dataclass(frozen=True)
class LadderRung:
    """One degradation rung, selected by the lag/SLA ratio.

    A rung applies while ``lag / sla <= max_lag_ratio`` (the first
    matching rung wins; the last rung should be ``inf`` to catch
    saturation).  ``candidate_scale`` shrinks per-phase candidate
    sampling (``n_candidates`` / ``moves_per_phase``), ``chain_scale``
    shrinks restart portfolios (``n_restarts``), ``budget_scale``
    shrinks the per-event phase budget, and ``coalesce`` allows
    skipping to the latest arrived event, composing the skipped
    perturbations' placement carries.  All scales clamp at 1 unit —
    a rung can never scale a knob to zero.
    """

    name: str
    max_lag_ratio: float
    candidate_scale: float = 1.0
    chain_scale: float = 1.0
    budget_scale: float = 1.0
    coalesce: bool = False

    def __post_init__(self) -> None:
        for label, scale in (
            ("candidate_scale", self.candidate_scale),
            ("chain_scale", self.chain_scale),
            ("budget_scale", self.budget_scale),
        ):
            if not 0.0 < scale <= 1.0:
                raise ValueError(f"{label} must be in (0, 1], got {scale}")


#: The default ladder: no pressure runs untouched; mild lag halves the
#: candidate budget; lag near one SLA also halves chains and phases;
#: saturation coalesces to the latest event at a quarter budget.
DEFAULT_LADDER: tuple[LadderRung, ...] = (
    LadderRung("full", max_lag_ratio=0.25),
    LadderRung("shrink-candidates", max_lag_ratio=0.75, candidate_scale=0.5),
    LadderRung(
        "shrink-chains",
        max_lag_ratio=1.5,
        candidate_scale=0.5,
        chain_scale=0.5,
        budget_scale=0.5,
    ),
    LadderRung(
        "coalesce",
        max_lag_ratio=math.inf,
        candidate_scale=0.25,
        chain_scale=0.5,
        budget_scale=0.25,
        coalesce=True,
    ),
)


def _select_rung(ladder: Sequence[LadderRung], lag_ratio: float) -> LadderRung:
    for rung in ladder:
        if lag_ratio <= rung.max_lag_ratio:
            return rung
    return ladder[-1]


#: Solver knobs each scale family touches (only the attributes a given
#: adapter actually has are scaled).
_CANDIDATE_KNOBS = ("n_candidates", "moves_per_phase")
_CHAIN_KNOBS = ("n_restarts",)


@contextmanager
def _scaled_solver(solver: Solver, rung: LadderRung):
    """Temporarily shrink a solver's effort knobs for one event.

    Mirrors the scenario runner's ``_cache_tracking`` discipline: the
    prior values are restored whatever happens, so a caller-owned
    solver never keeps a rung's downscaling as a lasting side effect.
    """
    prior: dict[str, int] = {}
    try:
        for scale, names in (
            (rung.candidate_scale, _CANDIDATE_KNOBS),
            (rung.chain_scale, _CHAIN_KNOBS),
        ):
            if scale >= 1.0:
                continue
            for name in names:
                value = getattr(solver, name, None)
                if isinstance(value, int) and value > 1:
                    prior[name] = value
                    setattr(solver, name, max(1, int(value * scale)))
        yield
    finally:
        for name, value in prior.items():
            setattr(solver, name, value)


#: Worker request used by the offload path.  ``run_supervised`` treats
#: ``workers <= 1`` as "run in-process", so the single-event solve asks
#: for 2; the persistent pool then sizes itself to the actual task count
#: (:func:`repro.parallel.effective_pool_size` → one process).
_OFFLOAD_WORKERS = 2


def _solve_offloaded(task):
    """Pool-side solve of one live event (the ``offload=True`` path).

    The task carries everything a worker needs to reproduce the
    in-process solve bit-for-bit: the solver (with its *unscaled*
    knobs), the problem payload (a broadcast handle or the instance
    itself), the event's seed/budget/warm start, and the rung plus
    deadline budget to re-derive the solver deadline locally.  The
    deadline is rebuilt on a worker-local clock: a fresh
    :class:`~repro.anytime.deadline.SimulatedClock` never advances
    mid-solve — exactly like the parent's, which only advances *between*
    solves — and a fresh monotonic deadline counts from solve start just
    as the parent's did.  The incumbent cache is a same-process perf
    hint (never a result change — the handoff parity tests), so it is
    neither shipped nor returned.
    """
    (
        solver,
        problem,
        seed,
        budget,
        warm_start,
        engine,
        fitness,
        solve_budget,
        simulated,
        rung,
    ) = task
    problem = resolve_task_problem(problem)
    clock = SimulatedClock() if simulated else MonotonicClock()
    event_deadline = Deadline.after(solve_budget, clock=clock)
    with _scaled_solver(solver, rung):
        result = solver.solve(
            problem,
            seed=seed,
            budget=budget,
            warm_start=warm_start,
            engine=engine,
            fitness=fitness,
            engine_cache=None,
            deadline=event_deadline,
        )
    return (dataclasses.replace(result, engine_cache=None),)


@dataclass(frozen=True)
class LiveEvent:
    """One event's live outcome (or its shedding record).

    ``arrival``/``started``/``finished`` are seconds on the run's
    timeline (0 = run start).  A *shed* event (``shed=True``) was never
    solved: the saturation rung coalesced it into event
    ``coalesced_into``, whose warm start absorbed this event's
    perturbation carry.  For responded events ``latency`` is
    ``finished - arrival`` — the per-event response time the SLA
    bounds — and ``result`` is the solver's (possibly
    deadline-truncated) outcome.
    """

    index: int
    event: str
    arrival: float
    rung: str
    queue_depth: int
    shed: bool = False
    coalesced_into: "int | None" = None
    started: float = 0.0
    finished: float = 0.0
    result: "SolveResult | None" = field(default=None, compare=False)

    @property
    def latency(self) -> float:
        """Response latency in seconds (0 for shed events)."""
        return self.finished - self.arrival if not self.shed else 0.0

    @property
    def deadline_hit(self) -> bool:
        """Whether the solve was cut short by its deadline."""
        return self.result is not None and self.result.stopped_by is not None


@dataclass(frozen=True)
class LiveReport:
    """The SLA account of one live run."""

    scenario_name: str
    solver_name: str
    sla: float
    interval: float
    events: tuple[LiveEvent, ...]
    seed: "int | tuple | None" = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.events:
            raise ValueError("a live report needs at least one event")

    # ------------------------------------------------------------------
    # Event views
    # ------------------------------------------------------------------

    @property
    def responded(self) -> tuple[LiveEvent, ...]:
        """Events that produced a response (shed events excluded)."""
        return tuple(event for event in self.events if not event.shed)

    @property
    def shed_count(self) -> int:
        """Events coalesced away by the saturation rung."""
        return sum(1 for event in self.events if event.shed)

    @property
    def deadline_hits(self) -> int:
        """Responses whose solve was stopped by its deadline."""
        return sum(1 for event in self.responded if event.deadline_hit)

    def rung_counts(self) -> dict[str, int]:
        """How often each ladder rung fired, in first-seen order."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.rung] = counts.get(event.rung, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Latency statistics
    # ------------------------------------------------------------------

    def latencies(self) -> list[float]:
        """Response latencies of the responded events, in event order."""
        return [event.latency for event in self.responded]

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile response latency (q in [0, 100])."""
        return float(np.percentile(self.latencies(), q))

    @property
    def p50_latency(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p95_latency(self) -> float:
        return self.latency_percentile(95.0)

    def sla_violations(self) -> int:
        """Responded events whose latency exceeded the SLA."""
        return sum(1 for event in self.responded if event.latency > self.sla)

    def max_queue_depth(self) -> int:
        """Deepest backlog observed when starting any event."""
        return max(event.queue_depth for event in self.events)

    # ------------------------------------------------------------------
    # Quality statistics
    # ------------------------------------------------------------------

    def mean_fitness(self) -> float:
        """Mean best fitness over the responded events."""
        return float(
            np.mean([event.result.best.fitness for event in self.responded])
        )

    def regret_curve(self, baseline: "ScenarioResult") -> list[tuple[int, float]]:
        """Per-event fitness regret against an unbounded baseline run.

        ``baseline`` is the plain :class:`~repro.scenario.runner.ScenarioRunner`
        outcome on the same scenario and seed (no deadlines, no
        shedding).  Each responded event contributes
        ``baseline_fitness - live_fitness`` at its step index; shed
        events have no response to compare.
        """
        by_step = {step.index: step.result for step in baseline.steps}
        curve: list[tuple[int, float]] = []
        for event in self.responded:
            reference = by_step.get(event.index)
            if reference is None:
                continue
            curve.append(
                (event.index, reference.best.fitness - event.result.best.fitness)
            )
        return curve

    def mean_regret(self, baseline: "ScenarioResult") -> float:
        """Mean per-event fitness regret versus the unbounded baseline."""
        curve = self.regret_curve(baseline)
        if not curve:
            return 0.0
        return float(np.mean([regret for _, regret in curve]))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def timeline(self) -> list[dict]:
        """Per-event records for rendering (shed events included)."""
        rows = []
        for event in self.events:
            row = {
                "step": event.index,
                "event": event.event,
                "arrival": event.arrival,
                "rung": event.rung,
                "queue_depth": event.queue_depth,
                "shed": event.shed,
                "coalesced_into": event.coalesced_into,
                "latency": event.latency,
                "sla_met": (not event.shed) and event.latency <= self.sla,
                "stopped_by": (
                    event.result.stopped_by if event.result is not None else None
                ),
            }
            if event.result is not None:
                best = event.result.best
                row.update(
                    {
                        "giant": best.giant_size,
                        "n_routers": best.metrics.n_routers,
                        "coverage": best.covered_clients,
                        "n_clients": best.metrics.n_clients,
                        "fitness": best.fitness,
                        "phases": event.result.n_phases,
                        "evaluations": event.result.n_evaluations,
                        "warm": event.result.warm_started,
                    }
                )
            rows.append(row)
        return rows

    def summary(self) -> str:
        """One-line account of the run's SLA performance."""
        responded = self.responded
        return (
            f"[live {self.scenario_name} / {self.solver_name}] "
            f"{len(self.events)} events, {len(responded)} responded, "
            f"{self.shed_count} shed, {self.deadline_hits} deadline hit(s), "
            f"p50 {self.p50_latency * 1e3:.1f}ms / "
            f"p95 {self.p95_latency * 1e3:.1f}ms vs SLA "
            f"{self.sla * 1e3:.1f}ms, {self.sla_violations()} violation(s), "
            f"mean fitness {self.mean_fitness():.4f}"
        )


class LiveRunner:
    """Event-loop re-optimization with SLAs and overload shedding.

    Parameters mirror :class:`~repro.scenario.runner.ScenarioRunner`
    (solver spec, budgets, warm/cache handoff, engine, fitness) plus the
    live knobs:

    sla:
        Per-event response budget in seconds (arrival to response).
    interval:
        Seconds between event arrivals on the run timeline.
    clock:
        The run's clock; defaults to a fresh
        :class:`~repro.anytime.deadline.SimulatedClock` when
        ``seconds_per_evaluation`` is given, else a monotonic clock.
    seconds_per_evaluation:
        When set, solve durations are *charged* as
        ``n_evaluations * seconds_per_evaluation`` on the simulated
        clock instead of measured — the deterministic mode.
    deadline_fraction:
        Fraction of the remaining SLA budget granted to each solve's
        deadline.  Cooperative cancellation stops at phase boundaries,
        so the slack (default 10%) absorbs the final phase in flight.
    ladder:
        The degradation rungs (:data:`DEFAULT_LADDER` by default).
    offload:
        When true, each event's solve runs on the process-wide
        persistent worker pool (:mod:`repro.parallel`) instead of
        in-process: the step's problem travels by shared-memory
        broadcast, the solver and warm start by pickle, and the event
        deadline is re-derived worker-side from the same budget —
        reports are bit-identical to in-process runs in simulated-clock
        mode.  This is the service shape: the event loop stays
        responsive while solves occupy a warm worker, and a worker
        crash is retried by the supervisor without republishing the
        broadcast.  Requires a picklable solver/fitness; runs with an
        external run ``deadline`` (a shared clock or cancel token
        cannot cross a process boundary) and ``REPRO_RUNTIME=0`` runs
        fall back in-process.
    """

    def __init__(
        self,
        solver: "Solver | str",
        *,
        sla: float,
        interval: "float | None" = None,
        budget: "int | None" = None,
        warm_budget: "int | None" = None,
        warm: bool = True,
        reuse_cache: bool = True,
        engine: str = "auto",
        fitness=None,
        clock: "Clock | None" = None,
        seconds_per_evaluation: "float | None" = None,
        deadline_fraction: float = 0.9,
        ladder: Sequence[LadderRung] = DEFAULT_LADDER,
        offload: bool = False,
        **solver_kwargs,
    ) -> None:
        if isinstance(solver, str):
            from repro.solvers.registry import make_solver

            solver = make_solver(solver, **solver_kwargs)
        elif solver_kwargs:
            raise ValueError(
                "solver keyword arguments require a registry spec, "
                "not a Solver instance"
            )
        if sla <= 0:
            raise ValueError(f"sla must be positive, got {sla}")
        if interval is not None and interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if seconds_per_evaluation is not None and seconds_per_evaluation <= 0:
            raise ValueError(
                "seconds_per_evaluation must be positive or None, got "
                f"{seconds_per_evaluation}"
            )
        if not 0.0 < deadline_fraction <= 1.0:
            raise ValueError(
                f"deadline_fraction must be in (0, 1], got {deadline_fraction}"
            )
        if not ladder:
            raise ValueError("the degradation ladder needs at least one rung")
        _validate_budgets(budget, warm_budget, warm)
        self.solver = solver
        self.sla = float(sla)
        self.interval = float(interval) if interval is not None else float(sla)
        self.budget = budget
        self.warm_budget = warm_budget if warm_budget is not None else budget
        self.warm = warm
        self.reuse_cache = reuse_cache
        self.engine = engine
        self.fitness = fitness
        self.seconds_per_evaluation = seconds_per_evaluation
        if clock is None:
            clock = (
                SimulatedClock()
                if seconds_per_evaluation is not None
                else MonotonicClock()
            )
        self.clock = clock
        self.deadline_fraction = deadline_fraction
        self.ladder = tuple(ladder)
        self.offload = bool(offload)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run(
        self,
        scenario: Scenario,
        *,
        seed: "int | np.random.SeedSequence" = 0,
        deadline: "Deadline | None" = None,
    ) -> LiveReport:
        """Unfold ``scenario`` and respond to every step as a live event.

        The seed layout is exactly :meth:`ScenarioRunner.run`'s — the
        root's first child unfolds the perturbations, the second spawns
        one solve stream per step — so a pressure-free simulated-clock
        run reproduces the scenario runner's per-step results
        bit-for-bit.  ``deadline`` optionally bounds the *whole run*
        (composed with every per-event SLA deadline; attach a
        :class:`~repro.anytime.deadline.CancelToken` for external
        cancellation).
        """
        root = root_sequence(seed)
        unfold_seq, solve_seq = spawn_children(root, 2)
        steps = scenario.unfold(unfold_seq)
        return self.run_steps(
            steps,
            seed=solve_seq,
            scenario_name=scenario.name,
            deadline=deadline,
        )

    def run_steps(
        self,
        steps: Sequence[ScenarioStep],
        *,
        seed: "int | np.random.SeedSequence" = 0,
        scenario_name: str = "steps",
        deadline: "Deadline | None" = None,
    ) -> LiveReport:
        """Respond to an already-unfolded step sequence as live events.

        Event ``i`` (the scenario's step ``i``) arrives at
        ``i * interval`` on the run timeline.  Events are served in
        order; when the saturation rung fires and later events have
        already arrived, the backlog is coalesced — skipped steps'
        perturbation carries are composed into the next warm start and
        recorded as shed.
        """
        if not steps:
            raise ValueError("a live run needs at least one step")
        solve_seq = root_sequence(seed)
        step_seeds = spawn_children(solve_seq, len(steps))
        warm_capable = self.warm and self.solver.supports_warm_start
        simulated = self.seconds_per_evaluation is not None
        # Offloading needs the persistent runtime and a per-event-only
        # deadline: an external run deadline shares a clock (or cancel
        # token) with the caller, which a forked worker cannot observe.
        offload = self.offload and deadline is None and runtime_enabled()

        origin = self.clock.now()
        now = 0.0  # run-relative timeline, seconds
        events: list[LiveEvent] = []
        previous: "SolveResult | None" = None
        index = 0
        with _cache_tracking(self.solver, self.reuse_cache):
            while index < len(steps):
                step = steps[index]
                arrival = step.index * self.interval
                if now < arrival:
                    # Idle until the event arrives.  Simulated clocks
                    # advance explicitly; the real clock just re-bases
                    # (the runner never sleeps — latency accounting
                    # lives on the run timeline).
                    if isinstance(self.clock, SimulatedClock):
                        self.clock.advance(arrival - now)
                    now = arrival
                lag = now - arrival
                queue_depth = sum(
                    1 for later in steps[index:]
                    if later.index * self.interval <= now
                )
                rung = _select_rung(self.ladder, lag / self.sla)

                skipped: list[ScenarioStep] = []
                if rung.coalesce:
                    # Skip-to-latest: serve the newest arrived event,
                    # shedding the ones in between.
                    target = index
                    while (
                        target + 1 < len(steps)
                        and steps[target + 1].index * self.interval <= now
                    ):
                        target += 1
                    skipped = list(steps[index:target])
                    step = steps[target]
                    index = target
                    # The served event is the latest arrival; latency
                    # and the SLA deadline are measured from *its*
                    # arrival time.
                    arrival = step.index * self.interval

                for shed_step in skipped:
                    events.append(
                        LiveEvent(
                            index=shed_step.index,
                            event=shed_step.event,
                            arrival=shed_step.index * self.interval,
                            rung=rung.name,
                            queue_depth=queue_depth,
                            shed=True,
                            coalesced_into=step.index,
                        )
                    )

                warm_start = None
                engine_cache = None
                if warm_capable and previous is not None:
                    warm_start = previous.best.placement
                    # Compose every pending carry — the shed steps'
                    # perturbations still happened to the deployment —
                    # then the served step's own carry.
                    for carry_step in (*skipped, step):
                        if carry_step.change is not None and warm_start is not None:
                            warm_start = carry_step.change.carry_placement(
                                warm_start
                            )
                    if self.reuse_cache and not skipped:
                        # The incumbent cache is validated against one
                        # step's change; a coalesced hop crosses several,
                        # so drop it rather than reason about composition.
                        engine_cache = previous.engine_cache
                budget = self.budget if warm_start is None else self.warm_budget
                if rung.budget_scale < 1.0 and budget is not None:
                    budget = max(1, int(budget * rung.budget_scale))

                respond_by = arrival + self.sla
                solve_budget = max(0.0, (respond_by - now) * self.deadline_fraction)
                event_deadline = Deadline.after(solve_budget, clock=self.clock)
                if deadline is not None:
                    event_deadline = event_deadline & deadline

                started = now
                wall_before = DEFAULT_CLOCK.now()
                if offload:
                    payload = get_runtime().broadcast(step.problem)
                    task = (
                        self.solver,
                        payload,
                        step_seeds[step.index],
                        budget,
                        warm_start,
                        self.engine,
                        self.fitness,
                        solve_budget,
                        simulated,
                        rung,
                    )
                    [result] = run_tasks(
                        _solve_offloaded,
                        [task],
                        workers=_OFFLOAD_WORKERS,
                        labels=[f"event {step.index} ({step.event})"],
                    )
                else:
                    with _scaled_solver(self.solver, rung):
                        result = self.solver.solve(
                            step.problem,
                            seed=step_seeds[step.index],
                            budget=budget,
                            warm_start=warm_start,
                            engine=self.engine,
                            fitness=self.fitness,
                            engine_cache=engine_cache,
                            deadline=event_deadline,
                        )
                if simulated:
                    duration = result.n_evaluations * self.seconds_per_evaluation
                    self.clock.advance(duration)
                    now = self.clock.now() - origin
                else:
                    duration = DEFAULT_CLOCK.now() - wall_before
                    now = started + duration

                events.append(
                    LiveEvent(
                        index=step.index,
                        event=step.event,
                        arrival=arrival,
                        rung=rung.name,
                        queue_depth=queue_depth,
                        started=started,
                        finished=now,
                        result=result,
                    )
                )
                previous = result
                index += 1
                if deadline is not None and deadline.stop_reason() is not None:
                    # The run budget / external cancel fired: remaining
                    # events are never served — record them as shed so
                    # the report's accounting stays complete.
                    for missed in steps[index:]:
                        events.append(
                            LiveEvent(
                                index=missed.index,
                                event=missed.event,
                                arrival=missed.index * self.interval,
                                rung="cancelled",
                                queue_depth=0,
                                shed=True,
                            )
                        )
                    break

        return LiveReport(
            scenario_name=scenario_name,
            solver_name=self.solver.name,
            sla=self.sla,
            interval=self.interval,
            events=tuple(events),
            seed=solve_seq.entropy,
        )
