"""Cooperative cancellation: clocks, cancel tokens and deadlines.

The solvers in this repository are *anytime* algorithms — at every phase
boundary they hold a valid, fully evaluated incumbent.  A
:class:`Deadline` turns that property into a latency guarantee: run
loops poll ``deadline.stop_reason()`` at phase boundaries and, when it
fires, stop and return the tracked best-so-far instead of raising.

Design rules:

- **Cooperative, never preemptive.**  A deadline cannot interrupt a
  phase in flight; it is only consulted between phases.  Callers that
  need a hard bound budget a safety margin (see
  :class:`repro.anytime.live.LiveRunner`'s ``deadline_fraction``).
- **Composable.**  A deadline is the conjunction of any number of time
  limits and :class:`CancelToken` s; ``a & b`` fires as soon as either
  would.  This models "event SLA ∧ run budget ∧ external cancel".
- **Deterministic.**  Checking a deadline consumes no randomness, and
  with ``deadline=None`` (or a deadline that never fires) every run
  loop is bit-identical to one without deadline support.  Simulated
  clocks make firing itself deterministic for tests and benchmarks.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

__all__ = [
    "Clock",
    "DEFAULT_CLOCK",
    "MonotonicClock",
    "SimulatedClock",
    "SteppingClock",
    "CancelToken",
    "Deadline",
]


@runtime_checkable
class Clock(Protocol):
    """Anything with a monotonic ``now() -> float`` (seconds)."""

    def now(self) -> float:  # pragma: no cover - protocol signature
        ...


class MonotonicClock:
    """Wall-clock time from :func:`time.monotonic` (the default)."""

    __slots__ = ()

    def now(self) -> float:
        return time.monotonic()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "MonotonicClock()"


#: The process-wide wall clock.  All elapsed-seconds bookkeeping in the
#: solver and scenario layers reads ``DEFAULT_CLOCK.now()`` instead of
#: calling :mod:`time` directly, so the ``repro.lint`` RL004 rule can
#: confine raw wall-clock access to this module (and benchmarks), and
#: tests can reason about timing through one injectable seam.
DEFAULT_CLOCK: Clock = MonotonicClock()


class SimulatedClock:
    """A manually advanced clock for deterministic simulations.

    Time only moves when :meth:`advance` is called, so anything driven
    by a :class:`SimulatedClock` is a pure function of the advance
    calls — the backbone of the deterministic ``LiveRunner`` mode and
    the ``--smoke`` benchmark arm.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards ({seconds})")
        self._now += float(seconds)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimulatedClock(now={self._now})"


class SteppingClock:
    """A clock that advances by a fixed ``dt`` on every ``now()`` call.

    Test-only helper: run loops consult a deadline exactly once per
    phase boundary, so a stepping clock makes a deadline fire at an
    exact, reproducible phase without touching wall-clock time.
    """

    __slots__ = ("_now", "dt")

    def __init__(self, dt: float, start: float = 0.0) -> None:
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        self.dt = float(dt)
        self._now = float(start)

    def now(self) -> float:
        current = self._now
        self._now += self.dt
        return current

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SteppingClock(dt={self.dt}, now={self._now})"


class CancelToken:
    """An external cancellation flag, settable from any owner.

    Tokens carry no clock: they fire when (and only when) someone calls
    :meth:`cancel`.  Attach them to a :class:`Deadline` to compose with
    time limits.
    """

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CancelToken(cancelled={self._cancelled})"


@dataclass(frozen=True)
class _Limit:
    """One time limit: ``clock.now() >= expires_at`` means expired."""

    clock: Clock
    expires_at: float

    def remaining(self) -> float:
        return self.expires_at - self.clock.now()


@dataclass(frozen=True)
class Deadline:
    """A conjunction of time limits and cancel tokens.

    A deadline *fires* as soon as any of its limits expires or any of
    its tokens is cancelled.  Run loops call :meth:`stop_reason` once
    per phase boundary:

    - ``None`` — keep going;
    - ``"deadline"`` — a time limit expired;
    - ``"cancelled"`` — a token was cancelled.

    Cancellation takes precedence over expiry so an explicit external
    cancel is always reported as such.
    """

    limits: tuple[_Limit, ...] = ()
    tokens: tuple[CancelToken, ...] = ()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def after(cls, seconds: float, *, clock: Clock | None = None) -> "Deadline":
        """A deadline ``seconds`` from now on ``clock`` (monotonic default)."""
        if not math.isfinite(seconds):
            raise ValueError(f"deadline seconds must be finite, got {seconds}")
        clk = clock if clock is not None else MonotonicClock()
        return cls(limits=(_Limit(clock=clk, expires_at=clk.now() + float(seconds)),))

    @classmethod
    def at(cls, expires_at: float, *, clock: Clock | None = None) -> "Deadline":
        """A deadline at absolute clock time ``expires_at``."""
        if not math.isfinite(expires_at):
            raise ValueError(f"deadline time must be finite, got {expires_at}")
        clk = clock if clock is not None else MonotonicClock()
        return cls(limits=(_Limit(clock=clk, expires_at=float(expires_at)),))

    @classmethod
    def cancellable(cls, token: CancelToken) -> "Deadline":
        """A deadline with no time limit, fired only by ``token``."""
        return cls(tokens=(token,))

    def __and__(self, other: "Deadline") -> "Deadline":
        """Conjunction: fires as soon as either side would."""
        if not isinstance(other, Deadline):
            return NotImplemented
        return Deadline(
            limits=self.limits + other.limits,
            tokens=self.tokens + other.tokens,
        )

    def with_token(self, token: CancelToken) -> "Deadline":
        return Deadline(limits=self.limits, tokens=self.tokens + (token,))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def stop_reason(self) -> str | None:
        """Why a run loop should stop now, or ``None`` to continue."""
        for token in self.tokens:
            if token.cancelled:
                return "cancelled"
        for limit in self.limits:
            if limit.remaining() <= 0:
                return "deadline"
        return None

    def expired(self) -> bool:
        return self.stop_reason() is not None

    def remaining(self) -> float:
        """Seconds until the tightest time limit (``inf`` if none).

        Returns ``0.0`` when already expired or cancelled.
        """
        for token in self.tokens:
            if token.cancelled:
                return 0.0
        if not self.limits:
            return math.inf
        return max(0.0, min(limit.remaining() for limit in self.limits))
