"""repro — mesh router placement in Wireless Mesh Networks.

A complete reproduction of *"Ad Hoc and Neighborhood Search Methods for
Placement of Mesh Routers in Wireless Mesh Networks"* (Xhafa, Sanchez &
Barolli, IEEE ICDCS Workshops 2009): the problem model, the seven ad hoc
placement methods, the swap/random neighborhood search, the genetic
algorithm used for the initializer study, and the harness that
regenerates every table and figure of the paper's evaluation.

Quickstart::

    import numpy as np
    from repro import (
        Evaluator, HotSpotPlacement, NeighborhoodSearch, SwapMovement,
        paper_normal,
    )

    problem = paper_normal().generate()
    rng = np.random.default_rng(0)
    initial = HotSpotPlacement().place(problem, rng)
    search = NeighborhoodSearch(SwapMovement(), max_phases=64)
    result = search.run(Evaluator(problem), initial, rng)
    print(result.best.summary())
"""

from repro.adhoc import (
    AdHocMethod,
    ColLeftPlacement,
    CornersPlacement,
    CrossPlacement,
    DiagPlacement,
    HotSpotPlacement,
    NearPlacement,
    RandomPlacement,
    make_method,
    paper_methods,
)
from repro.core import (
    ClientSet,
    CoverageRule,
    DensityMap,
    Evaluation,
    Evaluator,
    GridArea,
    LexicographicFitness,
    LinkRule,
    MeshClient,
    MeshRouter,
    NetworkMetrics,
    ParetoArchive,
    Placement,
    Point,
    ProblemInstance,
    RadioProfile,
    Rect,
    RouterFleet,
    RouterNetwork,
    WeightedSumFitness,
)
from repro.distributions import (
    ExponentialDistribution,
    NormalDistribution,
    UniformDistribution,
    WeibullDistribution,
    make_distribution,
)
from repro.experiments import (
    run_all,
    run_ga_figure,
    run_ns_figure,
    run_table,
)
from repro.genetic import (
    AdHocInitializer,
    GAConfig,
    GAResult,
    GeneticAlgorithm,
    MixedInitializer,
    RandomInitializer,
)
from repro.instances import (
    InstanceSpec,
    load_instance,
    load_placement,
    paper_exponential,
    paper_normal,
    paper_uniform,
    paper_weibull,
    save_instance,
    save_placement,
    tiny_spec,
)
from repro.neighborhood import (
    CombinedMovement,
    NeighborhoodSearch,
    RandomMovement,
    SearchResult,
    SimulatedAnnealing,
    SwapMovement,
    TabuSearch,
)
from repro.scenario import (
    ClientChurn,
    ClientDrift,
    FleetReport,
    RadioDegradation,
    RouterOutage,
    Scenario,
    ScenarioFleet,
    ScenarioResult,
    ScenarioRunner,
)
from repro.solvers import (
    Solver,
    SolveResult,
    available_solvers,
    make_solver,
)
from repro.viz import (
    render_evaluation,
    render_fleet_report,
    render_placement,
    render_timeline,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # adhoc
    "AdHocMethod",
    "ColLeftPlacement",
    "CornersPlacement",
    "CrossPlacement",
    "DiagPlacement",
    "HotSpotPlacement",
    "NearPlacement",
    "RandomPlacement",
    "make_method",
    "paper_methods",
    # core
    "ClientSet",
    "CoverageRule",
    "DensityMap",
    "Evaluation",
    "Evaluator",
    "GridArea",
    "LexicographicFitness",
    "LinkRule",
    "MeshClient",
    "MeshRouter",
    "NetworkMetrics",
    "ParetoArchive",
    "Placement",
    "Point",
    "ProblemInstance",
    "RadioProfile",
    "Rect",
    "RouterFleet",
    "RouterNetwork",
    "WeightedSumFitness",
    # distributions
    "ExponentialDistribution",
    "NormalDistribution",
    "UniformDistribution",
    "WeibullDistribution",
    "make_distribution",
    # experiments
    "run_all",
    "run_ga_figure",
    "run_ns_figure",
    "run_table",
    # genetic
    "AdHocInitializer",
    "GAConfig",
    "GAResult",
    "GeneticAlgorithm",
    "MixedInitializer",
    "RandomInitializer",
    # instances
    "InstanceSpec",
    "load_instance",
    "load_placement",
    "paper_exponential",
    "paper_normal",
    "paper_uniform",
    "paper_weibull",
    "save_instance",
    "save_placement",
    "tiny_spec",
    # neighborhood
    "CombinedMovement",
    "NeighborhoodSearch",
    "RandomMovement",
    "SearchResult",
    "SimulatedAnnealing",
    "SwapMovement",
    "TabuSearch",
    # scenario
    "ClientChurn",
    "ClientDrift",
    "FleetReport",
    "RadioDegradation",
    "RouterOutage",
    "Scenario",
    "ScenarioFleet",
    "ScenarioResult",
    "ScenarioRunner",
    # solvers
    "Solver",
    "SolveResult",
    "available_solvers",
    "make_solver",
    # viz
    "render_evaluation",
    "render_fleet_report",
    "render_placement",
    "render_timeline",
]
