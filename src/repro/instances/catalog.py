"""The paper's benchmark instances.

Tables 1-3 all use the same frame — "64 routers are to be placed in a
128 x 128 grid area for covering 192 clients" — and vary the client
distribution: Normal ``N(mu = 64, sigma = 128/10)`` (Table 1),
Exponential (Table 2) and Weibull (Table 3); Section 5.1 also mentions
Uniform.  This catalog pins those instances down as named
:class:`~repro.instances.generator.InstanceSpec` objects so every
experiment, test and bench references the identical workload.
"""

from __future__ import annotations

from repro.instances.generator import InstanceSpec

__all__ = [
    "PAPER_SEED",
    "paper_spec",
    "paper_normal",
    "paper_exponential",
    "paper_weibull",
    "paper_uniform",
    "catalog",
    "tiny_spec",
]

#: Seed for the canonical paper instances; replications use other seeds.
PAPER_SEED = 20090629  # ICDCS 2009 workshop date.


def paper_spec(distribution: str, seed: int = PAPER_SEED, **params) -> InstanceSpec:
    """The paper frame (64 routers / 128x128 / 192 clients) with the
    given client distribution."""
    return InstanceSpec(
        name=f"paper-{distribution}",
        width=128,
        height=128,
        n_routers=64,
        n_clients=192,
        distribution=distribution,
        distribution_params=dict(params),
        seed=seed,
    )


def paper_normal(seed: int = PAPER_SEED) -> InstanceSpec:
    """Table 1 / Figure 1 instance: Normal N(64, 12.8) clients."""
    return paper_spec("normal", seed=seed, mean=64.0, std=12.8)


def paper_exponential(seed: int = PAPER_SEED) -> InstanceSpec:
    """Table 2 / Figure 2 instance: Exponential clients (scale = 32)."""
    return paper_spec("exponential", seed=seed, scale=32.0)


def paper_weibull(seed: int = PAPER_SEED) -> InstanceSpec:
    """Table 3 / Figure 3 instance: Weibull clients (shape 1.2)."""
    return paper_spec("weibull", seed=seed, shape=1.2)


def paper_uniform(seed: int = PAPER_SEED) -> InstanceSpec:
    """Uniform-clients instance (Section 5.1 mentions it; no table)."""
    return paper_spec("uniform", seed=seed)


def catalog() -> dict[str, InstanceSpec]:
    """All named instances, keyed by distribution name."""
    return {
        "uniform": paper_uniform(),
        "normal": paper_normal(),
        "exponential": paper_exponential(),
        "weibull": paper_weibull(),
    }


def tiny_spec(distribution: str = "normal", seed: int = 7) -> InstanceSpec:
    """A small instance for tests and quick demos (16 routers, 32x32)."""
    return InstanceSpec(
        name=f"tiny-{distribution}",
        width=32,
        height=32,
        n_routers=16,
        n_clients=48,
        distribution=distribution,
        min_radius=2.0,
        max_radius=8.0,
        seed=seed,
    )
