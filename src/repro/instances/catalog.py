"""The paper's benchmark instances.

Tables 1-3 all use the same frame — "64 routers are to be placed in a
128 x 128 grid area for covering 192 clients" — and vary the client
distribution: Normal ``N(mu = 64, sigma = 128/10)`` (Table 1),
Exponential (Table 2) and Weibull (Table 3); Section 5.1 also mentions
Uniform.  This catalog pins those instances down as named
:class:`~repro.instances.generator.InstanceSpec` objects so every
experiment, test and bench references the identical workload.
"""

from __future__ import annotations

from repro.instances.generator import InstanceSpec

__all__ = [
    "PAPER_SEED",
    "CITY_SEED",
    "paper_spec",
    "paper_normal",
    "paper_exponential",
    "paper_weibull",
    "paper_uniform",
    "catalog",
    "city_spec",
    "city_medium",
    "city_large",
    "city_catalog",
    "tiny_spec",
]

#: Seed for the canonical paper instances; replications use other seeds.
PAPER_SEED = 20090629  # ICDCS 2009 workshop date.

#: Seed for the city-scale instances (distinct stream from the paper's).
CITY_SEED = 20260729


def paper_spec(distribution: str, seed: int = PAPER_SEED, **params) -> InstanceSpec:
    """The paper frame (64 routers / 128x128 / 192 clients) with the
    given client distribution."""
    return InstanceSpec(
        name=f"paper-{distribution}",
        width=128,
        height=128,
        n_routers=64,
        n_clients=192,
        distribution=distribution,
        distribution_params=dict(params),
        seed=seed,
    )


def paper_normal(seed: int = PAPER_SEED) -> InstanceSpec:
    """Table 1 / Figure 1 instance: Normal N(64, 12.8) clients."""
    return paper_spec("normal", seed=seed, mean=64.0, std=12.8)


def paper_exponential(seed: int = PAPER_SEED) -> InstanceSpec:
    """Table 2 / Figure 2 instance: Exponential clients (scale = 32)."""
    return paper_spec("exponential", seed=seed, scale=32.0)


def paper_weibull(seed: int = PAPER_SEED) -> InstanceSpec:
    """Table 3 / Figure 3 instance: Weibull clients (shape 1.2)."""
    return paper_spec("weibull", seed=seed, shape=1.2)


def paper_uniform(seed: int = PAPER_SEED) -> InstanceSpec:
    """Uniform-clients instance (Section 5.1 mentions it; no table)."""
    return paper_spec("uniform", seed=seed)


def catalog() -> dict[str, InstanceSpec]:
    """All named instances, keyed by distribution name."""
    return {
        "uniform": paper_uniform(),
        "normal": paper_normal(),
        "exponential": paper_exponential(),
        "weibull": paper_weibull(),
    }


def city_spec(
    n_routers: int,
    n_clients: int,
    width: int = 512,
    height: int = 512,
    distribution: str = "uniform",
    seed: int = CITY_SEED,
    **params,
) -> InstanceSpec:
    """A city-scale frame for the sparse evaluation engine.

    Far beyond the paper's 64-router workload: a large deployment area
    where almost all router pairs are out of radio range, the regime the
    rural-WMN literature evaluates and where the spatial-grid engine
    beats the dense matrices asymptotically.  Radii are scaled up from
    the paper's so city networks still form meaningful components.
    """
    return InstanceSpec(
        name=f"city-{width}x{height}-r{n_routers}-c{n_clients}",
        width=width,
        height=height,
        n_routers=n_routers,
        n_clients=n_clients,
        distribution=distribution,
        distribution_params=dict(params),
        min_radius=4.0,
        max_radius=12.0,
        seed=seed,
    )


def city_medium(seed: int = CITY_SEED) -> InstanceSpec:
    """512x512 grid, 2048 routers, 20k clients — dense still feasible."""
    return city_spec(2048, 20_000, seed=seed)


def city_large(seed: int = CITY_SEED) -> InstanceSpec:
    """512x512 grid, 4096 routers, 50k clients — sparse-engine only."""
    return city_spec(4096, 50_000, seed=seed)


def city_catalog() -> dict[str, InstanceSpec]:
    """The named city-scale instances (separate from the paper catalog,
    whose keys experiments resolve by distribution name)."""
    return {
        "city-medium": city_medium(),
        "city-large": city_large(),
    }


def tiny_spec(distribution: str = "normal", seed: int = 7) -> InstanceSpec:
    """A small instance for tests and quick demos (16 routers, 32x32)."""
    return InstanceSpec(
        name=f"tiny-{distribution}",
        width=32,
        height=32,
        n_routers=16,
        n_clients=48,
        distribution=distribution,
        min_radius=2.0,
        max_radius=8.0,
        seed=seed,
    )
