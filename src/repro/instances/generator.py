"""Benchmark instance generation.

"We evaluated the proposed ad hoc methods through generated instances.
Client mesh node positions were generated using four distributions"
(Section 5.1).  :class:`InstanceSpec` is a declarative, serializable
recipe for one instance; :meth:`InstanceSpec.generate` materializes it
deterministically from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.problem import ProblemInstance
from repro.core.radio import CoverageRule, LinkRule, RadioProfile
from repro.distributions.registry import make_distribution

__all__ = ["InstanceSpec"]


@dataclass(frozen=True)
class InstanceSpec:
    """A reproducible recipe for one problem instance.

    Two instances generated from equal specs are identical: the seed
    feeds a dedicated PRNG used (in a fixed order) for the router radii
    and the client positions.
    """

    name: str
    width: int = 128
    height: int = 128
    n_routers: int = 64
    n_clients: int = 192
    distribution: str = "normal"
    distribution_params: dict = field(default_factory=dict)
    min_radius: float = 1.5
    max_radius: float = 7.0
    link_rule: LinkRule = LinkRule.BIDIRECTIONAL
    coverage_rule: CoverageRule = CoverageRule.GIANT_ONLY
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_routers <= 0:
            raise ValueError(f"n_routers must be positive, got {self.n_routers}")
        if self.n_clients < 0:
            raise ValueError(f"n_clients must be non-negative, got {self.n_clients}")

    @property
    def radio_profile(self) -> RadioProfile:
        """The oscillation interval of the router radii."""
        return RadioProfile(self.min_radius, self.max_radius)

    def with_seed(self, seed: int) -> "InstanceSpec":
        """The same recipe under a different seed (replication runs)."""
        return replace(self, seed=seed)

    def with_distribution(self, distribution: str, **params) -> "InstanceSpec":
        """The same recipe with a different client distribution."""
        return replace(
            self, distribution=distribution, distribution_params=dict(params)
        )

    def generate(self) -> ProblemInstance:
        """Materialize the instance this spec describes."""
        rng = np.random.default_rng(self.seed)
        from repro.core.grid import GridArea
        from repro.core.routers import RouterFleet

        grid = GridArea(self.width, self.height)
        fleet = RouterFleet.oscillating(self.n_routers, self.radio_profile, rng)
        law = make_distribution(self.distribution, **self.distribution_params)
        clients = law.sample_clients(self.n_clients, grid, rng)
        return ProblemInstance(
            grid=grid,
            fleet=fleet,
            clients=clients,
            link_rule=self.link_rule,
            coverage_rule=self.coverage_rule,
        )

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return (
            f"{self.name}: {self.n_routers} routers, {self.width}x{self.height} "
            f"grid, {self.n_clients} clients ({self.distribution}), radii "
            f"[{self.min_radius}, {self.max_radius}], link={self.link_rule.value}, "
            f"coverage={self.coverage_rule.value}, seed={self.seed}"
        )
