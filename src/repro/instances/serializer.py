"""JSON (de)serialization of instances, specs and placements.

Benchmark instances and solutions survive to disk so runs can be
archived, diffed and replayed.  The format is plain JSON with a
``format`` tag and explicit fields — no pickling, so files remain
readable and versionable.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.clients import ClientSet
from repro.core.geometry import Point
from repro.core.grid import GridArea
from repro.core.problem import ProblemInstance
from repro.core.radio import CoverageRule, LinkRule
from repro.core.routers import RouterFleet
from repro.core.solution import Placement
from repro.instances.generator import InstanceSpec

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "spec_to_dict",
    "spec_from_dict",
    "placement_to_dict",
    "placement_from_dict",
    "save_placement",
    "load_placement",
]

_INSTANCE_FORMAT = "repro.instance.v1"
_SPEC_FORMAT = "repro.spec.v1"
_PLACEMENT_FORMAT = "repro.placement.v1"


# ----------------------------------------------------------------------
# Problem instances
# ----------------------------------------------------------------------

def instance_to_dict(problem: ProblemInstance) -> dict:
    """Explicit JSON-ready form of a problem instance."""
    return {
        "format": _INSTANCE_FORMAT,
        "grid": {"width": problem.grid.width, "height": problem.grid.height},
        "radii": [router.radius for router in problem.fleet],
        "clients": [[client.cell.x, client.cell.y] for client in problem.clients],
        "link_rule": problem.link_rule.value,
        "coverage_rule": problem.coverage_rule.value,
    }


def instance_from_dict(payload: dict) -> ProblemInstance:
    """Inverse of :func:`instance_to_dict` (validates the format tag)."""
    if payload.get("format") != _INSTANCE_FORMAT:
        raise ValueError(
            f"not a {_INSTANCE_FORMAT} document: format={payload.get('format')!r}"
        )
    grid = GridArea(payload["grid"]["width"], payload["grid"]["height"])
    fleet = RouterFleet.from_radii(payload["radii"])
    clients = ClientSet.from_points(
        [Point(int(x), int(y)) for x, y in payload["clients"]], grid=grid
    )
    return ProblemInstance(
        grid=grid,
        fleet=fleet,
        clients=clients,
        link_rule=LinkRule(payload["link_rule"]),
        coverage_rule=CoverageRule(payload["coverage_rule"]),
    )


def save_instance(problem: ProblemInstance, path: "str | Path") -> None:
    """Write an instance to ``path`` as JSON."""
    Path(path).write_text(json.dumps(instance_to_dict(problem), indent=2))


def load_instance(path: "str | Path") -> ProblemInstance:
    """Read an instance previously written by :func:`save_instance`."""
    return instance_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Instance specs
# ----------------------------------------------------------------------

def spec_to_dict(spec: InstanceSpec) -> dict:
    """JSON-ready form of a generation recipe."""
    return {
        "format": _SPEC_FORMAT,
        "name": spec.name,
        "width": spec.width,
        "height": spec.height,
        "n_routers": spec.n_routers,
        "n_clients": spec.n_clients,
        "distribution": spec.distribution,
        "distribution_params": dict(spec.distribution_params),
        "min_radius": spec.min_radius,
        "max_radius": spec.max_radius,
        "link_rule": spec.link_rule.value,
        "coverage_rule": spec.coverage_rule.value,
        "seed": spec.seed,
    }


def spec_from_dict(payload: dict) -> InstanceSpec:
    """Inverse of :func:`spec_to_dict`."""
    if payload.get("format") != _SPEC_FORMAT:
        raise ValueError(
            f"not a {_SPEC_FORMAT} document: format={payload.get('format')!r}"
        )
    return InstanceSpec(
        name=payload["name"],
        width=payload["width"],
        height=payload["height"],
        n_routers=payload["n_routers"],
        n_clients=payload["n_clients"],
        distribution=payload["distribution"],
        distribution_params=dict(payload["distribution_params"]),
        min_radius=payload["min_radius"],
        max_radius=payload["max_radius"],
        link_rule=LinkRule(payload["link_rule"]),
        coverage_rule=CoverageRule(payload["coverage_rule"]),
        seed=payload["seed"],
    )


# ----------------------------------------------------------------------
# Placements
# ----------------------------------------------------------------------

def placement_to_dict(placement: Placement) -> dict:
    """JSON-ready form of a placement."""
    return {
        "format": _PLACEMENT_FORMAT,
        "grid": {"width": placement.grid.width, "height": placement.grid.height},
        "cells": [[cell.x, cell.y] for cell in placement.cells],
    }


def placement_from_dict(payload: dict) -> Placement:
    """Inverse of :func:`placement_to_dict`."""
    if payload.get("format") != _PLACEMENT_FORMAT:
        raise ValueError(
            f"not a {_PLACEMENT_FORMAT} document: format={payload.get('format')!r}"
        )
    grid = GridArea(payload["grid"]["width"], payload["grid"]["height"])
    return Placement.from_cells(
        grid, [Point(int(x), int(y)) for x, y in payload["cells"]]
    )


def save_placement(placement: Placement, path: "str | Path") -> None:
    """Write a placement to ``path`` as JSON."""
    Path(path).write_text(json.dumps(placement_to_dict(placement), indent=2))


def load_placement(path: "str | Path") -> Placement:
    """Read a placement previously written by :func:`save_placement`."""
    return placement_from_dict(json.loads(Path(path).read_text()))
