"""Benchmark instances (paper Section 5.1).

Declarative instance recipes, the catalog of the paper's canonical
instances (Tables 1-3) and JSON (de)serialization for archiving runs.
"""

from repro.instances.catalog import (
    PAPER_SEED,
    catalog,
    paper_exponential,
    paper_normal,
    paper_spec,
    paper_uniform,
    paper_weibull,
    tiny_spec,
)
from repro.instances.generator import InstanceSpec
from repro.instances.serializer import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_placement,
    placement_from_dict,
    placement_to_dict,
    save_instance,
    save_placement,
    spec_from_dict,
    spec_to_dict,
)

__all__ = [
    "PAPER_SEED",
    "catalog",
    "paper_exponential",
    "paper_normal",
    "paper_spec",
    "paper_uniform",
    "paper_weibull",
    "tiny_spec",
    "InstanceSpec",
    "instance_from_dict",
    "instance_to_dict",
    "load_instance",
    "load_placement",
    "placement_from_dict",
    "placement_to_dict",
    "save_instance",
    "save_placement",
    "spec_from_dict",
    "spec_to_dict",
]
