"""Zero-copy problem broadcast over POSIX shared memory.

Every ``workers=`` harness used to pickle the full
:class:`~repro.core.problem.ProblemInstance` — client positions and
router radii included — into *every* shard task.  At city scale
(20k–50k clients) that serialization dominates fan-out wall-clock.  This
codec publishes an instance's numpy payloads **once** into
:mod:`multiprocessing.shared_memory` segments and ships a small
:class:`ProblemRef` handle (segment name / shape / dtype / content hash)
per task instead; workers attach read-only views and rebuild the
instance around them without copying the arrays again.

Design rules:

* **Content-addressed segments.**  Segment names embed a SHA-256 prefix
  of the array bytes plus the publishing pid, so identical payloads
  dedupe naturally and two runtimes in different processes can never
  collide.  Same-process collisions (two runtimes, or a stale segment
  left by a killed run) are survived by retrying with a counter suffix.
* **Verified attach.**  :func:`attach_array` re-hashes the mapped bytes
  and refuses a segment whose content does not match the handle — a
  name collision can misroute a task, never corrupt a result.
* **Parent owns the lifecycle.**  The publisher keeps the segment
  objects and is the only side that ever calls ``unlink``
  (:class:`~repro.parallel.runtime.ParallelRuntime` drives that).
  Pool workers are forked, so they share the parent's
  ``resource_tracker`` process; attaching registers the name into the
  same (set-semantics) cache as publishing did — a no-op — and the
  parent's eventual ``unlink`` clears it exactly once.  Attach therefore
  must *not* unregister anything (Python 3.11 has no ``track=False``):
  doing so would strip the publisher's registration and lose the
  crash-safety net the tracker provides.
* **Loss is recoverable.**  Attaching after the parent unlinked raises
  :class:`BroadcastLost`; the supervised runner catches it and retries
  the task with the original pickled instance (see
  ``run_supervised(on_retry=...)``), so a dropped broadcast degrades to
  today's pickle path instead of failing the run.

The handles pickle in a few hundred bytes regardless of instance size —
the ≥10x per-task byte reduction gated by
``benchmarks/bench_parallel_runtime.py``.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.core.clients import ClientSet, MeshClient
from repro.core.geometry import Point
from repro.core.grid import GridArea
from repro.core.problem import ProblemInstance
from repro.core.radio import CoverageRule, LinkRule
from repro.core.routers import MeshRouter, RouterFleet

__all__ = [
    "ArrayRef",
    "BroadcastLost",
    "ProblemRef",
    "attach_array",
    "attach_problem",
    "problem_nbytes",
    "publish_array",
    "publish_problem",
]


class BroadcastLost(RuntimeError):
    """A shared-memory segment named by a handle no longer exists.

    Raised on attach when the publishing runtime already unlinked (or
    never owned) the segment.  The supervisor treats it as a recoverable
    task error: the retry re-ships the original instance by pickle.
    """

    def __init__(self, name: str) -> None:
        self.segment = name
        super().__init__(
            f"shared-memory segment {name!r} is gone; the broadcast was "
            "released before the task attached (retry falls back to pickle)"
        )


@dataclass(frozen=True)
class ArrayRef:
    """A picklable handle to one published array.

    ``name`` is ``None`` for empty arrays (POSIX shared memory cannot be
    zero-sized): the payload is its shape alone and attach rebuilds it
    locally.
    """

    name: "str | None"
    shape: tuple[int, ...]
    dtype: str
    digest: str

    @property
    def nbytes(self) -> int:
        """Size of the referenced payload in bytes."""
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class ProblemRef:
    """A picklable handle to one broadcast :class:`ProblemInstance`.

    Everything except the two array payloads travels inline (grid
    dimensions and modeling rules are a few bytes); ``token`` is the
    combined content hash the runtime keys its registry by.
    """

    width: int
    height: int
    link_rule: LinkRule
    coverage_rule: CoverageRule
    radii: ArrayRef
    positions: ArrayRef
    token: str


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:20]


#: Same-process uniqueness counter for segment names (collision retry).
_serial = 0


def publish_array(array: np.ndarray) -> "tuple[ArrayRef, shared_memory.SharedMemory | None]":
    """Copy ``array`` into a fresh shared-memory segment, once.

    Returns the handle plus the owning :class:`SharedMemory` object (the
    caller keeps it alive and eventually unlinks it).  Non-contiguous
    views are compacted first — the segment always holds exactly
    ``nbytes`` of C-contiguous data, whatever layout the caller had.
    """
    global _serial
    arr = np.ascontiguousarray(array)
    digest = _digest(arr.tobytes())
    ref = ArrayRef(
        name=None, shape=tuple(arr.shape), dtype=str(arr.dtype), digest=digest
    )
    if arr.nbytes == 0:
        return ref, None
    shm = None
    while shm is None:
        _serial += 1
        name = f"repro-{digest[:12]}-{os.getpid()}-{_serial}"
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=arr.nbytes
            )
        except FileExistsError:  # repro-lint: disable=RL007
            # A concurrent runtime (or a stale segment from a killed
            # run) owns this name; the serial suffix walks past it.
            continue
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[...] = arr
    return ArrayRef(
        name=shm.name, shape=ref.shape, dtype=ref.dtype, digest=digest
    ), shm


def attach_array(ref: ArrayRef) -> "tuple[np.ndarray, shared_memory.SharedMemory | None]":
    """Map the referenced segment read-only, verifying its content hash.

    The returned array is backed directly by the shared mapping (zero
    copies); the returned :class:`SharedMemory` must stay referenced as
    long as the array is in use.  Raises :class:`BroadcastLost` when the
    segment is gone and ``ValueError`` when a name collision delivered
    different bytes than the handle promises.
    """
    if ref.name is None:
        empty = np.zeros(ref.shape, dtype=ref.dtype)
        empty.setflags(write=False)
        return empty, None
    try:
        shm = shared_memory.SharedMemory(name=ref.name)
    except FileNotFoundError:
        raise BroadcastLost(ref.name) from None
    # Attaching registers the name with the resource tracker again.
    # Forked pool workers share the parent's tracker, whose cache has
    # set semantics, so this is a harmless no-op there — and must stay
    # one: unregistering here would strip the *publisher's* entry and
    # lose the tracker's crash cleanup (see module docstring).
    array = np.ndarray(ref.shape, dtype=ref.dtype, buffer=shm.buf)
    if _digest(array.tobytes()) != ref.digest:
        shm.close()
        raise ValueError(
            f"shared-memory segment {ref.name!r} holds different bytes "
            "than its handle promises (stale or colliding segment)"
        )
    array.setflags(write=False)
    return array, shm


def problem_nbytes(problem: ProblemInstance) -> int:
    """Bytes of array payload a broadcast of ``problem`` would share."""
    return int(problem.fleet.radii.nbytes + problem.clients.positions.nbytes)


def publish_problem(
    problem: ProblemInstance,
) -> "tuple[ProblemRef, list[shared_memory.SharedMemory]]":
    """Publish an instance's array payloads; returns (handle, segments)."""
    radii_ref, radii_shm = publish_array(problem.fleet.radii)
    positions_ref, positions_shm = publish_array(problem.clients.positions)
    token = _digest(
        (
            f"{problem.grid.width}x{problem.grid.height}:"
            f"{problem.link_rule.value}:{problem.coverage_rule.value}:"
            f"{radii_ref.digest}:{positions_ref.digest}"
        ).encode()
    )
    ref = ProblemRef(
        width=problem.grid.width,
        height=problem.grid.height,
        link_rule=problem.link_rule,
        coverage_rule=problem.coverage_rule,
        radii=radii_ref,
        positions=positions_ref,
        token=token,
    )
    segments = [shm for shm in (radii_shm, positions_shm) if shm is not None]
    return ref, segments


def attach_problem(ref: ProblemRef) -> ProblemInstance:
    """Rebuild a :class:`ProblemInstance` around the shared payloads.

    The value objects (routers, clients) are reconstructed locally —
    they are identity data the engines never touch in bulk — while the
    hot arrays (``fleet.radii``, ``clients.positions``) are the shared
    read-only views themselves.  The segments are pinned to the instance
    (``_shm_segments``) so the mapping lives exactly as long as the
    attached problem does.
    """
    radii, radii_shm = attach_array(ref.radii)
    positions, positions_shm = attach_array(ref.positions)
    fleet = RouterFleet(
        tuple(
            MeshRouter(router_id=index, radius=float(radius))
            for index, radius in enumerate(radii)
        )
    )
    clients = ClientSet(
        tuple(
            MeshClient(client_id=index, cell=Point(int(x), int(y)))
            for index, (x, y) in enumerate(positions)
        )
    )
    # Swap the freshly derived arrays for the shared views: same values
    # (positions are integer cells, radii round-trip exactly), zero
    # extra copies per attached instance.
    object.__setattr__(fleet, "_radii", radii)
    object.__setattr__(clients, "_positions", positions)
    problem = ProblemInstance(
        grid=GridArea(ref.width, ref.height),
        fleet=fleet,
        clients=clients,
        link_rule=ref.link_rule,
        coverage_rule=ref.coverage_rule,
    )
    object.__setattr__(
        problem,
        "_shm_segments",
        tuple(shm for shm in (radii_shm, positions_shm) if shm is not None),
    )
    return problem
