"""The single registry of ``REPRO_*`` environment gates.

Every behavior knob this repository reads from the environment is
declared here, and every *read* goes through the typed accessors below
(the ``RL005`` lint invariant, :mod:`repro.lint`).  Before this module
existed the six gates were parsed at ~37 scattered ``os.environ`` call
sites, which made two failure modes silent: a typo'd variable
(``REPRO_COMPILD=0``) was simply ignored, and the accepted value
grammar ("is ``off`` falsy?") drifted between sites.

Gates
-----

========================  ======  =============================================
variable                  type    meaning
========================  ======  =============================================
``REPRO_COMPILED``        flag    compiled C kernel tier; ``0/false/off/no``
                                  disables it (default: enabled).  Read live —
                                  the supervisor flips it per task attempt to
                                  degrade a crashing shard to the numpy
                                  engines.
``REPRO_COMPILED_CACHE``  path    override directory for the on-demand kernel
                                  build cache (default: the package ``_build``
                                  directory, then a tempdir).
``REPRO_RUNTIME``         flag    the persistent parallel runtime (warm pools
                                  + shared-memory broadcast); ``0/false/off/
                                  no`` restores pool-per-call + full pickles.
``REPRO_SHM_MIN_BYTES``   int     instances whose array payload is smaller
                                  than this are pickled instead of broadcast
                                  (default ``65536``; invalid values fall back
                                  to the default).
``REPRO_SCALE``           choice  experiment scale preset (``quick``/
                                  ``paper``); validated by
                                  :func:`repro.experiments.config.current_scale`.
``REPRO_FAULT_INJECT``    spec    deterministic fault plan, e.g.
                                  ``kill@0,poison@2:1`` (grammar in
                                  :mod:`repro.resilience.faults`).
``REPRO_BENCH_JSON``      path    dev harness: directory for the benchmark
                                  ``BENCH_<name>.json`` records.
``REPRO_EXAMPLES_SMOKE``  flag    dev harness: ``1`` shrinks every example's
                                  effort knobs for the CI smoke job.
========================  ======  =============================================

The first six are runtime gates read by ``src/repro``; the last two
belong to the benchmark/examples harness but are registered so the
unknown-variable check below recognizes them.

Unknown variables
-----------------

Any ``REPRO_*`` variable present in the environment but absent from the
registry triggers a **one-time** :class:`RuntimeWarning` naming the
nearest known gate — a typo'd gate is now loud instead of a silent
no-op.  The check runs on the first accessor call per process (and can
be re-armed with :func:`reset_unknown_check`, which tests use).

Writes are deliberately out of scope: the only writers are the
supervisor's degradation/snapshot machinery and tests, both of which
must manipulate raw process environment for child processes to inherit.
"""

from __future__ import annotations

import difflib
import os
from dataclasses import dataclass

__all__ = [
    "Gate",
    "GATES",
    "bench_json_dir",
    "check_environment",
    "compiled_cache_override",
    "compiled_enabled",
    "examples_smoke",
    "fault_spec",
    "raw",
    "reset_unknown_check",
    "runtime_enabled",
    "scale_name",
    "shm_min_bytes",
]

#: Values that turn a flag gate off (everything else, including unset,
#: leaves it on).  One grammar for every flag — the drift this module
#: exists to prevent.
_FALSY = frozenset({"0", "false", "off", "no"})


@dataclass(frozen=True)
class Gate:
    """One registered environment gate."""

    name: str
    kind: str  # "flag" | "int" | "path" | "choice" | "spec"
    default: "str | None"
    description: str


GATES: "dict[str, Gate]" = {
    gate.name: gate
    for gate in (
        Gate(
            "REPRO_COMPILED",
            "flag",
            "1",
            "compiled C kernel engine tier (0/false/off/no disables)",
        ),
        Gate(
            "REPRO_COMPILED_CACHE",
            "path",
            None,
            "override directory for the kernel build cache",
        ),
        Gate(
            "REPRO_RUNTIME",
            "flag",
            "1",
            "persistent parallel runtime: warm pools + SHM broadcast",
        ),
        Gate(
            "REPRO_SHM_MIN_BYTES",
            "int",
            str(1 << 16),
            "minimum array payload (bytes) worth broadcasting over SHM",
        ),
        Gate(
            "REPRO_SCALE",
            "choice",
            None,
            "experiment scale preset (quick/paper)",
        ),
        Gate(
            "REPRO_FAULT_INJECT",
            "spec",
            None,
            "deterministic fault-injection plan (kind@index[:param],...)",
        ),
        Gate(
            "REPRO_BENCH_JSON",
            "path",
            None,
            "directory for benchmark BENCH_<name>.json records",
        ),
        Gate(
            "REPRO_EXAMPLES_SMOKE",
            "flag",
            None,
            "set to 1 to run examples at CI smoke scale",
        ),
    )
}

_checked = False


def check_environment(*, force: bool = False) -> "list[str]":
    """Warn once about ``REPRO_*`` variables no gate declares.

    Returns the unknown names (mostly for tests); the warning itself
    fires at most once per process unless ``force`` re-runs the scan.
    """
    global _checked
    if _checked and not force:
        return []
    _checked = True
    unknown = sorted(
        name
        for name in os.environ
        if name.startswith("REPRO_") and name not in GATES
    )
    if unknown:
        import warnings

        hints = []
        for name in unknown:
            close = difflib.get_close_matches(name, GATES, n=1)
            hint = f" (did you mean {close[0]}?)" if close else ""
            hints.append(f"{name}{hint}")
        warnings.warn(
            "unknown REPRO_* environment variable(s): "
            + ", ".join(hints)
            + "; known gates: "
            + ", ".join(sorted(GATES))
            + " — unknown variables are ignored",
            RuntimeWarning,
            stacklevel=3,
        )
    return unknown


def reset_unknown_check() -> None:
    """Re-arm the one-time unknown-variable warning (test helper)."""
    global _checked
    _checked = False


def raw(name: str) -> "str | None":
    """The raw environment value of a *registered* gate (or ``None``).

    The escape hatch for code that must ship or restore exact values —
    the supervisor's env snapshot, error messages quoting the setting.
    Unregistered names raise ``KeyError``: if a new gate is needed,
    declare it in :data:`GATES` first.
    """
    if name not in GATES:
        raise KeyError(
            f"{name!r} is not a registered REPRO_* gate; known: "
            + ", ".join(sorted(GATES))
        )
    check_environment()
    return os.environ.get(name)


def _flag(name: str) -> bool:
    check_environment()
    value = os.environ.get(name, "").strip().lower()
    return value not in _FALSY


def compiled_enabled() -> bool:
    """Live read of ``REPRO_COMPILED`` (default: enabled)."""
    return _flag("REPRO_COMPILED")


def compiled_cache_override() -> "str | None":
    """``REPRO_COMPILED_CACHE``, or ``None`` for the default cache dirs."""
    check_environment()
    return os.environ.get("REPRO_COMPILED_CACHE") or None


def runtime_enabled() -> bool:
    """Live read of ``REPRO_RUNTIME`` (default: enabled)."""
    return _flag("REPRO_RUNTIME")


def shm_min_bytes(default: int) -> int:
    """``REPRO_SHM_MIN_BYTES`` as a non-negative int, else ``default``."""
    check_environment()
    value = os.environ.get("REPRO_SHM_MIN_BYTES", "").strip()
    if not value:
        return default
    try:
        return max(0, int(value))
    except ValueError:
        return default


def scale_name(default: str) -> str:
    """``REPRO_SCALE`` normalized to lowercase, falling back to ``default``.

    Validation against the known presets stays with the consumer
    (:func:`repro.experiments.config.current_scale`), which owns the
    preset table.
    """
    check_environment()
    return os.environ.get("REPRO_SCALE", default).strip().lower()


def fault_spec() -> str:
    """The raw ``REPRO_FAULT_INJECT`` plan spec (stripped; may be empty)."""
    check_environment()
    return os.environ.get("REPRO_FAULT_INJECT", "").strip()


def bench_json_dir() -> "str | None":
    """``REPRO_BENCH_JSON``: where benchmark JSON records land."""
    check_environment()
    return os.environ.get("REPRO_BENCH_JSON") or None


def examples_smoke() -> bool:
    """Whether the examples should run at CI smoke scale."""
    check_environment()
    return os.environ.get("REPRO_EXAMPLES_SMOKE") == "1"
