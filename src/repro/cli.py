"""Command-line interface.

``wmn-placement`` exposes the library's main workflows:

* ``generate`` — materialize a benchmark instance to JSON.
* ``solve`` — run ANY registered solver (``family:variant``) on an
  instance; ``--list`` prints the registry.
* ``place`` / ``search`` / ``ga`` — familiar shorthands for the
  ``adhoc``, ``search`` and ``ga`` solver families (same registry
  underneath).
* ``scenario`` — unfold a dynamic scenario (client drift/churn, router
  outages, radio decay) and re-optimize each step with warm starts.
* ``scenario-live`` — serve a scenario's steps as live events under a
  per-event response SLA, with deadline-bounded solves and overload
  shedding (see :mod:`repro.anytime`).
* ``scenario-fleet`` — run a whole (scenario x solver x seed) portfolio
  in lockstep and print the aggregated report.
* ``reproduce`` — regenerate every table and figure of the paper.
* ``replicate`` — multi-seed replication of the headline comparisons.
* ``sweep`` — scaling sweeps around the paper's operating point.

Every command accepts ``--seed`` and prints deterministic results, and
every command that evaluates placements accepts
``--engine {auto,dense,sparse,compiled}`` to pick the evaluation engine
(``generate`` performs no evaluation, so it has no engine to pick).

All optimization commands resolve their method through the single
:mod:`repro.solvers` registry — there are no per-family code paths left
in this module.
"""

from __future__ import annotations

import argparse
import sys

from repro.adhoc.registry import available_methods
from repro.core.engine.dispatch import ENGINE_TIERS
from repro.distributions.registry import available_distributions
from repro.experiments.config import PAPER_SCALE, QUICK_SCALE
from repro.experiments.runner import run_all
from repro.instances.generator import InstanceSpec
from repro.instances.serializer import (
    load_instance,
    load_placement,
    save_instance,
    save_placement,
)
from repro.neighborhood.registry import available_movements
from repro.scenario import Scenario, ScenarioFleet, ScenarioRunner
from repro.solvers import available_solvers, make_solver, solver_families
from repro.viz.ascii_chart import render_chart
from repro.viz.ascii_map import render_evaluation
from repro.viz.timeline import render_fleet_report, render_timeline

__all__ = ["main", "build_parser"]

#: The evaluation-engine choice shared by every evaluating subcommand —
#: derived from the dispatch layer's single tier tuple so the CLI can
#: never drift from ``resolve_engine``'s contract.
ENGINE_CHOICES = ENGINE_TIERS

#: Scenario kinds the ``scenario`` subcommand can unfold.
SCENARIO_KINDS = ("drift", "churn", "outage", "degrade")


def _add_engine(parser: argparse.ArgumentParser) -> None:
    """The uniform ``--engine`` option (auto/dense/sparse/compiled)."""
    parser.add_argument(
        "--engine",
        default="auto",
        choices=ENGINE_CHOICES,
        help="evaluation engine: auto promotes to the compiled C kernels "
        "when a toolchain built them, else picks dense at paper scale "
        "and the spatial-grid sparse path at city scale (default: auto)",
    )


def _add_resilience(
    parser: argparse.ArgumentParser, *, timeout: bool = True
) -> None:
    """The uniform fault-tolerance knobs (see ``repro.resilience``)."""
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry a failed/crashed task up to N times with exponential "
        "backoff; a shard crashing under the compiled engine is retried "
        "with REPRO_COMPILED=0 (identical results)",
    )
    if timeout:
        parser.add_argument(
            "--task-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-task wall-clock budget under --workers; a hung "
            "worker is abandoned and its task retried in a fresh pool",
        )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="persist every completed cell into DIR (atomic JSON + "
        "manifest with seed provenance) so an interrupted run can resume",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="resume from a checkpoint directory: skip completed cells "
        "(one is recomputed and verified bit-identical) and keep "
        "checkpointing new ones there",
    )


def _resilience_policy(args: argparse.Namespace):
    """A ``RetryPolicy`` from the CLI flags, or ``None`` when untouched."""
    retries = getattr(args, "retries", None)
    task_timeout = getattr(args, "task_timeout", None)
    if retries is None and task_timeout is None:
        return None
    from repro.resilience import RetryPolicy

    return RetryPolicy(
        max_retries=retries if retries is not None else 3,
        timeout=task_timeout,
    )


def _print_supervision(report) -> None:
    """Surface recovery activity on stderr (quiet on clean runs)."""
    if report.failures or report.degraded:
        print(report.summary(), file=sys.stderr)


def _add_scenario_shape(parser: argparse.ArgumentParser) -> None:
    """The per-kind perturbation knobs, shared by scenario commands."""
    parser.add_argument(
        "--sigma", type=float, default=2.0, help="drift step size (kind=drift)"
    )
    parser.add_argument(
        "--fraction",
        type=float,
        default=0.1,
        help="churning client fraction (kind=churn)",
    )
    parser.add_argument(
        "--distribution",
        default="uniform",
        choices=available_distributions(),
        help="arrival distribution for churn (default: uniform)",
    )
    parser.add_argument(
        "--count", type=int, default=1, help="routers lost per step (kind=outage)"
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=0.9,
        help="radio decay factor per step (kind=degrade)",
    )


def _build_scenario(kind: str, problem, args: argparse.Namespace) -> Scenario:
    """One scenario of the given kind from the shared shape knobs."""
    if kind == "drift":
        return Scenario.client_drift(problem, args.steps, sigma=args.sigma)
    if kind == "churn":
        return Scenario.client_churn(
            problem,
            args.steps,
            fraction=args.fraction,
            distribution=args.distribution,
        )
    if kind == "outage":
        return Scenario.router_outages(problem, args.steps, count=args.count)
    if kind == "degrade":
        return Scenario.radio_degradation(
            problem, args.steps, factor=args.factor
        )
    raise ValueError(
        f"unknown scenario kind {kind!r}; known: {', '.join(SCENARIO_KINDS)}"
    )


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="wmn-placement",
        description=(
            "Mesh router placement in Wireless Mesh Networks: ad hoc and "
            "neighborhood search methods (Xhafa, Sanchez & Barolli, 2009)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate a benchmark instance as JSON"
    )
    generate.add_argument("output", help="path of the instance JSON to write")
    generate.add_argument(
        "--distribution",
        default="normal",
        choices=available_distributions(),
        help="client distribution (default: normal)",
    )
    generate.add_argument("--width", type=int, default=128)
    generate.add_argument("--height", type=int, default=128)
    generate.add_argument("--routers", type=int, default=64)
    generate.add_argument("--clients", type=int, default=192)
    generate.add_argument("--min-radius", type=float, default=1.5)
    generate.add_argument("--max-radius", type=float, default=7.0)
    generate.add_argument("--seed", type=int, default=0)

    solve = subparsers.add_parser(
        "solve",
        help="run any registered solver (family:variant) on an instance",
    )
    solve.add_argument(
        "instance", nargs="?", help="instance JSON (from 'generate')"
    )
    solve.add_argument(
        "--solver",
        default="search:swap",
        metavar="FAMILY[:VARIANT]",
        help="registry spec, e.g. adhoc:hotspot, tabu:swap, ga:corners "
        "(default: search:swap; see --list)",
    )
    solve.add_argument(
        "--budget",
        type=int,
        default=None,
        help="effort in the solver's native unit (phases / generations)",
    )
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--warm-from",
        metavar="PLACEMENT_JSON",
        help="warm-start from a saved placement instead of the solver's "
        "own initialization",
    )
    solve.add_argument("--output", help="write the best placement JSON here")
    solve.add_argument(
        "--render", action="store_true", help="print an ASCII map of the result"
    )
    solve.add_argument(
        "--list",
        action="store_true",
        help="list every registered solver spec and exit",
    )
    _add_engine(solve)

    place = subparsers.add_parser(
        "place", help="run one ad hoc placement method on an instance"
    )
    place.add_argument("instance", help="instance JSON (from 'generate')")
    place.add_argument(
        "--method",
        default="hotspot",
        choices=available_methods(),
        help="ad hoc method (default: hotspot)",
    )
    place.add_argument("--seed", type=int, default=0)
    place.add_argument("--output", help="write the placement JSON here")
    place.add_argument(
        "--render", action="store_true", help="print an ASCII map of the result"
    )
    _add_engine(place)

    search = subparsers.add_parser(
        "search", help="run neighborhood search on an instance"
    )
    search.add_argument("instance", help="instance JSON (from 'generate')")
    search.add_argument(
        "--movement",
        default="swap",
        choices=available_movements(),
        help="movement type (default: swap)",
    )
    search.add_argument(
        "--init",
        default="random",
        choices=available_methods(),
        help="ad hoc method generating the initial solution",
    )
    search.add_argument("--phases", type=int, default=64)
    search.add_argument("--candidates", type=int, default=16)
    search.add_argument("--seed", type=int, default=0)
    search.add_argument("--output", help="write the best placement JSON here")
    search.add_argument(
        "--render", action="store_true", help="print an ASCII map of the result"
    )
    search.add_argument(
        "--trace", action="store_true", help="print the phase-by-phase trace"
    )
    _add_engine(search)

    ga = subparsers.add_parser(
        "ga", help="run the genetic algorithm on an instance"
    )
    ga.add_argument("instance", help="instance JSON (from 'generate')")
    ga.add_argument(
        "--init",
        default="hotspot",
        choices=available_methods(),
        help="ad hoc method initializing the population",
    )
    ga.add_argument("--population", type=int, default=64)
    ga.add_argument("--generations", type=int, default=200)
    ga.add_argument("--seed", type=int, default=0)
    ga.add_argument("--output", help="write the best placement JSON here")
    ga.add_argument(
        "--render", action="store_true", help="print an ASCII map of the result"
    )
    _add_engine(ga)

    scenario = subparsers.add_parser(
        "scenario",
        help="unfold a dynamic scenario and re-optimize each step "
        "(warm-started by default)",
    )
    scenario.add_argument("instance", help="instance JSON (from 'generate')")
    scenario.add_argument(
        "--kind",
        default="drift",
        choices=SCENARIO_KINDS,
        help="what changes per step (default: drift)",
    )
    scenario.add_argument(
        "--steps", type=int, default=10, help="number of perturbation steps"
    )
    scenario.add_argument(
        "--solver",
        default="search:swap",
        metavar="FAMILY[:VARIANT]",
        help="registry spec re-optimizing each step (default: search:swap)",
    )
    scenario.add_argument(
        "--budget", type=int, default=None, help="per-step solver budget"
    )
    scenario.add_argument(
        "--candidates",
        type=int,
        default=16,
        help="per-phase effort of the step solver (candidates, or moves "
        "per phase for annealing; default 16)",
    )
    scenario.add_argument(
        "--stall",
        type=int,
        default=8,
        help="stop a search/multistart step after this many non-improving "
        "phases — what lets warm-started steps finish early (default 8; "
        "0 disables)",
    )
    _add_scenario_shape(scenario)
    scenario.add_argument("--seed", type=int, default=0)
    scenario.add_argument(
        "--cold",
        action="store_true",
        help="re-solve every step from scratch instead of warm-starting",
    )
    scenario.add_argument(
        "--chart",
        action="store_true",
        help="also draw the fitness-vs-step curve",
    )
    _add_engine(scenario)
    _add_resilience(scenario, timeout=False)

    live = subparsers.add_parser(
        "scenario-live",
        help="serve a scenario's steps as live events under a per-event "
        "response SLA, shedding load when the re-optimizer falls behind",
    )
    live.add_argument("instance", help="instance JSON (from 'generate')")
    live.add_argument(
        "--kind",
        default="drift",
        choices=SCENARIO_KINDS,
        help="what changes per event (default: drift)",
    )
    live.add_argument(
        "--steps", type=int, default=10, help="number of perturbation events"
    )
    live.add_argument(
        "--solver",
        default="search:swap",
        metavar="FAMILY[:VARIANT]",
        help="registry spec re-optimizing each event (default: search:swap)",
    )
    live.add_argument(
        "--budget", type=int, default=None, help="per-event solver budget"
    )
    live.add_argument(
        "--candidates",
        type=int,
        default=16,
        help="per-phase effort of the event solver (default 16)",
    )
    live.add_argument(
        "--stall",
        type=int,
        default=8,
        help="stop a search/multistart event after this many non-improving "
        "phases (default 8; 0 disables)",
    )
    live.add_argument(
        "--sla",
        type=float,
        default=0.5,
        help="per-event response SLA in seconds (default 0.5)",
    )
    live.add_argument(
        "--interval",
        type=float,
        default=None,
        help="seconds between event arrivals (default: the SLA)",
    )
    live.add_argument(
        "--sim",
        type=float,
        default=None,
        metavar="SECONDS_PER_EVAL",
        help="run on a simulated clock charging this many seconds per "
        "evaluation — fully deterministic (default: real clock)",
    )
    live.add_argument(
        "--deadline-fraction",
        type=float,
        default=0.9,
        help="fraction of the remaining SLA granted to each solve's "
        "deadline (default 0.9)",
    )
    live.add_argument(
        "--baseline",
        action="store_true",
        help="also run the unbounded scenario walk and report per-event "
        "fitness regret against it",
    )
    _add_scenario_shape(live)
    live.add_argument("--seed", type=int, default=0)
    _add_engine(live)

    fleet = subparsers.add_parser(
        "scenario-fleet",
        help="run a (scenario x solver x seed) portfolio in lockstep and "
        "print mean/std tables, regret and recovery curves",
    )
    fleet.add_argument("instance", help="instance JSON (from 'generate')")
    fleet.add_argument(
        "--kinds",
        default="drift,outage",
        help="comma-separated scenario kinds to put on the grid "
        f"(subset of {','.join(SCENARIO_KINDS)}; default: drift,outage)",
    )
    fleet.add_argument(
        "--steps", type=int, default=6, help="perturbation steps per scenario"
    )
    fleet.add_argument(
        "--solvers",
        default="search:swap",
        metavar="SPEC[,SPEC...]",
        help="comma-separated registry specs forming the solver axis "
        "(default: search:swap)",
    )
    fleet.add_argument(
        "--seeds", type=int, default=8, help="replicates per grid cell"
    )
    fleet.add_argument(
        "--budget", type=int, default=None, help="per-step solver budget"
    )
    fleet.add_argument(
        "--warm-budget",
        type=int,
        default=None,
        help="budget for warm-started steps 1..n (defaults to --budget)",
    )
    fleet.add_argument(
        "--arms",
        default="warm",
        choices=["warm", "cold", "both"],
        help="re-optimization arms; 'both' runs warm and cold on identical "
        "seeds and adds the regret table (default: warm)",
    )
    fleet.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan replicate shards out over a process pool "
        "(identical results at any count)",
    )
    fleet.add_argument(
        "--candidates",
        type=int,
        default=16,
        help="per-phase effort of the step solvers (default 16)",
    )
    fleet.add_argument(
        "--stall",
        type=int,
        default=8,
        help="stop a search/multistart step after this many non-improving "
        "phases (default 8; 0 disables)",
    )
    _add_scenario_shape(fleet)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--chart",
        action="store_true",
        help="also draw the mean recovery curves per scenario",
    )
    _add_engine(fleet)
    _add_resilience(fleet)

    reproduce = subparsers.add_parser(
        "reproduce", help="regenerate every table and figure of the paper"
    )
    reproduce.add_argument(
        "--scale",
        default="quick",
        choices=["quick", "paper"],
        help="effort level (default: quick)",
    )
    reproduce.add_argument("--seed", type=int, default=1)
    reproduce.add_argument(
        "--charts",
        action="store_true",
        help="also draw each figure as an ASCII chart",
    )
    reproduce.add_argument(
        "--csv-dir", help="also write one CSV per table/figure into this directory"
    )
    _add_engine(reproduce)

    replicate = subparsers.add_parser(
        "replicate",
        help="multi-seed replication of the stand-alone and movement studies",
    )
    replicate.add_argument("instance", help="instance JSON (from 'generate')")
    replicate.add_argument("--seeds", type=int, default=5)
    replicate.add_argument("--phases", type=int, default=30)
    replicate.add_argument("--candidates", type=int, default=16)
    replicate.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan seed shards out over a process pool (identical results; "
        "chains still run in lockstep within each process)",
    )
    _add_engine(replicate)
    _add_resilience(replicate)

    sweep = subparsers.add_parser(
        "sweep", help="scaling sweeps around the paper's operating point"
    )
    sweep.add_argument(
        "--parameter",
        default="routers",
        choices=["routers", "radius"],
        help="what to sweep (default: routers)",
    )
    sweep.add_argument(
        "--values",
        default=None,
        help="comma-separated parameter values (e.g. 16,32,64)",
    )
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument(
        "--restarts",
        type=int,
        default=1,
        help="best-of-R restart portfolio per movement at every sweep "
        "point (lockstep multi-start; default 1)",
    )
    _add_engine(sweep)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "solve": _cmd_solve,
        "place": _cmd_place,
        "search": _cmd_search,
        "ga": _cmd_ga,
        "scenario": _cmd_scenario,
        "scenario-live": _cmd_scenario_live,
        "scenario-fleet": _cmd_scenario_fleet,
        "reproduce": _cmd_reproduce,
        "replicate": _cmd_replicate,
        "sweep": _cmd_sweep,
    }
    from repro.resilience import CheckpointError, RetryExhaustedError

    try:
        return handlers[args.command](args)
    except (
        ValueError,
        OSError,
        CheckpointError,
        RetryExhaustedError,
    ) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------

def _cmd_generate(args: argparse.Namespace) -> int:
    spec = InstanceSpec(
        name=f"cli-{args.distribution}",
        width=args.width,
        height=args.height,
        n_routers=args.routers,
        n_clients=args.clients,
        distribution=args.distribution,
        min_radius=args.min_radius,
        max_radius=args.max_radius,
        seed=args.seed,
    )
    problem = spec.generate()
    save_instance(problem, args.output)
    print(f"wrote {args.output}: {spec.describe()}")
    return 0


def _report_solve(result, problem, args, unit: str = "phases") -> None:
    """Shared output of the solver-backed shim commands."""
    if args.render:
        print(render_evaluation(problem, result.best))
    else:
        print(result.best.summary())
    print(f"({result.n_phases} {unit}, {result.n_evaluations} evaluations)")
    if args.output:
        save_placement(result.best.placement, args.output)
        print(f"wrote {args.output}")


def _cmd_solve(args: argparse.Namespace) -> int:
    if args.list:
        print("solver families:")
        for family, description in solver_families().items():
            print(f"  {family:12s} {description}")
        print("specs:")
        for spec in available_solvers():
            print(f"  {spec}")
        return 0
    if not args.instance:
        raise ValueError("an instance JSON is required (or use --list)")
    problem = load_instance(args.instance)
    solver = make_solver(args.solver)
    warm_start = load_placement(args.warm_from) if args.warm_from else None
    result = solver.solve(
        problem,
        seed=args.seed,
        budget=args.budget,
        warm_start=warm_start,
        engine=args.engine,
    )
    print(result.summary())
    if args.render:
        print(render_evaluation(problem, result.best))
    if args.output:
        save_placement(result.best.placement, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_place(args: argparse.Namespace) -> int:
    problem = load_instance(args.instance)
    solver = make_solver(f"adhoc:{args.method}")
    result = solver.solve(problem, seed=args.seed, engine=args.engine)
    if args.render:
        print(render_evaluation(problem, result.best))
    else:
        print(result.best.summary())
    if args.output:
        save_placement(result.best.placement, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    problem = load_instance(args.instance)
    solver = make_solver(
        f"search:{args.movement}",
        init=args.init,
        n_candidates=args.candidates,
    )
    result = solver.solve(
        problem, seed=args.seed, budget=args.phases, engine=args.engine
    )
    if args.trace:
        for record in result.trace:
            marker = "*" if record.improved else " "
            print(
                f"phase {record.phase:4d}{marker} giant={record.giant_size:4d} "
                f"coverage={record.covered_clients:4d} "
                f"fitness={record.fitness:.4f}"
            )
    _report_solve(result, problem, args)
    return 0


def _cmd_ga(args: argparse.Namespace) -> int:
    problem = load_instance(args.instance)
    solver = make_solver(f"ga:{args.init}", population_size=args.population)
    result = solver.solve(
        problem, seed=args.seed, budget=args.generations, engine=args.engine
    )
    _report_solve(result, problem, args, unit="generations")
    return 0


def _scenario_solver_kwargs(spec: str, candidates: int, stall: int) -> dict:
    """Map the scenario effort flags onto the family's native knobs.

    Stall-based early stopping only exists in the best-neighbor families
    (``search``/``multistart``); SA and tabu always run their full phase
    budget, so their warm steps save time via ``--budget`` instead.
    """
    family = spec.partition(":")[0]
    if family in ("search", "multistart"):
        return {
            "n_candidates": candidates,
            "stall_phases": stall if stall > 0 else None,
        }
    if family == "tabu":
        return {"n_candidates": candidates}
    if family == "annealing":
        return {"moves_per_phase": candidates}
    print(
        f"note: --candidates/--stall do not apply to {family} solvers; "
        "using the family's own defaults",
        file=sys.stderr,
    )
    return {}


def _cmd_scenario(args: argparse.Namespace) -> int:
    if args.steps <= 0:
        raise ValueError(f"--steps must be positive, got {args.steps}")
    problem = load_instance(args.instance)
    scenario = _build_scenario(args.kind, problem, args)
    runner = ScenarioRunner(
        args.solver,
        budget=args.budget,
        warm=not args.cold,
        engine=args.engine,
        policy=_resilience_policy(args),
        **_scenario_solver_kwargs(args.solver, args.candidates, args.stall),
    )
    from repro.resilience import SupervisionReport

    supervision = SupervisionReport()
    outcome = runner.run(
        scenario,
        seed=args.seed,
        checkpoint=args.checkpoint,
        resume_from=args.resume,
        report=supervision,
    )
    _print_supervision(supervision)
    print(render_timeline(outcome))
    if args.chart:
        print(
            render_chart(
                {
                    outcome.solver_name: [
                        (row["step"], row["fitness"])
                        for row in outcome.timeline()
                    ]
                },
                x_label="step",
                y_label="fitness",
            )
        )
    return 0


def _cmd_scenario_live(args: argparse.Namespace) -> int:
    if args.steps <= 0:
        raise ValueError(f"--steps must be positive, got {args.steps}")
    from repro.anytime import LiveRunner
    from repro.viz import render_live_report

    problem = load_instance(args.instance)
    scenario = _build_scenario(args.kind, problem, args)
    solver_kwargs = _scenario_solver_kwargs(
        args.solver, args.candidates, args.stall
    )
    runner = LiveRunner(
        args.solver,
        sla=args.sla,
        interval=args.interval,
        budget=args.budget,
        engine=args.engine,
        seconds_per_evaluation=args.sim,
        deadline_fraction=args.deadline_fraction,
        **solver_kwargs,
    )
    report = runner.run(scenario, seed=args.seed)
    baseline = None
    if args.baseline:
        baseline = ScenarioRunner(
            args.solver,
            budget=args.budget,
            engine=args.engine,
            **solver_kwargs,
        ).run(scenario, seed=args.seed)
    print(render_live_report(report, baseline=baseline))
    return 0


def _cmd_scenario_fleet(args: argparse.Namespace) -> int:
    if args.steps <= 0:
        raise ValueError(f"--steps must be positive, got {args.steps}")
    kinds = [kind.strip() for kind in args.kinds.split(",") if kind.strip()]
    if not kinds:
        raise ValueError("--kinds needs at least one scenario kind")
    specs = [spec.strip() for spec in args.solvers.split(",") if spec.strip()]
    if not specs:
        raise ValueError("--solvers needs at least one registry spec")
    problem = load_instance(args.instance)
    scenarios = [_build_scenario(kind, problem, args) for kind in kinds]
    solvers = [
        (spec, _scenario_solver_kwargs(spec, args.candidates, args.stall))
        for spec in specs
    ]
    fleet = ScenarioFleet(
        scenarios,
        solvers,
        n_seeds=args.seeds,
        budget=args.budget,
        warm_budget=args.warm_budget,
        warm=args.arms,
        engine=args.engine,
        workers=args.workers,
        policy=_resilience_policy(args),
    )
    from repro.resilience import SupervisionReport

    supervision = SupervisionReport()
    report = fleet.run(
        seed=args.seed,
        checkpoint=args.checkpoint,
        resume_from=args.resume,
        report=supervision,
    )
    _print_supervision(supervision)
    print(render_fleet_report(report, chart=args.chart))
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    scale = PAPER_SCALE if args.scale == "paper" else QUICK_SCALE
    report = run_all(scale=scale, seed=args.seed, engine=args.engine)
    print(report.render_text())
    if args.charts:
        for figure in report.figures:
            print(f"Figure {figure.figure_number} — {figure.title}")
            print(
                render_chart(
                    {
                        series.label: list(zip(series.x, series.giant_sizes))
                        for series in figure.series
                    },
                    x_label=figure.x_label,
                    y_label="giant",
                )
            )
            print()
    if args.csv_dir:
        written = report.save_csvs(args.csv_dir)
        for path in written:
            print(f"wrote {path}")
    return 0


def _cmd_replicate(args: argparse.Namespace) -> int:
    from repro.experiments.replication import (
        format_replication,
        replicate_movements,
        replicate_standalone,
    )

    # Replication needs a generation recipe; rebuild one matching the
    # instance's frame (the radio interval is taken from the actual
    # fleet, the client law defaults to Normal).
    problem = load_instance(args.instance)
    radii = problem.fleet.radii
    spec = InstanceSpec(
        name="cli-replication",
        width=problem.grid.width,
        height=problem.grid.height,
        n_routers=problem.n_routers,
        n_clients=problem.n_clients,
        min_radius=float(radii.min()),
        max_radius=float(radii.max()),
        link_rule=problem.link_rule,
        coverage_rule=problem.coverage_rule,
    )
    from repro.resilience import SupervisionReport

    import os

    # The two studies checkpoint into sibling subdirectories (each keeps
    # its own manifest).  A run interrupted during the first study has
    # no second subdirectory yet, so --resume degrades to fresh
    # checkpointing for a study whose checkpoint never started.
    def _study_dirs(name: str) -> tuple["str | None", "str | None"]:
        checkpoint = (
            os.path.join(args.checkpoint, name) if args.checkpoint else None
        )
        resume = os.path.join(args.resume, name) if args.resume else None
        if resume is not None and not os.path.isfile(
            os.path.join(resume, "manifest.json")
        ):
            # The run was interrupted before this study checkpointed
            # anything: recompute it fresh (into the same directory)
            # instead of refusing the resume of the *other* study.
            return resume, None
        return checkpoint, resume

    policy = _resilience_policy(args)
    supervision = SupervisionReport()
    checkpoint, resume = _study_dirs("standalone")
    standalone = replicate_standalone(
        spec,
        n_seeds=args.seeds,
        workers=args.workers,
        engine=args.engine,
        policy=policy,
        checkpoint=checkpoint,
        resume_from=resume,
        report=supervision,
    )
    print(format_replication(standalone, "stand-alone ad hoc methods"))
    checkpoint, resume = _study_dirs("movements")
    movements = replicate_movements(
        spec,
        n_seeds=args.seeds,
        n_candidates=args.candidates,
        max_phases=args.phases,
        workers=args.workers,
        engine=args.engine,
        policy=policy,
        checkpoint=checkpoint,
        resume_from=resume,
        report=supervision,
    )
    print(format_replication(movements, "neighborhood search movements"))
    _print_supervision(supervision)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweeps import (
        format_sweep,
        sweep_radio_range,
        sweep_router_count,
    )
    from repro.instances.catalog import paper_normal

    base = paper_normal()
    if args.parameter == "routers":
        values = (
            tuple(int(v) for v in args.values.split(","))
            if args.values
            else (16, 32, 64)
        )
        result = sweep_router_count(
            base,
            counts=values,
            seed=args.seed,
            n_restarts=args.restarts,
            engine=args.engine,
        )
    else:
        values = (
            tuple(float(v) for v in args.values.split(","))
            if args.values
            else (4.0, 7.0, 12.0)
        )
        result = sweep_radio_range(
            base,
            max_radii=values,
            seed=args.seed,
            n_restarts=args.restarts,
            engine=args.engine,
        )
    print(format_sweep(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
