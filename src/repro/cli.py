"""Command-line interface.

``wmn-placement`` exposes the library's main workflows:

* ``generate`` — materialize a benchmark instance to JSON.
* ``place`` — run one ad hoc method on an instance and report metrics.
* ``search`` — run neighborhood search (swap or random movement).
* ``ga`` — run the genetic algorithm with a chosen initializer.
* ``reproduce`` — regenerate every table and figure of the paper.
* ``replicate`` — multi-seed replication of the headline comparisons.
* ``sweep`` — scaling sweeps around the paper's operating point.

Every command accepts ``--seed`` and prints deterministic results.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.adhoc.registry import available_methods, make_method
from repro.core.evaluation import Evaluator
from repro.distributions.registry import available_distributions
from repro.experiments.config import PAPER_SCALE, QUICK_SCALE
from repro.experiments.runner import run_all
from repro.genetic.engine import GAConfig, GeneticAlgorithm
from repro.genetic.initializers import AdHocInitializer
from repro.instances.generator import InstanceSpec
from repro.instances.serializer import load_instance, save_instance, save_placement
from repro.neighborhood.registry import available_movements, make_movement
from repro.neighborhood.search import NeighborhoodSearch
from repro.viz.ascii_chart import render_chart
from repro.viz.ascii_map import render_evaluation

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="wmn-placement",
        description=(
            "Mesh router placement in Wireless Mesh Networks: ad hoc and "
            "neighborhood search methods (Xhafa, Sanchez & Barolli, 2009)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate a benchmark instance as JSON"
    )
    generate.add_argument("output", help="path of the instance JSON to write")
    generate.add_argument(
        "--distribution",
        default="normal",
        choices=available_distributions(),
        help="client distribution (default: normal)",
    )
    generate.add_argument("--width", type=int, default=128)
    generate.add_argument("--height", type=int, default=128)
    generate.add_argument("--routers", type=int, default=64)
    generate.add_argument("--clients", type=int, default=192)
    generate.add_argument("--min-radius", type=float, default=1.5)
    generate.add_argument("--max-radius", type=float, default=7.0)
    generate.add_argument("--seed", type=int, default=0)

    place = subparsers.add_parser(
        "place", help="run one ad hoc placement method on an instance"
    )
    place.add_argument("instance", help="instance JSON (from 'generate')")
    place.add_argument(
        "--method",
        default="hotspot",
        choices=available_methods(),
        help="ad hoc method (default: hotspot)",
    )
    place.add_argument("--seed", type=int, default=0)
    place.add_argument("--output", help="write the placement JSON here")
    place.add_argument(
        "--render", action="store_true", help="print an ASCII map of the result"
    )

    search = subparsers.add_parser(
        "search", help="run neighborhood search on an instance"
    )
    search.add_argument("instance", help="instance JSON (from 'generate')")
    search.add_argument(
        "--movement",
        default="swap",
        choices=available_movements(),
        help="movement type (default: swap)",
    )
    search.add_argument(
        "--init",
        default="random",
        choices=available_methods(),
        help="ad hoc method generating the initial solution",
    )
    search.add_argument("--phases", type=int, default=64)
    search.add_argument("--candidates", type=int, default=16)
    search.add_argument("--seed", type=int, default=0)
    search.add_argument("--output", help="write the best placement JSON here")
    search.add_argument(
        "--render", action="store_true", help="print an ASCII map of the result"
    )
    search.add_argument(
        "--trace", action="store_true", help="print the phase-by-phase trace"
    )

    ga = subparsers.add_parser(
        "ga", help="run the genetic algorithm on an instance"
    )
    ga.add_argument("instance", help="instance JSON (from 'generate')")
    ga.add_argument(
        "--init",
        default="hotspot",
        choices=available_methods(),
        help="ad hoc method initializing the population",
    )
    ga.add_argument("--population", type=int, default=64)
    ga.add_argument("--generations", type=int, default=200)
    ga.add_argument("--seed", type=int, default=0)
    ga.add_argument("--output", help="write the best placement JSON here")
    ga.add_argument(
        "--render", action="store_true", help="print an ASCII map of the result"
    )

    reproduce = subparsers.add_parser(
        "reproduce", help="regenerate every table and figure of the paper"
    )
    reproduce.add_argument(
        "--scale",
        default="quick",
        choices=["quick", "paper"],
        help="effort level (default: quick)",
    )
    reproduce.add_argument("--seed", type=int, default=1)
    reproduce.add_argument(
        "--charts",
        action="store_true",
        help="also draw each figure as an ASCII chart",
    )
    reproduce.add_argument(
        "--csv-dir", help="also write one CSV per table/figure into this directory"
    )

    replicate = subparsers.add_parser(
        "replicate",
        help="multi-seed replication of the stand-alone and movement studies",
    )
    replicate.add_argument("instance", help="instance JSON (from 'generate')")
    replicate.add_argument("--seeds", type=int, default=5)
    replicate.add_argument("--phases", type=int, default=30)
    replicate.add_argument("--candidates", type=int, default=16)
    replicate.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan seed shards out over a process pool (identical results; "
        "chains still run in lockstep within each process)",
    )

    sweep = subparsers.add_parser(
        "sweep", help="scaling sweeps around the paper's operating point"
    )
    sweep.add_argument(
        "--parameter",
        default="routers",
        choices=["routers", "radius"],
        help="what to sweep (default: routers)",
    )
    sweep.add_argument(
        "--values",
        default=None,
        help="comma-separated parameter values (e.g. 16,32,64)",
    )
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument(
        "--restarts",
        type=int,
        default=1,
        help="best-of-R restart portfolio per movement at every sweep "
        "point (lockstep multi-start; default 1)",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "place": _cmd_place,
        "search": _cmd_search,
        "ga": _cmd_ga,
        "reproduce": _cmd_reproduce,
        "replicate": _cmd_replicate,
        "sweep": _cmd_sweep,
    }
    try:
        return handlers[args.command](args)
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------

def _cmd_generate(args: argparse.Namespace) -> int:
    spec = InstanceSpec(
        name=f"cli-{args.distribution}",
        width=args.width,
        height=args.height,
        n_routers=args.routers,
        n_clients=args.clients,
        distribution=args.distribution,
        min_radius=args.min_radius,
        max_radius=args.max_radius,
        seed=args.seed,
    )
    problem = spec.generate()
    save_instance(problem, args.output)
    print(f"wrote {args.output}: {spec.describe()}")
    return 0


def _cmd_place(args: argparse.Namespace) -> int:
    problem = load_instance(args.instance)
    method = make_method(args.method)
    rng = np.random.default_rng(args.seed)
    placement = method.place(problem, rng)
    evaluation = Evaluator(problem).evaluate(placement)
    if args.render:
        print(render_evaluation(problem, evaluation))
    else:
        print(evaluation.summary())
    if args.output:
        save_placement(placement, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    problem = load_instance(args.instance)
    rng = np.random.default_rng(args.seed)
    initial = make_method(args.init).place(problem, rng)
    evaluator = Evaluator(problem)
    search = NeighborhoodSearch(
        movement=make_movement(args.movement),
        n_candidates=args.candidates,
        max_phases=args.phases,
        stall_phases=None,
    )
    result = search.run(evaluator, initial, rng)
    if args.trace:
        for record in result.trace:
            marker = "*" if record.improved else " "
            print(
                f"phase {record.phase:4d}{marker} giant={record.giant_size:4d} "
                f"coverage={record.covered_clients:4d} "
                f"fitness={record.fitness:.4f}"
            )
    if args.render:
        print(render_evaluation(problem, result.best))
    else:
        print(result.best.summary())
    print(f"({result.n_phases} phases, {result.n_evaluations} evaluations)")
    if args.output:
        save_placement(result.best.placement, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_ga(args: argparse.Namespace) -> int:
    problem = load_instance(args.instance)
    rng = np.random.default_rng(args.seed)
    evaluator = Evaluator(problem)
    ga = GeneticAlgorithm(
        GAConfig(
            population_size=args.population, n_generations=args.generations
        )
    )
    result = ga.run(evaluator, AdHocInitializer(make_method(args.init)), rng)
    if args.render:
        print(render_evaluation(problem, result.best))
    else:
        print(result.best.summary())
    print(f"({result.n_generations} generations, {result.n_evaluations} evaluations)")
    if args.output:
        save_placement(result.best.placement, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    scale = PAPER_SCALE if args.scale == "paper" else QUICK_SCALE
    report = run_all(scale=scale, seed=args.seed)
    print(report.render_text())
    if args.charts:
        for figure in report.figures:
            print(f"Figure {figure.figure_number} — {figure.title}")
            print(
                render_chart(
                    {
                        series.label: list(zip(series.x, series.giant_sizes))
                        for series in figure.series
                    },
                    x_label=figure.x_label,
                    y_label="giant",
                )
            )
            print()
    if args.csv_dir:
        written = report.save_csvs(args.csv_dir)
        for path in written:
            print(f"wrote {path}")
    return 0


def _cmd_replicate(args: argparse.Namespace) -> int:
    from repro.experiments.replication import (
        format_replication,
        replicate_movements,
        replicate_standalone,
    )
    from repro.instances.serializer import load_instance as _load

    # Replication needs a generation recipe; rebuild one matching the
    # instance's frame (the radio interval is taken from the actual
    # fleet, the client law defaults to Normal).
    problem = _load(args.instance)
    radii = problem.fleet.radii
    spec = InstanceSpec(
        name="cli-replication",
        width=problem.grid.width,
        height=problem.grid.height,
        n_routers=problem.n_routers,
        n_clients=problem.n_clients,
        min_radius=float(radii.min()),
        max_radius=float(radii.max()),
        link_rule=problem.link_rule,
        coverage_rule=problem.coverage_rule,
    )
    standalone = replicate_standalone(
        spec, n_seeds=args.seeds, workers=args.workers
    )
    print(format_replication(standalone, "stand-alone ad hoc methods"))
    movements = replicate_movements(
        spec,
        n_seeds=args.seeds,
        n_candidates=args.candidates,
        max_phases=args.phases,
        workers=args.workers,
    )
    print(format_replication(movements, "neighborhood search movements"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweeps import (
        format_sweep,
        sweep_radio_range,
        sweep_router_count,
    )
    from repro.instances.catalog import paper_normal

    base = paper_normal()
    if args.parameter == "routers":
        values = (
            tuple(int(v) for v in args.values.split(","))
            if args.values
            else (16, 32, 64)
        )
        result = sweep_router_count(
            base, counts=values, seed=args.seed, n_restarts=args.restarts
        )
    else:
        values = (
            tuple(float(v) for v in args.values.split(","))
            if args.values
            else (4.0, 7.0, 12.0)
        )
        result = sweep_radio_range(
            base, max_radii=values, seed=args.seed, n_restarts=args.restarts
        )
    print(format_sweep(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
