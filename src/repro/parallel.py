"""Process fan-out shared by every ``workers=`` harness.

Three layers run portfolios over a ``ProcessPoolExecutor``: the lockstep
multi-chain engine (:mod:`repro.neighborhood.multichain`), the
replication harness (:mod:`repro.experiments.replication`) and the
scenario fleet (:mod:`repro.scenario.fleet`).  They all shard the same
way — contiguous, order-preserving splits, executed serially when
``workers`` is ``None``/1 and flattened back in submission order — so
the split and the pool plumbing live here once.  One implementation also
means one determinism argument: a shard boundary can never change which
seed owns which stream, only which process advances it.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

import numpy as np

__all__ = ["shard_slices", "seed_shards", "run_tasks"]


def _limit_worker_threads() -> None:
    """Pin each pool worker to one compute thread.

    The compiled engine's kernels parallelize with OpenMP; with the
    process pool already saturating the cores, nested threading would
    oversubscribe them.  Runs once per worker process at pool start.
    """
    os.environ["OMP_NUM_THREADS"] = "1"
    try:
        from repro.core.engine import compiled

        if compiled.is_available():
            compiled.set_num_threads(1)
    except Exception:
        # Thread pinning is a performance nicety; a worker that cannot
        # build or load the kernels simply runs the numpy paths.
        pass


def shard_slices(count: int, shards: int) -> list[slice]:
    """Contiguous, order-preserving split of ``count`` items."""
    shards = min(shards, count)
    bounds = np.linspace(0, count, shards + 1).astype(int)
    return [
        slice(int(bounds[i]), int(bounds[i + 1]))
        for i in range(shards)
        if bounds[i] < bounds[i + 1]
    ]


def seed_shards(n_seeds: int, workers: "int | None") -> list[range]:
    """Contiguous seed ranges: one per worker slot (one total when serial)."""
    if workers is None or workers <= 1 or n_seeds <= 1:
        return [range(n_seeds)]
    return [
        range(part.start, part.stop) for part in shard_slices(n_seeds, workers)
    ]


def run_tasks(
    runner: Callable[[object], Sequence], tasks: list, workers: "int | None"
) -> list:
    """Run shard tasks serially or over a process pool, flattening in order.

    ``runner`` must be a top-level function and every task picklable when
    ``workers > 1``.  Results come back in task-submission order whatever
    the pool's scheduling, so callers can slice the flat list by shard
    arithmetic alone.
    """
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be a positive int or None, got {workers}")
    if workers is None or workers == 1:
        shards = [runner(task) for task in tasks]
    else:
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_limit_worker_threads
        ) as pool:
            shards = list(pool.map(runner, tasks))
    return [row for shard in shards for row in shard]
