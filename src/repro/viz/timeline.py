"""Terminal rendering of dynamic-scenario runs.

A scenario run is a *timeline*: per step, what changed, what the
re-optimizer found and what it cost.  :func:`render_timeline` draws one
aligned row per step with an inline fitness bar, so degradation events
(outages, radio decay) and the re-optimizer's recovery are visible at a
glance; :func:`render_fitness_chart` plots the warm/cold fitness curves
of one or more runs through the shared ASCII chart.
"""

from __future__ import annotations

from typing import Iterable

from repro.viz.ascii_chart import render_chart

__all__ = ["render_timeline", "render_fitness_chart"]

#: Width of the inline fitness bar, in characters.
_BAR_WIDTH = 20


def _bar(fitness: float) -> str:
    filled = max(0, min(_BAR_WIDTH, int(round(fitness * _BAR_WIDTH))))
    return "#" * filled + "." * (_BAR_WIDTH - filled)


def render_timeline(result) -> str:
    """One aligned text row per scenario step.

    ``result`` is a :class:`~repro.scenario.runner.ScenarioResult` (or
    anything exposing its ``timeline()`` records).  Columns: step, the
    start mode, giant/coverage against their step-local totals, fitness
    with a bar, the effort spent, and the event that led into the step.
    """
    rows = result.timeline()
    header = (
        f"{'step':>4s}  {'start':5s} {'giant':>9s} {'coverage':>9s} "
        f"{'fitness':>8s} {'':{_BAR_WIDTH}s} {'phases':>6s} {'evals':>7s}  event"
    )
    lines = [result.summary(), header, "-" * len(header)]
    for row in rows:
        start = "warm" if row["warm"] else "cold"
        lines.append(
            f"{row['step']:4d}  {start:5s} "
            f"{row['giant']:4d}/{row['n_routers']:<4d} "
            f"{row['coverage']:4d}/{row['n_clients']:<4d} "
            f"{row['fitness']:8.4f} {_bar(row['fitness'])} "
            f"{row['phases']:6d} {row['evaluations']:7d}  {row['event']}"
        )
    return "\n".join(lines) + "\n"


def render_fitness_chart(results: Iterable, **chart_kwargs) -> str:
    """Fitness-vs-step curves of several scenario runs, one chart.

    Labels each curve ``"<solver> (warm|cold)"`` — overlaying a warm and
    a cold run of the same scenario shows whether re-optimization held
    the quality while cutting the cost.
    """
    series = {}
    for result in results:
        start = "warm" if result.warm else "cold"
        label = f"{result.solver_name} ({start})"
        series[label] = [
            (row["step"], row["fitness"]) for row in result.timeline()
        ]
    return render_chart(
        series,
        x_label=chart_kwargs.pop("x_label", "step"),
        y_label=chart_kwargs.pop("y_label", "fitness"),
        **chart_kwargs,
    )
