"""Terminal rendering of dynamic-scenario runs.

A scenario run is a *timeline*: per step, what changed, what the
re-optimizer found and what it cost.  :func:`render_timeline` draws one
aligned row per step with an inline fitness bar, so degradation events
(outages, radio decay) and the re-optimizer's recovery are visible at a
glance; :func:`render_fitness_chart` plots the warm/cold fitness curves
of one or more runs through the shared ASCII chart; and
:func:`render_fleet_report` prints a whole scenario-fleet portfolio —
per-cell mean/std tables, warm-vs-cold regret, event impact, and the
mean recovery curves of every (solver, arm) per scenario.
"""

from __future__ import annotations

from typing import Iterable

from repro.viz.ascii_chart import render_chart

__all__ = [
    "render_timeline",
    "render_fitness_chart",
    "render_fleet_report",
    "render_live_report",
]

#: Width of the inline fitness bar, in characters.
_BAR_WIDTH = 20


def _bar(fitness: float) -> str:
    filled = max(0, min(_BAR_WIDTH, int(round(fitness * _BAR_WIDTH))))
    return "#" * filled + "." * (_BAR_WIDTH - filled)


def render_timeline(result) -> str:
    """One aligned text row per scenario step.

    ``result`` is a :class:`~repro.scenario.runner.ScenarioResult` (or
    anything exposing its ``timeline()`` records).  Columns: step, the
    start mode, giant/coverage against their step-local totals, fitness
    with a bar, the effort spent, and the event that led into the step.
    """
    rows = result.timeline()
    header = (
        f"{'step':>4s}  {'start':5s} {'giant':>9s} {'coverage':>9s} "
        f"{'fitness':>8s} {'':{_BAR_WIDTH}s} {'phases':>6s} {'evals':>7s}  event"
    )
    lines = [result.summary(), header, "-" * len(header)]
    for row in rows:
        start = "warm" if row["warm"] else "cold"
        # Deadline-truncated steps are flagged inline (the row is still
        # a well-formed incumbent — that's the anytime contract).
        stopped = f" [{row['stopped_by']}]" if row.get("stopped_by") else ""
        lines.append(
            f"{row['step']:4d}  {start:5s} "
            f"{row['giant']:4d}/{row['n_routers']:<4d} "
            f"{row['coverage']:4d}/{row['n_clients']:<4d} "
            f"{row['fitness']:8.4f} {_bar(row['fitness'])} "
            f"{row['phases']:6d} {row['evaluations']:7d}  {row['event']}{stopped}"
        )
    return "\n".join(lines) + "\n"


def render_fitness_chart(results: Iterable, **chart_kwargs) -> str:
    """Fitness-vs-step curves of several scenario runs, one chart.

    Labels each curve ``"<solver> (warm|cold)"`` — overlaying a warm and
    a cold run of the same scenario shows whether re-optimization held
    the quality while cutting the cost.
    """
    series = {}
    for result in results:
        start = "warm" if result.warm else "cold"
        label = f"{result.solver_name} ({start})"
        series[label] = [
            (row["step"], row["fitness"]) for row in result.timeline()
        ]
    return render_chart(
        series,
        x_label=chart_kwargs.pop("x_label", "step"),
        y_label=chart_kwargs.pop("y_label", "fitness"),
        **chart_kwargs,
    )


def _metric(metric, digits: int) -> str:
    """``mean +/- std`` of a ReplicatedMetric at a chosen precision."""
    return f"{metric.mean:.{digits}f} +/- {metric.std:.{digits}f}"


def render_fleet_report(report, chart: bool = False, **chart_kwargs) -> str:
    """The multi-run account of a fleet: tables, regret, event impact.

    ``report`` is a :class:`~repro.scenario.fleet.FleetReport`.  Always
    prints the per-(scenario, solver, arm) fitness table (run-mean and
    final fitness, evaluations spent — mean +/- std across replicates);
    the warm-vs-cold regret table and the per-event impact table follow
    when the fleet ran both arms / recorded events.  With ``chart=True``
    one ASCII chart per scenario overlays the mean recovery curves of
    every (solver, arm).
    """
    lines = [report.summary(), ""]
    header = (
        f"{'scenario':20s} {'solver':18s} {'arm':5s}"
        f"{'mean fitness':>20s}{'final fitness':>20s}{'evaluations':>20s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for (scenario, solver, arm), metrics in report.fitness_table().items():
        lines.append(
            f"{scenario:20s} {solver:18s} {arm:5s}"
            f"{_metric(metrics['fitness'], 4):>20s}"
            f"{_metric(metrics['final'], 4):>20s}"
            f"{_metric(metrics['evaluations'], 0):>20s}"
        )

    regret = report.regret()
    if regret:
        lines.append("")
        lines.append("warm-vs-cold regret (cold - warm mean fitness; "
                     "> 0 means warm tracking trails cold re-solves)")
        header = f"{'scenario':20s} {'solver':18s}{'regret':>20s}"
        lines.append(header)
        lines.append("-" * len(header))
        for (scenario, solver), metric in regret.items():
            lines.append(
                f"{scenario:20s} {solver:18s}{_metric(metric, 4):>20s}"
            )

    impact = report.event_impact()
    if impact:
        lines.append("")
        lines.append("event impact (mean fitness change at the event step, "
                     "net of that step's re-optimization)")
        header = f"{'event':20s}{'impact':>10s}{'events':>8s}"
        lines.append(header)
        lines.append("-" * len(header))
        for kind, values in impact.items():
            lines.append(
                f"{kind:20s}{values['impact']:>+10.4f}"
                f"{values['n_events']:>8d}"
            )

    if chart:
        x_label = chart_kwargs.pop("x_label", "step")
        y_label = chart_kwargs.pop("y_label", "fitness")
        for scenario in report.scenarios:
            lines.append("")
            lines.append(f"recovery curves — {scenario}")
            lines.append(
                render_chart(
                    report.recovery_curves(scenario),
                    x_label=x_label,
                    y_label=y_label,
                    **chart_kwargs,
                )
            )
    return "\n".join(lines) + "\n"


def render_live_report(report, baseline=None) -> str:
    """The SLA account of a live run, one aligned row per event.

    ``report`` is a :class:`~repro.anytime.live.LiveReport`.  Columns:
    event index, arrival time, response latency against the SLA, the
    ladder rung that served it, fitness with a bar, and the event label.
    Shed events render as ``-> coalesced into step N``.  With
    ``baseline`` (the unbounded
    :class:`~repro.scenario.runner.ScenarioResult` of the same scenario
    and seed) a fitness-regret column is added and the mean regret is
    appended to the footer.
    """
    regret_by_step = {}
    if baseline is not None:
        regret_by_step = dict(report.regret_curve(baseline))
    header = (
        f"{'step':>4s} {'arrival':>9s} {'latency':>9s} {'sla':>4s} "
        f"{'rung':17s} {'fitness':>8s} {'':{_BAR_WIDTH}s}"
    )
    if baseline is not None:
        header += f" {'regret':>8s}"
    header += "  event"
    lines = [report.summary(), header, "-" * len(header)]
    for row in report.timeline():
        prefix = (
            f"{row['step']:4d} {row['arrival']:9.3f} "
        )
        if row["shed"]:
            lines.append(
                f"{prefix}{'-':>9s} {'-':>4s} {row['rung']:17s} "
                f"{'':>8s} {'':{_BAR_WIDTH}s}"
                + (f" {'-':>8s}" if baseline is not None else "")
                + f"  {row['event']} -> coalesced into step "
                f"{row['coalesced_into']}"
            )
            continue
        sla_flag = "ok" if row["sla_met"] else "MISS"
        stopped = f" [{row['stopped_by']}]" if row.get("stopped_by") else ""
        line = (
            f"{prefix}{row['latency']:9.3f} {sla_flag:>4s} "
            f"{row['rung']:17s} {row['fitness']:8.4f} {_bar(row['fitness'])}"
        )
        if baseline is not None:
            regret = regret_by_step.get(row["step"])
            line += f" {regret:8.4f}" if regret is not None else f" {'-':>8s}"
        line += f"  {row['event']}{stopped}"
        lines.append(line)
    footer = (
        f"rungs: "
        + ", ".join(f"{name} x{count}" for name, count in report.rung_counts().items())
    )
    if baseline is not None:
        footer += f"; mean regret vs unbounded {report.mean_regret(baseline):+.4f}"
    lines.append(footer)
    return "\n".join(lines) + "\n"
