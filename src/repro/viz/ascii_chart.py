"""ASCII line charts for evolution curves.

The paper's figures are line plots of giant-component size against
generations or phases.  :func:`render_chart` draws the same curves in a
terminal so ``wmn-placement reproduce`` and the benches can show the
*shape* of each figure, not just its numbers.

Each series gets a marker character; when several series share a chart
cell the marker of the later series wins (series are drawn in order, so
list the most important one last).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_chart", "SERIES_MARKERS"]

#: Default marker cycle, chosen to stay readable in dense plots.
SERIES_MARKERS = "*o+x#@%&"


def render_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot ``{label: [(x, y), ...]}`` as an ASCII chart.

    The chart auto-scales both axes over the union of all points,
    connects consecutive points with linear interpolation and appends a
    legend mapping markers to labels.
    """
    if width < 8 or height < 4:
        raise ValueError("chart needs at least 8x4 characters")
    points = [
        (float(x), float(y))
        for values in series.values()
        for x, y in values
    ]
    if not points:
        raise ValueError("no data to plot")
    x_min = min(x for x, _ in points)
    x_max = max(x for x, _ in points)
    y_min = min(y for _, y in points)
    y_max = max(y for _, y in points)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    def column_of(x: float) -> int:
        return min(width - 1, int((x - x_min) / x_span * (width - 1) + 0.5))

    def row_of(y: float) -> int:
        return min(height - 1, int((y - y_min) / y_span * (height - 1) + 0.5))

    canvas = [[" "] * width for _ in range(height)]
    legend: list[str] = []
    for index, (label, values) in enumerate(series.items()):
        marker = SERIES_MARKERS[index % len(SERIES_MARKERS)]
        legend.append(f"{marker} {label}")
        ordered = sorted((float(x), float(y)) for x, y in values)
        previous: tuple[int, int] | None = None
        for x, y in ordered:
            column, row = column_of(x), row_of(y)
            if previous is not None:
                # Linear interpolation column-by-column between points.
                prev_column, prev_row = previous
                span = column - prev_column
                for step in range(1, span):
                    t = step / span
                    inter_row = int(prev_row + (row - prev_row) * t + 0.5)
                    canvas[inter_row][prev_column + step] = marker
            canvas[row][column] = marker
            previous = (column, row)

    lines: list[str] = []
    top_label = f"{y_max:g}"
    bottom_label = f"{y_min:g}"
    gutter = max(len(top_label), len(bottom_label), len(y_label))
    for row_index in range(height - 1, -1, -1):
        if row_index == height - 1:
            prefix = top_label.rjust(gutter)
        elif row_index == 0:
            prefix = bottom_label.rjust(gutter)
        elif row_index == height // 2:
            prefix = y_label[:gutter].rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix} |{''.join(canvas[row_index])}")
    axis = " " * gutter + " +" + "-" * width
    lines.append(axis)
    x_axis_legend = (
        " " * gutter
        + f"  {x_min:g}"
        + f"{x_label} -> {x_max:g}".rjust(width - len(f"{x_min:g}"))
    )
    lines.append(x_axis_legend)
    lines.append("legend: " + "   ".join(legend))
    return "\n".join(lines)
