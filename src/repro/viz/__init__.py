"""Terminal visualization of deployments and evolution curves."""

from repro.viz.ascii_chart import render_chart
from repro.viz.ascii_map import render_evaluation, render_placement
from repro.viz.timeline import (
    render_fitness_chart,
    render_fleet_report,
    render_live_report,
    render_timeline,
)

__all__ = [
    "render_chart",
    "render_evaluation",
    "render_fitness_chart",
    "render_fleet_report",
    "render_live_report",
    "render_placement",
    "render_timeline",
]
