"""ASCII rendering of deployments.

Terminal-friendly maps of a problem instance and a placement: clients,
routers and giant-component membership at a glance.  Large grids are
down-sampled into character cells; each character summarizes the most
interesting content of its block:

* ``#`` — router in the giant component
* ``r`` — router outside the giant component
* ``.`` — client(s) only
* `` `` — empty
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluation import Evaluation
from repro.core.problem import ProblemInstance
from repro.core.solution import Placement

__all__ = ["render_placement", "render_evaluation"]


def render_placement(
    problem: ProblemInstance,
    placement: Placement,
    giant_mask: np.ndarray | None = None,
    max_width: int = 64,
    max_height: int = 32,
) -> str:
    """An ASCII map of the placement over the instance's grid.

    ``giant_mask`` marks giant-component routers with ``#`` (all routers
    render as ``#`` when omitted — callers with an
    :class:`~repro.core.evaluation.Evaluation` should prefer
    :func:`render_evaluation`).
    """
    if max_width <= 0 or max_height <= 0:
        raise ValueError("character viewport must be positive")
    grid = problem.grid
    columns = min(max_width, grid.width)
    rows = min(max_height, grid.height)
    x_scale = grid.width / columns
    y_scale = grid.height / rows

    router_blocks: dict[tuple[int, int], bool] = {}
    for router_id, cell in enumerate(placement):
        block = (min(int(cell.x / x_scale), columns - 1),
                 min(int(cell.y / y_scale), rows - 1))
        in_giant = bool(giant_mask[router_id]) if giant_mask is not None else True
        router_blocks[block] = router_blocks.get(block, False) or in_giant

    client_blocks: set[tuple[int, int]] = set()
    for client in problem.clients:
        client_blocks.add(
            (
                min(int(client.cell.x / x_scale), columns - 1),
                min(int(client.cell.y / y_scale), rows - 1),
            )
        )

    lines: list[str] = []
    border = "+" + "-" * columns + "+"
    lines.append(border)
    # Render top row (largest y) first so the map reads like a plan.
    for row in range(rows - 1, -1, -1):
        characters = []
        for column in range(columns):
            block = (column, row)
            if block in router_blocks:
                characters.append("#" if router_blocks[block] else "r")
            elif block in client_blocks:
                characters.append(".")
            else:
                characters.append(" ")
        lines.append("|" + "".join(characters) + "|")
    lines.append(border)
    return "\n".join(lines)


def render_evaluation(
    problem: ProblemInstance,
    evaluation: Evaluation,
    max_width: int = 64,
    max_height: int = 32,
) -> str:
    """Map plus the metrics line for an evaluated placement."""
    art = render_placement(
        problem,
        evaluation.placement,
        giant_mask=evaluation.giant_mask,
        max_width=max_width,
        max_height=max_height,
    )
    return f"{art}\n{evaluation.summary()}"
