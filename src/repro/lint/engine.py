"""The lint engine: file collection, parsing, filtering, orchestration.

The engine is deliberately dumb about *what* to check — rules live in
:mod:`repro.lint.rules` — and smart about everything around a check:

- **File contexts.**  Each checked file is parsed once into a
  :class:`FileContext` carrying the AST, the raw lines, an import-alias
  table (``np`` → ``numpy``, ``perf_counter`` → ``time.perf_counter``)
  and the parsed per-line suppressions.  Rules resolve attribute chains
  through :meth:`FileContext.resolve` instead of re-implementing import
  tracking.
- **Suppressions.**  ``# repro-lint: disable=RL004`` (comma-separated
  codes, or ``all``) on a line silences findings anchored to that line.
- **Allowlists.**  :mod:`repro.lint.config` maps each rule to path
  patterns where it does not apply (e.g. benchmarks may read the wall
  clock); per-directory ``.repro-lint`` files extend the defaults.
- **Project rules.**  Rules with ``scope = "project"`` (RL008) see every
  context at once plus the project root, so they can check cross-file
  contracts like "every public engine entry point has a parity test".
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.config import LintConfig

__all__ = [
    "Finding",
    "FileContext",
    "LintResult",
    "collect_files",
    "find_project_root",
    "run_lint",
]

#: ``# repro-lint: disable=RL001,RL007`` — the per-line suppression.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: Markers that identify the project root when walking upward.
_ROOT_MARKERS = ("setup.py", "pyproject.toml", ".git")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file position."""

    path: str  #: posix relpath from the project root
    line: int
    col: int
    rule: str
    message: str

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class FileContext:
    """Everything a file-scoped rule needs about one source file."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.aliases = _import_aliases(self.tree)
        self.imported_modules = _imported_modules(self.tree)
        self.suppressions = _parse_suppressions(self.lines)
        self.constants = _module_constants(self.tree)

    def resolve(self, node: ast.AST) -> str | None:
        """The canonical dotted name of a ``Name``/``Attribute`` chain.

        ``np.random.seed`` resolves to ``numpy.random.seed`` when the
        file did ``import numpy as np``; a bare name resolves through
        the alias table or to itself.  Returns ``None`` for anything
        that is not a pure attribute chain (calls, subscripts, ...).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.aliases.get(node.id, node.id))
        return ".".join(reversed(parts))

    def string_value(self, node: ast.AST) -> str | None:
        """A literal string, following module-level constant names."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return self.constants.get(node.id)
        return None

    def is_suppressed(self, rule: str, line: int) -> bool:
        codes = self.suppressions.get(line)
        return codes is not None and ("all" in codes or rule in codes)


@dataclass
class LintResult:
    """The outcome of one :func:`run_lint` invocation."""

    root: Path
    findings: list[Finding]
    checked_files: list[str]
    errors: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    @property
    def all_findings(self) -> list[Finding]:
        return sorted(self.errors + self.findings)


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                bound = item.asname or item.name.split(".")[0]
                target = item.name if item.asname else item.name.split(".")[0]
                aliases[bound] = target
        elif isinstance(node, ast.ImportFrom):
            module = ("." * node.level) + (node.module or "")
            for item in node.names:
                if item.name == "*":
                    continue
                bound = item.asname or item.name
                aliases[bound] = f"{module}.{item.name}" if module else item.name
    return aliases


def _imported_modules(tree: ast.Module) -> frozenset[str]:
    modules: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            modules.update(item.name for item in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            modules.add(node.module)
    return frozenset(modules)


def _module_constants(tree: ast.Module) -> dict[str, str]:
    constants: dict[str, str] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            constants[node.targets[0].id] = node.value.value
    return constants


def _parse_suppressions(lines: list[str]) -> dict[int, frozenset[str]]:
    suppressions: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            codes = frozenset(
                code.strip() for code in match.group(1).split(",")
            )
            suppressions[lineno] = codes
    return suppressions


def find_project_root(start: Path) -> Path:
    """Walk upward from ``start`` to the directory holding a root marker."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        if any((candidate / marker).exists() for marker in _ROOT_MARKERS):
            return candidate
    return current


def collect_files(paths: Iterable[Path]) -> list[Path]:
    """All ``.py`` files under ``paths``, sorted, hidden dirs skipped."""
    found: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_file():
            if path.suffix == ".py":
                found.add(path.resolve())
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if any(
                    part.startswith(".") or part == "__pycache__"
                    for part in candidate.parts
                ):
                    continue
                found.add(candidate.resolve())
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(found)


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: Iterable[str | Path],
    *,
    root: "str | Path | None" = None,
    select: "Iterable[str] | None" = None,
    ignore: "Iterable[str] | None" = None,
    use_default_allowlist: bool = True,
) -> LintResult:
    """Check ``paths`` and return a :class:`LintResult`.

    ``select``/``ignore`` narrow the rule set by code; ``root`` pins the
    project root (auto-detected from the first path otherwise);
    ``use_default_allowlist=False`` drops the built-in allowlists (the
    fixture tests use this to exercise rules on files that the shipped
    configuration exempts).
    """
    from repro.lint.rules import active_rules

    path_list = [Path(p) for p in paths]
    if not path_list:
        raise ValueError("run_lint needs at least one path")
    files = collect_files(path_list)
    root_dir = (
        Path(root).resolve() if root is not None else find_project_root(path_list[0])
    )
    config = LintConfig(
        root=root_dir, use_default_allowlist=use_default_allowlist
    )
    rules = active_rules(select=select, ignore=ignore)

    contexts: list[FileContext] = []
    errors: list[Finding] = []
    for path in files:
        relpath = _relpath(path, root_dir)
        try:
            source = path.read_text(encoding="utf-8")
            contexts.append(FileContext(path, relpath, source))
        except (SyntaxError, UnicodeDecodeError) as exc:
            lineno = getattr(exc, "lineno", None) or 1
            errors.append(
                Finding(
                    path=relpath,
                    line=int(lineno),
                    col=0,
                    rule="RL000",
                    message=f"could not parse file: {exc}",
                )
            )

    findings: list[Finding] = []
    file_rules = [rule for rule in rules if rule.scope == "file"]
    project_rules = [rule for rule in rules if rule.scope == "project"]
    for ctx in contexts:
        for rule in file_rules:
            if config.is_allowlisted(rule.code, ctx.relpath):
                continue
            findings.extend(_filter(rule.code, rule.check(ctx), ctx))
    for rule in project_rules:
        raw = rule.check_project(root_dir, contexts)
        by_path = {ctx.relpath: ctx for ctx in contexts}
        for finding in raw:
            if config.is_allowlisted(rule.code, finding.path):
                continue
            ctx = by_path.get(finding.path)
            if ctx is not None and ctx.is_suppressed(finding.rule, finding.line):
                continue
            findings.append(finding)

    return LintResult(
        root=root_dir,
        findings=sorted(findings),
        checked_files=[ctx.relpath for ctx in contexts],
        errors=sorted(errors),
    )


def _filter(
    code: str, raw: Iterable[Finding], ctx: FileContext
) -> Iterator[Finding]:
    for finding in raw:
        if not ctx.is_suppressed(code, finding.line):
            yield finding
