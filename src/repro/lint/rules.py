"""The rule set: eight invariants distilled from this repository's PRs.

Each rule encodes a contract that was once broken (or nearly broken) in
this codebase and is now enforced mechanically:

========  ==============================================================
RL001     no builtin ``hash()`` — it is salted per-process
          (``PYTHONHASHSEED``), so hash-derived labels/seeds are not
          reproducible across runs.  Use
          :func:`repro.experiments.replication.label_key` (CRC32).
RL002     no global RNG — ``np.random.seed``/module-level numpy draws
          and the stdlib ``random`` module share hidden process state;
          library code threads explicit ``Generator`` objects.
RL003     SeedSequence spawn discipline — ``.spawn()`` advances the
          parent's counter, so spawning a caller-owned sequence makes
          child streams depend on call *history*, not seed identity.
          Only freshly constructed/copied sequences may spawn; use
          :mod:`repro.seeding`.
RL004     no wall clock — ``time.time``/``monotonic``/``perf_counter``
          and ``datetime.now`` reads route through the injectable
          clocks in :mod:`repro.anytime.deadline` (``DEFAULT_CLOCK``),
          keeping timing a seam instead of ambient state.
RL005     env gates — ``REPRO_*`` environment variables are read only
          through the typed accessors in :mod:`repro.envgates`, which
          also warn on unknown gate names.
RL006     pool ownership — ``ProcessPoolExecutor`` and
          ``multiprocessing.shared_memory`` appear only in the layers
          that own worker lifecycle (:mod:`repro.parallel`, the
          supervisor, :mod:`repro.instances.shm`); everything else
          goes through their APIs and inherits fault tolerance.
RL007     no silent except — a handler whose body is only
          ``pass``/``...``/``continue`` (or a bare ``except:``) hides
          failures; handle, log, re-raise, or justify with a
          suppression comment.
RL008     engine parity coverage — every public entry point of
          ``repro.core.engine`` must be referenced by a test module
          under ``tests/core/``, so engine tiers cannot drift from the
          reference implementation unobserved.
========  ==============================================================

Rules are instances registered in :data:`RULES`; file-scoped rules
implement ``check(ctx)``, project-scoped rules ``check_project(root,
contexts)``.
"""

from __future__ import annotations

import ast
import re
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.engine import FileContext, Finding

__all__ = ["LintRule", "RULES", "active_rules"]


class LintRule:
    """Base class: a named, documented invariant check."""

    code: str = "RL000"
    name: str = "abstract"
    description: str = ""
    scope: str = "file"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def check_project(
        self, root: Path, contexts: "list[FileContext]"
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx_or_path, node_or_line, message: str
    ) -> Finding:
        if isinstance(ctx_or_path, FileContext):
            path = ctx_or_path.relpath
        else:
            path = str(ctx_or_path)
        if isinstance(node_or_line, ast.AST):
            line = getattr(node_or_line, "lineno", 1)
            col = getattr(node_or_line, "col_offset", 0)
        else:
            line, col = int(node_or_line), 0
        return Finding(
            path=path, line=line, col=col, rule=self.code, message=message
        )


class NoBuiltinHash(LintRule):
    """RL001: builtin ``hash()`` output is salted per-process."""

    code = "RL001"
    name = "no-builtin-hash"
    description = (
        "builtin hash() is salted per-process (PYTHONHASHSEED); derive "
        "labels and seed keys with repro.experiments.replication.label_key"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and ctx.aliases.get(node.func.id, node.func.id) == "hash"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "builtin hash() is salted per-process and not "
                    "reproducible across runs; use label_key() "
                    "(crc32) from repro.experiments.replication",
                )


#: ``numpy.random`` attributes that do NOT touch the hidden global RNG.
_NP_RANDOM_OK = frozenset(
    {
        "SeedSequence",
        "Generator",
        "BitGenerator",
        "default_rng",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)


class NoGlobalRng(LintRule):
    """RL002: library code must thread explicit Generator objects."""

    code = "RL002"
    name = "no-global-rng"
    description = (
        "np.random.seed / module-level numpy draws and the stdlib "
        "random module mutate hidden process state; thread explicit "
        "np.random.Generator objects instead"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name == "random" or item.name.startswith("random."):
                        yield self.finding(
                            ctx,
                            node,
                            "the stdlib random module is global state; "
                            "use np.random.default_rng with an explicit "
                            "seed",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and not node.level:
                    yield self.finding(
                        ctx,
                        node,
                        "the stdlib random module is global state; use "
                        "np.random.default_rng with an explicit seed",
                    )
            elif isinstance(node, ast.Attribute):
                resolved = ctx.resolve(node)
                if (
                    resolved is not None
                    and resolved.startswith("numpy.random.")
                    and resolved.count(".") == 2
                ):
                    leaf = resolved.rsplit(".", 1)[1]
                    if leaf not in _NP_RANDOM_OK:
                        yield self.finding(
                            ctx,
                            node,
                            f"{resolved} uses numpy's hidden global RNG; "
                            "thread an explicit np.random.Generator",
                        )


#: Calls whose result is a *fresh* SeedSequence (counter zero, safe to
#: spawn).  Matched against both resolved dotted names and bare names so
#: the rule works wherever the helpers are imported from.
_FRESH_CALLS = frozenset(
    {
        "numpy.random.SeedSequence",
        "repro.seeding.fresh_sequence",
        "repro.seeding.root_sequence",
        "repro.seeding.spawn_children",
        "SeedSequence",
        "fresh_sequence",
        "_fresh_sequence",
        "root_sequence",
        "_root_sequence",
        "spawn_children",
    }
)


class SpawnDiscipline(LintRule):
    """RL003: only freshly constructed SeedSequences may ``.spawn()``."""

    code = "RL003"
    name = "seedsequence-spawn-discipline"
    description = (
        ".spawn() advances the parent SeedSequence's counter, so "
        "spawning caller-owned sequences makes results depend on call "
        "history; spawn only fresh copies (repro.seeding helpers)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        scopes = [ctx.tree] + [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            yield from self._check_scope(ctx, scope)

    def _is_fresh_call(self, ctx: FileContext, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, (ast.Name, ast.Attribute)):
            resolved = ctx.resolve(func)
            if resolved is not None and (
                resolved in _FRESH_CALLS
                or resolved.rsplit(".", 1)[-1] in _FRESH_CALLS
            ):
                return True
        # ``fresh_sequence(seq).spawn(n)`` — spawn on a fresh call result.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "spawn"
            and self._is_fresh_call(ctx, func.value)
        ):
            return True
        return False

    def _fresh_names(self, ctx: FileContext, scope: ast.AST) -> set[str]:
        """Names bound (anywhere in the scope) to a fresh sequence.

        Flow-insensitive on purpose: precise enough to catch the real
        bug class (spawning parameters, attributes, loop-carried
        sequences) without a full dataflow engine.
        """
        fresh: set[str] = set()

        def mark(target: ast.AST) -> None:
            if isinstance(target, ast.Name):
                fresh.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    mark(element)
            elif isinstance(target, ast.Starred):
                mark(target.value)

        for node in self._scope_walk(scope):
            value = None
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                value, targets = node.iter, [node.target]
            elif isinstance(node, ast.comprehension):
                value, targets = node.iter, [node.target]
            if value is None:
                continue
            if self._is_fresh_call(ctx, value) or self._is_spawn_call(value):
                for target in targets:
                    mark(target)
        return fresh

    @staticmethod
    def _is_spawn_call(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "spawn"
        )

    @staticmethod
    def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope without descending into nested function defs."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.extend(ast.iter_child_nodes(node))

    def _check_scope(self, ctx: FileContext, scope: ast.AST) -> Iterator[Finding]:
        fresh = self._fresh_names(ctx, scope)
        for node in self._scope_walk(scope):
            if not self._is_spawn_call(node):
                continue
            receiver = node.func.value
            if self._is_fresh_call(ctx, receiver):
                continue
            if isinstance(receiver, ast.Name) and receiver.id in fresh:
                continue
            described = (
                f"'{receiver.id}'"
                if isinstance(receiver, ast.Name)
                else "a caller-owned sequence"
            )
            yield self.finding(
                ctx,
                node,
                f".spawn() on {described} mutates the parent's spawn "
                "counter; copy first via repro.seeding.spawn_children / "
                "fresh_sequence",
            )


#: Wall-clock reads banned outside the clock module and benchmarks.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class NoWallClock(LintRule):
    """RL004: elapsed-time reads go through the injectable clocks."""

    code = "RL004"
    name = "no-wall-clock"
    description = (
        "direct wall-clock reads (time.time/monotonic/perf_counter, "
        "datetime.now) bypass the injectable Clock seam; use "
        "repro.anytime.deadline.DEFAULT_CLOCK or an explicit Clock"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in _WALL_CLOCK:
                yield self.finding(
                    ctx,
                    node,
                    f"{resolved}() reads the wall clock directly; route "
                    "timing through repro.anytime.deadline.DEFAULT_CLOCK "
                    "(or an injected Clock)",
                )


class EnvGateDiscipline(LintRule):
    """RL005: ``REPRO_*`` reads go through :mod:`repro.envgates`."""

    code = "RL005"
    name = "env-gate-discipline"
    description = (
        "REPRO_* environment variables are read through the typed "
        "accessors in repro.envgates, which validate names and "
        "document defaults"
    )

    def _gate_key(self, ctx: FileContext, node: ast.AST) -> str | None:
        value = ctx.string_value(node)
        if value is not None and value.startswith("REPRO_"):
            return value
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            key = None
            if isinstance(node, ast.Call):
                resolved = ctx.resolve(node.func)
                if resolved in {"os.environ.get", "os.getenv"} and node.args:
                    key = self._gate_key(ctx, node.args[0])
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Load
            ):
                if ctx.resolve(node.value) == "os.environ":
                    key = self._gate_key(ctx, node.slice)
            elif isinstance(node, ast.Compare) and len(node.ops) == 1:
                if isinstance(node.ops[0], (ast.In, ast.NotIn)) and (
                    ctx.resolve(node.comparators[0]) == "os.environ"
                ):
                    key = self._gate_key(ctx, node.left)
            if key is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"raw environment read of {key}; use the "
                    "repro.envgates accessor (or envgates.raw) so the "
                    "gate is registered and validated",
                )


#: Canonical names of the pooling primitives RL006 confines.
_POOL_NAMES = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "multiprocessing.shared_memory.SharedMemory",
        "multiprocessing.shared_memory.ShareableList",
    }
)


class PoolOwnership(LintRule):
    """RL006: process pools / shared memory live in the parallel layer."""

    code = "RL006"
    name = "pool-ownership"
    description = (
        "ProcessPoolExecutor and multiprocessing.shared_memory are "
        "confined to repro.parallel / repro.instances.shm / the "
        "supervisor; other layers use their APIs and inherit fault "
        "tolerance"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and not node.level:
                module = node.module or ""
                for item in node.names:
                    dotted = f"{module}.{item.name}"
                    if dotted in _POOL_NAMES or dotted == (
                        "multiprocessing.shared_memory"
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"direct use of {dotted} outside the "
                            "parallel layer; submit work through "
                            "repro.parallel / repro.resilience instead",
                        )
            elif isinstance(node, ast.Import):
                for item in node.names:
                    if item.name.startswith("multiprocessing.shared_memory"):
                        yield self.finding(
                            ctx,
                            node,
                            f"direct use of {item.name} outside the "
                            "parallel layer; submit work through "
                            "repro.parallel / repro.resilience instead",
                        )
            elif isinstance(node, ast.Attribute):
                resolved = ctx.resolve(node)
                if resolved in _POOL_NAMES:
                    yield self.finding(
                        ctx,
                        node,
                        f"direct use of {resolved} outside the parallel "
                        "layer; submit work through repro.parallel / "
                        "repro.resilience instead",
                    )


class NoSilentExcept(LintRule):
    """RL007: exception handlers must do *something*."""

    code = "RL007"
    name = "no-silent-except"
    description = (
        "bare except clauses and handlers whose body is only "
        "pass/.../continue swallow failures invisibly; handle, log, "
        "re-raise, or add a justified suppression comment"
    )

    @staticmethod
    def _is_silent_body(body: "list[ast.stmt]") -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring or bare ``...``
            return False
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare except: catches SystemExit/KeyboardInterrupt "
                    "too; name the exception type",
                )
            elif self._is_silent_body(node.body):
                yield self.finding(
                    ctx,
                    node,
                    "exception handler silently swallows the error; "
                    "handle, log, or re-raise (or justify with "
                    "'# repro-lint: disable=RL007')",
                )


class EngineParityCoverage(LintRule):
    """RL008: public engine entry points have parity-test references."""

    code = "RL008"
    name = "engine-parity-coverage"
    description = (
        "every public def/class in repro.core.engine must be "
        "referenced by a test module under tests/core/, so engine "
        "tiers cannot drift from the reference path unobserved"
    )
    scope = "project"

    _ENGINE_GLOB = "src/repro/core/engine/*.py"

    @staticmethod
    def _public_names(tree: ast.Module) -> "list[tuple[str, int]]":
        """``(name, lineno)`` for public top-level defs and classes."""
        declared: "set[str] | None" = None
        for node in tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "__all__"
                and isinstance(node.value, (ast.List, ast.Tuple))
            ):
                declared = {
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                }
        names = []
        for node in tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                name = node.name
                if name.startswith("_"):
                    continue
                if declared is not None and name not in declared:
                    continue
                names.append((name, node.lineno))
        return names

    def check_project(
        self, root: Path, contexts: "list[FileContext]"
    ) -> Iterator[Finding]:
        engine_ctxs = [
            ctx for ctx in contexts if fnmatch(ctx.relpath, self._ENGINE_GLOB)
        ]
        if not engine_ctxs:
            return
        tests_dir = root / "tests" / "core"
        corpus = ""
        if tests_dir.is_dir():
            corpus = "\n".join(
                path.read_text(encoding="utf-8")
                for path in sorted(tests_dir.glob("*.py"))
            )
        for ctx in engine_ctxs:
            for name, lineno in self._public_names(ctx.tree):
                if not re.search(rf"\b{re.escape(name)}\b", corpus):
                    yield self.finding(
                        ctx.relpath,
                        lineno,
                        f"public engine entry point '{name}' has no "
                        "reference in any tests/core/ module; add a "
                        "parity test (or underscore-prefix it)",
                    )


#: The registry, in code order.
RULES: dict[str, LintRule] = {
    rule.code: rule
    for rule in (
        NoBuiltinHash(),
        NoGlobalRng(),
        SpawnDiscipline(),
        NoWallClock(),
        EnvGateDiscipline(),
        PoolOwnership(),
        NoSilentExcept(),
        EngineParityCoverage(),
    )
}


def active_rules(
    select: "Iterable[str] | None" = None,
    ignore: "Iterable[str] | None" = None,
) -> "list[LintRule]":
    """The rule list after ``--select`` / ``--ignore`` narrowing."""
    selected = set(select) if select else None
    ignored = set(ignore) if ignore else set()
    unknown = (selected or set()) | ignored
    unknown -= set(RULES)
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return [
        rule
        for code, rule in RULES.items()
        if (selected is None or code in selected) and code not in ignored
    ]
