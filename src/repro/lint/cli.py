"""The ``repro-lint`` command line (also ``python -m repro.lint``).

Exit status: 0 when every checked file is clean, 1 when any finding
(or parse error) survives suppressions and allowlists, 2 on usage
errors.  Typical invocations::

    python -m repro.lint src/            # default text report
    python -m repro.lint src/ tests/ benchmarks/ --format=json
    python -m repro.lint --list-rules
    python -m repro.lint src/ --select=RL004,RL005
"""

from __future__ import annotations

import argparse
import sys

from repro.lint.engine import run_lint
from repro.lint.report import render_json, render_text

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for the repro codebase: "
            "determinism, concurrency, and env-gate contracts."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        help="project root (default: auto-detected via setup.py/.git)",
    )
    parser.add_argument(
        "--no-default-allowlist",
        action="store_true",
        help="ignore the built-in per-rule path allowlists",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def _parse_codes(raw: "str | None") -> "list[str] | None":
    if raw is None:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def main(argv: "list[str] | None" = None) -> int:
    from repro.lint.rules import RULES

    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for code, rule in RULES.items():
            print(f"{code}  {rule.name}\n    {rule.description}")
        return 0

    try:
        result = run_lint(
            options.paths,
            root=options.root,
            select=_parse_codes(options.select),
            ignore=_parse_codes(options.ignore),
            use_default_allowlist=not options.no_default_allowlist,
        )
    except (FileNotFoundError, ValueError) as exc:
        parser.error(str(exc))

    render = render_json if options.format == "json" else render_text
    print(render(result))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
