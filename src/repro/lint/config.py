"""Allowlist configuration: which rules do not apply where.

Every rule enforces a *default-deny* contract with named exemptions.
The shipped defaults below encode the repository's architecture — each
pattern names the one layer that legitimately owns the flagged
primitive (the clock module may read the wall clock, the parallel
runtime may build process pools, ...).  Patterns are
:func:`fnmatch.fnmatch` globs matched against posix relpaths from the
project root, so ``tests/*`` covers the whole subtree.

Per-directory extension: a plain-text ``.repro-lint`` file in any
directory applies to every file at or below it.  Format, one directive
per line (``#`` comments allowed)::

    disable = RL002, RL004

which exempts those rules for the subtree.  This is how an experiment
sandbox can opt out of a rule without touching the shipped defaults.
"""

from __future__ import annotations

import re
from fnmatch import fnmatch
from pathlib import Path

__all__ = ["DEFAULT_ALLOWLIST", "LintConfig"]

#: rule code -> path patterns (posix relpaths) where the rule is off.
DEFAULT_ALLOWLIST: dict[str, tuple[str, ...]] = {
    # Builtin hash() is never legitimate for labels/seeds; no exemptions.
    "RL001": (),
    # Global-RNG discipline binds library code; tests and demo scripts
    # may draw from whatever stream they like.
    "RL002": ("tests/*", "benchmarks/*", "examples/*"),
    # The fresh-copy helpers themselves must call ``.spawn``; tests
    # exercise raw SeedSequence statefulness on purpose.
    "RL003": ("src/repro/seeding.py", "tests/*", "benchmarks/*"),
    # The clock module is the one place allowed to touch the wall
    # clock; benchmarks measure real time by definition.
    "RL004": (
        "src/repro/anytime/deadline.py",
        "benchmarks/*",
        "examples/*",
    ),
    # The gate registry is the one sanctioned reader; tests manipulate
    # the environment to exercise the gates.
    "RL005": ("src/repro/envgates.py", "tests/*", "benchmarks/*"),
    # Process pools and shared memory are owned by the parallel layer
    # (and the supervisor that wraps pools in retry logic).
    "RL006": (
        "src/repro/parallel/*",
        "src/repro/instances/shm.py",
        "src/repro/resilience/supervisor.py",
        "tests/*",
        "benchmarks/*",
        "examples/*",
    ),
    # Silent handlers in tests/benchmarks are harmless scaffolding.
    "RL007": ("tests/*", "benchmarks/*", "examples/*"),
    # Engine parity coverage has no exemptions.
    "RL008": (),
}

_DISABLE_RE = re.compile(r"^\s*disable\s*=\s*(.+?)\s*$")


class LintConfig:
    """Resolved allowlists for one lint run."""

    def __init__(self, root: Path, *, use_default_allowlist: bool = True) -> None:
        self.root = root
        self._defaults = DEFAULT_ALLOWLIST if use_default_allowlist else {}
        self._dir_cache: dict[Path, frozenset[str]] = {}

    def is_allowlisted(self, rule: str, relpath: str) -> bool:
        """Whether ``rule`` is switched off for the file at ``relpath``."""
        for pattern in self._defaults.get(rule, ()):
            if fnmatch(relpath, pattern):
                return True
        return rule in self._directory_disables(relpath)

    def _directory_disables(self, relpath: str) -> frozenset[str]:
        """Union of ``.repro-lint`` disables along the file's dirs."""
        disabled: set[str] = set()
        directory = (self.root / relpath).parent
        chain = []
        current = directory
        while True:
            chain.append(current)
            if current == self.root or current.parent == current:
                break
            current = current.parent
        for folder in chain:
            disabled.update(self._read_config(folder))
        return frozenset(disabled)

    def _read_config(self, directory: Path) -> frozenset[str]:
        cached = self._dir_cache.get(directory)
        if cached is not None:
            return cached
        codes: set[str] = set()
        config_file = directory / ".repro-lint"
        if config_file.is_file():
            for line in config_file.read_text(encoding="utf-8").splitlines():
                line = line.split("#", 1)[0]
                match = _DISABLE_RE.match(line)
                if match:
                    codes.update(
                        code.strip()
                        for code in match.group(1).split(",")
                        if code.strip()
                    )
        result = frozenset(codes)
        self._dir_cache[directory] = result
        return result
