"""``repro.lint`` — AST-based invariant checks for this codebase.

The repository's correctness story rests on contracts no unit test can
watch everywhere at once: reproducible seeds, no hidden global RNG
state, SeedSequence spawn discipline, injectable clocks, registered
env gates, confined process pools, no silent exception swallowing, and
engine parity coverage.  This package turns each contract into a
mechanical rule over the AST (pure stdlib, no third-party linter) and
ships a CLI — ``python -m repro.lint`` / ``repro-lint`` — that exits
nonzero on violations, wired into CI as the ``static-analysis`` job.

See :mod:`repro.lint.rules` for the rule catalogue (RL001–RL008),
:mod:`repro.lint.engine` for suppressions and orchestration, and
:mod:`repro.lint.config` for the allowlist defaults.
"""

from repro.lint.config import DEFAULT_ALLOWLIST, LintConfig
from repro.lint.engine import Finding, LintResult, run_lint
from repro.lint.report import render_json, render_text
from repro.lint.rules import RULES, LintRule, active_rules

__all__ = [
    "DEFAULT_ALLOWLIST",
    "Finding",
    "LintConfig",
    "LintResult",
    "LintRule",
    "RULES",
    "active_rules",
    "render_json",
    "render_text",
    "run_lint",
]
