"""Reporters: render a :class:`~repro.lint.engine.LintResult`.

Two formats:

- **text** — one ``path:line:col: CODE message`` line per finding
  (editor-clickable), followed by a per-rule summary and the verdict.
- **json** — a stable machine-readable document (``version`` bumps on
  schema changes) consumed by the CI ``static-analysis`` job, which
  uploads it as a build artifact.
"""

from __future__ import annotations

import json
from collections import Counter

from repro.lint.engine import LintResult

__all__ = ["render_text", "render_json", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    findings = result.all_findings
    lines = [finding.render() for finding in findings]
    if findings:
        counts = Counter(finding.rule for finding in findings)
        summary = ", ".join(
            f"{code}: {count}" for code, count in sorted(counts.items())
        )
        lines.append("")
        lines.append(
            f"{len(findings)} finding(s) in "
            f"{len(result.checked_files)} file(s) ({summary})"
        )
    else:
        lines.append(
            f"{len(result.checked_files)} file(s) checked, no findings"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    counts = Counter(finding.rule for finding in result.all_findings)
    document = {
        "version": JSON_SCHEMA_VERSION,
        "root": str(result.root),
        "checked_files": len(result.checked_files),
        "ok": result.ok,
        "summary": dict(sorted(counts.items())),
        "findings": [finding.as_dict() for finding in result.all_findings],
    }
    return json.dumps(document, indent=2, sort_keys=False)
