"""The supervised process pool behind every ``workers=`` harness.

A bare ``ProcessPoolExecutor`` fails catastrophically: one worker death
marks the pool broken and every in-flight future — a whole replication
grid — raises ``BrokenProcessPool``; a hung kernel blocks ``pool.map``
forever.  :func:`run_supervised` replaces that with bounded, *verified*
recovery built on the repository's determinism contract
(:mod:`repro.parallel`): every task is a pure function of its payload
(seeds included), so re-running a failed task — and only that task —
reproduces exactly the rows the lost worker would have returned.

Failure handling, per task attempt:

* **Errors** (an exception raised inside the task) are retried up to
  ``policy.max_retries`` times with exponential backoff plus
  deterministic jitter.
* **Crashes** (worker process death) break the pool; completed results
  are kept, a fresh pool is built, and only the unfinished tasks are
  resubmitted.  Any task in flight during the crash counts one attempt.
* **Timeouts** (``policy.timeout`` seconds without a result) abandon the
  pool — a hung worker cannot be joined — and retry the stuck task in a
  fresh one.  The budget is generous by construction: it is measured
  from the moment supervision starts *waiting* on that task's future,
  never shorter than the configured value.  Serial execution cannot
  preempt a hung call, so ``timeout`` only applies under ``workers>1``.
* **Degradation**: after a crash or timeout, the retry runs with
  ``REPRO_COMPILED=0`` when the compiled tier was enabled — a
  segfaulting or deadlocked kernel build degrades that shard to the
  bit-identical numpy engines instead of killing the run.  The
  downgrade is reported through a ``RuntimeWarning`` and the
  :class:`SupervisionReport`.
* **Exhaustion** raises :class:`RetryExhaustedError` carrying the
  task's label — callers pass shard/seed identity in ``labels`` so the
  error names exactly which seeds were lost.

Fault injection (:mod:`repro.resilience.faults`) hooks in at the start
of every attempt, in the executing process, which is how the test suite
and the CI ``fault-injection`` job drive each of these paths
deterministically.
"""

from __future__ import annotations

import inspect
import os
import time
import warnings
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro import envgates
from repro.resilience.faults import FAULT_ENV, InjectedCrash, inject

__all__ = [
    "RetryPolicy",
    "TaskFailure",
    "SupervisionReport",
    "RetryExhaustedError",
    "backoff_seconds",
    "retry_call",
    "run_supervised",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor reacts to task failures.

    ``max_retries`` bounds the *extra* attempts per task (0 disables
    retry entirely).  ``timeout`` is the per-task wall-clock budget in
    seconds (``None`` waits forever).  Under a pool an overrunning task
    is abandoned and retried in a fresh pool; serially it is enforced
    *cooperatively* — when the callable accepts a ``deadline=`` keyword
    it receives ``Deadline.after(timeout)`` per attempt and stops
    itself at the next phase boundary, returning its best-so-far (see
    :func:`retry_call`; a callable without the keyword cannot be
    preempted and keeps the old unbounded behavior).  Backoff before
    retry round ``k``
    sleeps ``backoff * backoff_factor**k`` seconds, capped at
    ``max_backoff`` and stretched by up to ``jitter`` (fractional),
    drawn deterministically from ``seed`` — supervision never perturbs
    any result stream.  ``degrade_compiled`` enables the crash/timeout
    downgrade to ``REPRO_COMPILED=0`` described in the module docstring.
    """

    max_retries: int = 3
    timeout: "float | None" = None
    backoff: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    jitter: float = 0.25
    degrade_compiled: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(
                f"timeout must be positive or None, got {self.timeout}"
            )
        if self.backoff < 0 or self.backoff_factor < 1 or self.max_backoff < 0:
            raise ValueError(
                "backoff must be >= 0, backoff_factor >= 1 and "
                f"max_backoff >= 0, got ({self.backoff}, "
                f"{self.backoff_factor}, {self.max_backoff})"
            )
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")


@dataclass(frozen=True)
class TaskFailure:
    """One recorded failure: which task, which attempt, what happened."""

    task: int
    attempt: int
    kind: str  # "error" | "crash" | "timeout"
    error: str
    label: "str | None" = None

    def describe(self) -> str:
        """Human-readable one-liner naming the shard."""
        who = self.label if self.label else f"task {self.task}"
        return f"{who} [{self.kind} on attempt {self.attempt}] {self.error}"


@dataclass
class SupervisionReport:
    """What supervision had to do during one run.

    Empty after a fault-free run.  Callers pass an instance into
    :func:`run_supervised` (or the harness layers above it) to surface
    recovery activity — the CLI prints :meth:`summary` when non-empty.
    """

    failures: list[TaskFailure] = field(default_factory=list)
    degraded: set[int] = field(default_factory=set)

    @property
    def n_failures(self) -> int:
        """Total recorded failures (every failed attempt counts one)."""
        return len(self.failures)

    def kinds(self) -> dict[str, int]:
        """Failure counts per kind, in first-seen order."""
        counts: dict[str, int] = {}
        for failure in self.failures:
            counts[failure.kind] = counts.get(failure.kind, 0) + 1
        return counts

    def summary(self) -> str:
        """One-line account, e.g. for CLI stderr."""
        if not self.failures and not self.degraded:
            return "[supervision] clean run: no failures"
        kinds = ", ".join(
            f"{count} {kind}" for kind, count in self.kinds().items()
        )
        parts = [f"[supervision] {self.n_failures} failure(s) ({kinds})"]
        if self.degraded:
            tasks = ", ".join(str(task) for task in sorted(self.degraded))
            parts.append(
                f"{len(self.degraded)} shard(s) degraded to numpy "
                f"engines (tasks {tasks})"
            )
        return "; ".join(parts)


class RetryExhaustedError(RuntimeError):
    """A task failed on every allowed attempt.

    Carries the shard identity (``label``, as passed by the harness —
    scenario/solver/seed coordinates), the attempt count and the last
    error, so a lost grid cell is nameable and individually re-runnable.
    """

    def __init__(
        self,
        task: int,
        attempts: int,
        last_error: str,
        label: "str | None" = None,
    ) -> None:
        self.task = task
        self.attempts = attempts
        self.last_error = last_error
        self.label = label
        who = label if label else f"task {task}"
        super().__init__(
            f"{who} failed on all {attempts} attempt(s); last error: "
            f"{last_error}"
        )


def backoff_seconds(policy: RetryPolicy, round_index: int) -> float:
    """Deterministic backoff before retry round ``round_index`` (0-based).

    Exponential growth, capped, with jitter drawn from a generator
    seeded by ``(policy.seed, round_index)`` — reproducible, and never
    touching global RNG state.
    """
    base = policy.backoff * policy.backoff_factor**round_index
    base = min(base, policy.max_backoff)
    if base and policy.jitter:
        draw = np.random.default_rng((policy.seed, round_index)).random()
        base *= 1.0 + policy.jitter * draw
    return base


@contextmanager
def _degraded_env(active: bool):
    """Force ``REPRO_COMPILED=0`` for the duration of one task attempt.

    The compiled tier reads the gate live (``engine="auto"`` resolves
    per call), so flipping the variable in the executing process is the
    whole downgrade; restoring it afterwards keeps a reused pool worker
    from silently degrading later tasks.  Engines are bit-identical, so
    the flag only ever changes speed, never results.
    """
    if not active:
        yield
        return
    prior = envgates.raw("REPRO_COMPILED")
    os.environ["REPRO_COMPILED"] = "0"
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop("REPRO_COMPILED", None)
        else:
            os.environ["REPRO_COMPILED"] = prior


def _compiled_enabled() -> bool:
    return envgates.compiled_enabled()


def _worker_init() -> None:
    """Pool-worker bootstrap: pin each worker to one compute thread.

    The compiled kernels parallelize with OpenMP; with the process pool
    already saturating the cores, nested threading would oversubscribe
    them.  Runs once per worker process at pool start.
    """
    os.environ["OMP_NUM_THREADS"] = "1"
    try:
        from repro.core.engine import compiled

        if compiled.is_available():
            compiled.set_num_threads(1)
    except Exception:  # repro-lint: disable=RL007
        # Thread pinning is a performance nicety; a worker that cannot
        # build or load the kernels simply runs the numpy paths.
        pass


#: Environment the parent snapshots into every task payload.  Persistent
#: pool workers fork *once* and are reused across calls, so variables
#: the caller (or a test) flips after pool creation — fault plans, the
#: compiled-tier gate — would otherwise be stale inside the worker.
_SNAPSHOT_VARS = (FAULT_ENV, "REPRO_COMPILED")


def _env_snapshot() -> dict:
    """The parent-side values of :data:`_SNAPSHOT_VARS`, at submit time."""
    return {name: envgates.raw(name) for name in _SNAPSHOT_VARS}


@contextmanager
def _applied_env(snapshot: "dict | None"):
    """Impose the parent's env snapshot for one task attempt."""
    if not snapshot:
        yield
        return
    prior = {name: os.environ.get(name) for name in snapshot}
    for name, value in snapshot.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value
    try:
        yield
    finally:
        for name, value in prior.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _supervised_call(payload):
    """One task attempt inside a pool worker (top-level: pickling)."""
    runner, task, index, attempt, degraded, env = payload
    with _applied_env(env), _degraded_env(degraded):
        inject(index, attempt, degraded=degraded, in_process=False)
        return runner(task)


def _record(
    report: "SupervisionReport | None", failure: TaskFailure
) -> None:
    if report is not None:
        report.failures.append(failure)


def _mark_degraded(
    report: "SupervisionReport | None",
    task: int,
    label: "str | None",
    kind: str,
) -> None:
    if report is not None:
        report.degraded.add(task)
    who = label if label else f"task {task}"
    warnings.warn(
        f"{who} hit a {kind} under supervision; retrying with "
        "REPRO_COMPILED=0 (numpy engines, identical results)",
        RuntimeWarning,
        stacklevel=3,
    )


def _accepts_deadline(fn: Callable) -> bool:
    """Whether ``fn`` can receive a ``deadline=`` keyword argument."""
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if parameter.name == "deadline" and parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            return True
    return False


def retry_call(
    fn: Callable[..., object],
    *,
    task: int = 0,
    policy: "RetryPolicy | None" = None,
    label: "str | None" = None,
    report: "SupervisionReport | None" = None,
):
    """Run ``fn`` under the serial retry/degradation loop.

    The in-process half of the supervisor, shared by serial
    :func:`run_supervised` execution and by step-level callers like
    :class:`~repro.scenario.runner.ScenarioRunner`: fault injection
    fires per attempt (``task`` keys the fault plan), injected crashes
    degrade to the numpy engines exactly like real pool crashes, and
    exhaustion raises :class:`RetryExhaustedError` with the label.

    ``policy.timeout`` is enforced cooperatively: when ``fn`` accepts a
    ``deadline=`` keyword, every attempt receives a fresh
    ``Deadline.after(policy.timeout)`` and is expected to stop itself
    at its next phase boundary (an anytime solve returns its tracked
    best with ``stopped_by="deadline"`` — a *successful* attempt, so no
    retry fires).  This makes the serial path honor the same budget the
    pool path enforces by abandoning workers; the semantic difference —
    truncate-and-keep versus abandon-and-retry — is inherent to
    cooperative cancellation.
    """
    policy = policy if policy is not None else RetryPolicy()
    pass_deadline = policy.timeout is not None and _accepts_deadline(fn)
    attempt = 0
    degraded = False
    while True:
        try:
            with _degraded_env(degraded):
                inject(task, attempt, degraded=degraded, in_process=True)
                if pass_deadline:
                    # Deferred import: repro.anytime is a leaf package,
                    # but keep the hot no-timeout path import-free.
                    from repro.anytime.deadline import Deadline

                    return fn(deadline=Deadline.after(policy.timeout))
                return fn()
        except Exception as exc:  # noqa: BLE001 — supervision boundary
            kind = "crash" if isinstance(exc, InjectedCrash) else "error"
            _record(
                report,
                TaskFailure(
                    task=task,
                    attempt=attempt,
                    kind=kind,
                    error=repr(exc),
                    label=label,
                ),
            )
            attempt += 1
            if attempt > policy.max_retries:
                raise RetryExhaustedError(
                    task=task,
                    attempts=attempt,
                    last_error=repr(exc),
                    label=label,
                ) from exc
            if (
                kind == "crash"
                and policy.degrade_compiled
                and not degraded
                and _compiled_enabled()
            ):
                degraded = True
                _mark_degraded(report, task, label, kind)
            delay = backoff_seconds(policy, attempt - 1)
            if delay:
                time.sleep(delay)


#: Sentinel distinguishing "use the global runtime" (the default) from an
#: explicit ``pool_provider=None`` (force the legacy pool-per-round path).
_USE_DEFAULT_PROVIDER = object()


def _close_pool(pool: ProcessPoolExecutor, force: bool) -> None:
    """Shut a round's pool down; ``force`` abandons hung/dead workers."""
    if not force:
        pool.shutdown(wait=True)
        return
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # repro-lint: disable=RL007
            # Best-effort teardown of an already-dying process.
            pass


def _default_pool_provider():
    """The global persistent runtime, unless ``REPRO_RUNTIME`` disables it.

    Deferred import: :mod:`repro.parallel` imports this module at load
    time, so the runtime can only be reached lazily from here.
    """
    from repro.parallel.runtime import get_runtime, runtime_enabled

    if not runtime_enabled():
        return None
    return get_runtime()


def run_supervised(
    runner: Callable[[object], object],
    tasks: Sequence,
    *,
    workers: "int | None" = None,
    policy: "RetryPolicy | None" = None,
    labels: "Sequence[str] | None" = None,
    on_result: "Callable[[int, object], None] | None" = None,
    report: "SupervisionReport | None" = None,
    pool_provider: object = _USE_DEFAULT_PROVIDER,
    on_retry: "Callable | None" = None,
) -> list:
    """Run every task to completion (or exhaustion); results in order.

    ``runner`` must be a top-level function and tasks picklable when
    ``workers > 1`` (the :mod:`repro.parallel` contract).  ``labels``
    optionally names each task for error messages and the report;
    ``on_result(index, value)`` fires in the parent as each task
    completes — completion order under a pool, task order serially —
    which is the checkpoint layer's persistence hook.  Failed tasks are
    retried per ``policy``; results already completed are never
    recomputed.  Raises :class:`RetryExhaustedError` when a task runs
    out of attempts (results completed by then have already been
    delivered to ``on_result``).

    ``pool_provider`` supplies executors (``acquire_pool(workers)`` /
    ``release_pool(pool, dirty=...)``).  By default the process-wide
    :class:`~repro.parallel.runtime.ParallelRuntime` keeps one warm pool
    across calls; a crash or timeout releases the pool *dirty* — its
    processes are terminated and the next round rebuilds — so no broken
    worker is ever reused.  Pass ``None`` (or set ``REPRO_RUNTIME=0``)
    for the legacy pool-per-round behavior.  ``on_retry(index, task,
    kind, error)`` may return a replacement payload for a failed task
    before it is resubmitted — the broadcast-loss fallback hook; it
    defaults to the provider's ``task_fallback`` when the provider has
    one.
    """
    policy = policy if policy is not None else RetryPolicy()
    if pool_provider is _USE_DEFAULT_PROVIDER:
        pool_provider = _default_pool_provider()
    if on_retry is None and pool_provider is not None:
        on_retry = getattr(pool_provider, "task_fallback", None)
    if workers is not None and workers < 1:
        raise ValueError(
            f"workers must be a positive int or None, got {workers}"
        )
    if labels is not None and len(labels) != len(tasks):
        raise ValueError(f"{len(labels)} labels for {len(tasks)} tasks")
    n = len(tasks)
    results: list = [None] * n
    if n == 0:
        return results

    def label_of(index: int) -> "str | None":
        return labels[index] if labels is not None else None

    if workers is None or workers == 1:
        for index, task in enumerate(tasks):
            value = retry_call(
                lambda runner=runner, task=task: runner(task),
                task=index,
                policy=policy,
                label=label_of(index),
                report=report,
            )
            results[index] = value
            if on_result is not None:
                on_result(index, value)
        return results

    tasks = list(tasks)
    attempts = [0] * n
    degraded = [False] * n
    pending = list(range(n))
    round_index = 0
    while pending:
        if pool_provider is not None:
            pool = pool_provider.acquire_pool(min(workers, len(pending)))
        else:
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(pending)),
                initializer=_worker_init,
            )
        env = _env_snapshot()
        futures = []
        unsubmitted: list[int] = []
        for position, index in enumerate(pending):
            try:
                futures.append(
                    (
                        index,
                        pool.submit(
                            _supervised_call,
                            (runner, tasks[index], index, attempts[index],
                             degraded[index], env),
                        ),
                    )
                )
            except BrokenProcessPool:
                # A warm pool can lose a worker between calls and only
                # reveal it at submit time; classify the unsubmitted
                # tail as crashed and let the retry round rebuild.
                unsubmitted = pending[position:]
                break
        failed: list[tuple[int, str, str]] = []
        dirty = bool(unsubmitted)
        for index, future in futures:
            try:
                value = future.result(timeout=policy.timeout)
            except FuturesTimeoutError:
                dirty = True
                failed.append(
                    (
                        index,
                        "timeout",
                        f"no result within {policy.timeout:g}s",
                    )
                )
                continue
            except BrokenProcessPool:
                dirty = True
                failed.append(
                    (index, "crash", "worker process died (BrokenProcessPool)")
                )
                continue
            except CancelledError:
                dirty = True
                failed.append((index, "crash", "future cancelled"))
                continue
            except Exception as exc:  # noqa: BLE001 — supervision boundary
                failed.append((index, "error", repr(exc)))
                continue
            results[index] = value
            if on_result is not None:
                on_result(index, value)
        for index in unsubmitted:
            failed.append(
                (index, "crash", "worker process died (BrokenProcessPool)")
            )
        if pool_provider is not None:
            pool_provider.release_pool(pool, dirty=dirty)
        else:
            _close_pool(pool, force=dirty)

        pending = []
        for index, kind, error in failed:
            _record(
                report,
                TaskFailure(
                    task=index,
                    attempt=attempts[index],
                    kind=kind,
                    error=error,
                    label=label_of(index),
                ),
            )
            attempts[index] += 1
            if attempts[index] > policy.max_retries:
                raise RetryExhaustedError(
                    task=index,
                    attempts=attempts[index],
                    last_error=error,
                    label=label_of(index),
                )
            if (
                kind in ("crash", "timeout")
                and policy.degrade_compiled
                and not degraded[index]
                and _compiled_enabled()
            ):
                degraded[index] = True
                _mark_degraded(report, index, label_of(index), kind)
            if on_retry is not None:
                replacement = on_retry(index, tasks[index], kind, error)
                if replacement is not None:
                    tasks[index] = replacement
            pending.append(index)
        if pending:
            delay = backoff_seconds(policy, round_index)
            if delay:
                time.sleep(delay)
        round_index += 1
    return results
