"""Deterministic fault injection for the supervised execution layer.

Testing recovery paths needs *reproducible* failures: a worker that dies
on exactly task 2's first attempt, a shard that hangs for exactly half a
second, a kernel that segfaults only while the compiled tier is active.
A :class:`FaultPlan` encodes such a schedule; the supervised runner
consults it before executing every task attempt, in the process that
will run the task.

Plans are plain strings so they travel through the environment into pool
workers unchanged::

    REPRO_FAULT_INJECT="kill@0,poison@1:2,delay@2:0.5,crash-compiled@3"

Grammar: comma-separated ``kind@index[:param]`` entries.

* ``kill@i[:n]`` — hard worker death on task ``i`` (``os._exit`` in a
  pool worker, :class:`InjectedCrash` when running in-process); fires on
  the first ``n`` attempts (default 1), so a retried attempt succeeds.
* ``poison@i[:n]`` — raises :class:`InjectedFault` (an ordinary task
  error) on the first ``n`` attempts.  ``n`` larger than the retry
  budget forces retry exhaustion.
* ``delay@i[:seconds]`` — sleeps (default 1.0 s) on every attempt; pair
  with a per-task timeout to exercise hung-worker handling.
* ``crash-compiled@i`` — dies like ``kill`` on **every** attempt made
  while the compiled engine tier is enabled, and never once supervision
  has degraded the task to ``REPRO_COMPILED=0`` — the deterministic
  stand-in for a segfaulting kernel build.

Because a fault fires as a function of ``(task index, attempt,
degraded)`` only, an injected run's *recovery* is deterministic: retries
draw nothing from any result stream, so the recovered results are
bit-identical to a fault-free run (asserted by
``tests/resilience/test_supervisor.py``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro import envgates

__all__ = [
    "FAULT_ENV",
    "Fault",
    "FaultPlan",
    "InjectedCrash",
    "InjectedFault",
    "active_plan",
    "inject",
]

#: The environment variable a plan travels through (parent -> workers).
FAULT_ENV = "REPRO_FAULT_INJECT"

#: Exit code of an injected hard worker death — distinctive in CI logs.
_KILL_EXIT_CODE = 73

_KINDS = ("kill", "poison", "delay", "crash-compiled")


class InjectedFault(RuntimeError):
    """An injected ordinary task failure (the ``poison`` kind)."""


class InjectedCrash(RuntimeError):
    """An injected worker death, simulated in-process.

    Pool workers really die (``os._exit``); serial execution raises this
    instead so the supervisor's crash classification — and its
    compiled-tier degradation — can be exercised without a pool.
    """


def _compiled_enabled() -> bool:
    return envgates.compiled_enabled()


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: ``kind`` on task ``index`` with ``param``.

    ``param`` is the attempt count for ``kill``/``poison`` and the sleep
    seconds for ``delay``; ``crash-compiled`` ignores it.
    """

    kind: str
    index: int
    param: float

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(_KINDS)}"
            )
        if self.index < 0:
            raise ValueError(f"fault index must be >= 0, got {self.index}")
        if self.param <= 0:
            raise ValueError(f"fault param must be positive, got {self.param}")

    def fires(self, attempt: int, degraded: bool) -> bool:
        """Whether this fault triggers on the given task attempt."""
        if self.kind == "crash-compiled":
            return not degraded and _compiled_enabled()
        if self.kind == "delay":
            return True
        return attempt < int(self.param)

    def to_entry(self) -> str:
        """The ``kind@index[:param]`` form :meth:`FaultPlan.parse` reads."""
        if self.kind == "crash-compiled":
            return f"{self.kind}@{self.index}"
        if self.kind == "delay":
            return f"{self.kind}@{self.index}:{self.param:g}"
        param = int(self.param)
        if param == 1:
            return f"{self.kind}@{self.index}"
        return f"{self.kind}@{self.index}:{param}"


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults, keyed by task index."""

    faults: tuple[Fault, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``kind@index[:param]`` comma list (see module doc)."""
        faults = []
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            kind, at, rest = entry.partition("@")
            if not at:
                raise ValueError(
                    f"bad fault entry {entry!r}: expected kind@index[:param]"
                )
            index_text, colon, param_text = rest.partition(":")
            try:
                index = int(index_text)
            except ValueError:
                raise ValueError(
                    f"bad fault entry {entry!r}: index {index_text!r} is "
                    "not an integer"
                ) from None
            if colon:
                try:
                    param = float(param_text)
                except ValueError:
                    raise ValueError(
                        f"bad fault entry {entry!r}: param {param_text!r} "
                        "is not a number"
                    ) from None
            else:
                param = 1.0
            faults.append(Fault(kind=kind.strip(), index=index, param=param))
        return cls(faults=tuple(faults))

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_tasks: int,
        rate: float = 0.25,
        kinds: tuple[str, ...] = ("kill", "poison"),
    ) -> "FaultPlan":
        """A reproducible random schedule: ``seed`` fixes the victims.

        Each task index independently receives one fault with
        probability ``rate``; the kind cycles through ``kinds`` on the
        same stream.  The point is CI chaos runs that are still exactly
        re-runnable: the same seed always injects the same schedule.
        """
        if n_tasks <= 0:
            raise ValueError(f"n_tasks must be positive, got {n_tasks}")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if not kinds:
            raise ValueError("seeded plans need at least one fault kind")
        rng = np.random.default_rng(seed)
        faults = []
        for index in range(n_tasks):
            if rng.random() >= rate:
                continue
            kind = kinds[int(rng.integers(len(kinds)))]
            param = 0.25 if kind == "delay" else 1.0
            faults.append(Fault(kind=kind, index=index, param=param))
        return cls(faults=tuple(faults))

    def to_spec(self) -> str:
        """The environment-variable form; ``parse`` round-trips it."""
        return ",".join(fault.to_entry() for fault in self.faults)

    def faults_for(self, index: int) -> tuple[Fault, ...]:
        """The scheduled faults of one task index, in plan order."""
        return tuple(fault for fault in self.faults if fault.index == index)

    def __bool__(self) -> bool:
        return bool(self.faults)


#: Per-process parse cache: workers consult the plan on every task, the
#: spec string almost never changes.
_plan_cache: "tuple[str, FaultPlan] | None" = None

_EMPTY_PLAN = FaultPlan()


def active_plan() -> FaultPlan:
    """The plan in :data:`FAULT_ENV`, or an empty plan when unset.

    Read live (never cached across value changes) so tests and CI can
    flip the variable between runs; workers inherit it at fork.
    """
    global _plan_cache
    spec = envgates.fault_spec()
    if not spec:
        return _EMPTY_PLAN
    if _plan_cache is not None and _plan_cache[0] == spec:
        return _plan_cache[1]
    plan = FaultPlan.parse(spec)
    _plan_cache = (spec, plan)
    return plan


def inject(
    index: int,
    attempt: int,
    *,
    degraded: bool = False,
    in_process: bool = True,
    plan: "FaultPlan | None" = None,
) -> None:
    """Fire the scheduled faults of one task attempt, if any.

    Called by the supervised runner in the process about to execute the
    task.  ``in_process`` selects kill semantics: a pool worker really
    exits, an in-process (serial) run raises :class:`InjectedCrash` so
    the supervising loop survives to retry.  Delays happen before any
    raising fault so a ``delay`` + ``kill`` schedule hangs *then* dies,
    like real stuck-worker crashes do.
    """
    plan = active_plan() if plan is None else plan
    if not plan:
        return
    faults = [
        fault
        for fault in plan.faults_for(index)
        if fault.fires(attempt, degraded)
    ]
    for fault in faults:
        if fault.kind == "delay":
            time.sleep(fault.param)
    for fault in faults:
        if fault.kind == "poison":
            raise InjectedFault(
                f"injected poison on task {index} attempt {attempt}"
            )
        if fault.kind in ("kill", "crash-compiled"):
            if in_process:
                raise InjectedCrash(
                    f"injected {fault.kind} on task {index} attempt {attempt}"
                )
            os._exit(_KILL_EXIT_CODE)
