"""Fault-tolerant execution: supervision, retry, checkpoint, fault injection.

The ``workers=`` harnesses (multi-chain portfolios, replication, the
scenario fleet) fan deterministic shard tasks over a process pool.  The
pool alone is brittle: one segfaulting kernel raises
``BrokenProcessPool`` and loses the whole grid, a hung worker stalls it
forever, and an interrupted long run restarts from zero.  This package
is the robustness layer the production roadmap items (placement service,
streaming re-optimization) sit on:

* :mod:`repro.resilience.supervisor` — a supervised pool with per-task
  timeouts, crash detection, bounded retry with exponential backoff +
  deterministic jitter, and graceful degradation of crashed shards to
  the numpy engines (``REPRO_COMPILED=0``).  Safe because every shard
  is deterministic per seed: a re-run shard returns bit-identical rows.
* :mod:`repro.resilience.checkpoint` — atomic JSON checkpoints with a
  seed-provenance manifest, so fleets, replications and scenario runs
  persist completed cells and ``resume_from=`` skips them (with a
  parity re-verification of one completed cell).
* :mod:`repro.resilience.faults` — a deterministic, seedable fault
  injector (kill / delay / poison specific task indices), activatable
  through ``REPRO_FAULT_INJECT`` so CI can prove the recovery paths.

The determinism contract of :mod:`repro.parallel` is what makes all of
this *verifiable* rather than hopeful: because shard results depend only
on their seeds, recovery can be asserted bit-identical to a fault-free
serial run — and the test suite does exactly that.
"""

from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointParityError,
    CheckpointStore,
    open_store,
    scenario_result_from_dict,
    scenario_result_to_dict,
    solve_result_from_dict,
    solve_result_to_dict,
    stable_scenario_dict,
)
from repro.resilience.faults import (
    FAULT_ENV,
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    active_plan,
    inject,
)
from repro.resilience.supervisor import (
    RetryExhaustedError,
    RetryPolicy,
    SupervisionReport,
    TaskFailure,
    retry_call,
    run_supervised,
)

__all__ = [
    "CheckpointError",
    "CheckpointParityError",
    "CheckpointStore",
    "FAULT_ENV",
    "FaultPlan",
    "InjectedCrash",
    "InjectedFault",
    "RetryExhaustedError",
    "RetryPolicy",
    "SupervisionReport",
    "TaskFailure",
    "active_plan",
    "inject",
    "open_store",
    "retry_call",
    "run_supervised",
    "scenario_result_from_dict",
    "scenario_result_to_dict",
    "solve_result_from_dict",
    "solve_result_to_dict",
    "stable_scenario_dict",
]
