"""Atomic JSON checkpoints with seed-provenance manifests.

Long grid runs — a scenario fleet, a many-seed replication, a long
scenario walk — should survive interruption.  Because every cell of
those grids is deterministic given its seeds (the :mod:`repro.parallel`
contract), a checkpoint does not need to freeze any in-flight state:
persisting each *completed* cell is enough, and a resumed run simply
recomputes the missing ones and must land bit-identically on the same
totals.

The format follows :mod:`repro.instances.serializer` conventions: plain
JSON, a ``format`` tag per document, explicit fields, no pickling.  A
:class:`CheckpointStore` is a directory of one JSON file per completed
cell plus a ``manifest.json`` recording the run's identity — root seed
entropy, grid axes, budgets, engine — so resuming under a *different*
configuration is a loud :class:`CheckpointError`, never silent reuse.

Resume is verified, not trusted: the harnesses re-run one checkpointed
cell and compare it field-for-field (volatile wall-clock ``seconds``
excluded) against the stored document — :exc:`CheckpointParityError` on
any divergence, which catches stale directories, code drift and
corrupted files.  Writes are atomic (temp file + ``os.replace``), so a
run killed mid-write never leaves a truncated cell behind.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Sequence

import numpy as np

# NOTE: every repro import is deferred into the conversion functions.
# The harness layers (solvers, scenario) sit above repro.parallel, which
# imports the supervisor from this package; importing them at module
# scope would close an import cycle.

__all__ = [
    "CheckpointError",
    "CheckpointParityError",
    "CheckpointStore",
    "RestoredStep",
    "entropy_payload",
    "open_store",
    "solve_result_to_dict",
    "solve_result_from_dict",
    "scenario_result_to_dict",
    "scenario_result_from_dict",
    "stable_scenario_dict",
]

_MANIFEST_FORMAT = "repro.checkpoint.v1"
_SOLVE_FORMAT = "repro.solve_result.v1"
_SCENARIO_FORMAT = "repro.scenario_result.v1"

_MANIFEST_NAME = "manifest.json"
_KEY_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class CheckpointError(RuntimeError):
    """A checkpoint directory cannot be used (missing, foreign, stale)."""


class CheckpointParityError(CheckpointError):
    """A re-verified cell no longer matches its stored document."""


def _normalize(payload: dict) -> dict:
    """JSON-roundtrip a manifest so comparisons see what disk sees."""
    return json.loads(json.dumps(payload, sort_keys=True))


def _write_json_atomic(path: Path, payload: dict) -> None:
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    os.replace(tmp, path)


def entropy_payload(entropy):
    """A ``SeedSequence.entropy`` value in its JSON form (tuples→lists)."""
    if isinstance(entropy, tuple):
        return list(entropy)
    return entropy


def open_store(
    manifest: dict,
    checkpoint=None,
    resume_from=None,
) -> "CheckpointStore | None":
    """The harnesses' shared ``checkpoint=`` / ``resume_from=`` semantics.

    ``checkpoint`` names a directory to persist completed cells into
    (created, or transparently continued when its manifest matches);
    ``resume_from`` additionally *requires* an existing checkpoint —
    resuming from nothing is an error, not a silent cold start.  Both
    together must name the same directory.  ``None``/``None`` disables
    checkpointing (returns ``None``).
    """
    if checkpoint is None and resume_from is None:
        return None
    if (
        checkpoint is not None
        and resume_from is not None
        and Path(checkpoint).resolve() != Path(resume_from).resolve()
    ):
        raise ValueError(
            "checkpoint and resume_from must name the same directory when "
            f"both are given, got {checkpoint!r} and {resume_from!r}"
        )
    directory = resume_from if resume_from is not None else checkpoint
    return CheckpointStore(
        directory, manifest, require_existing=resume_from is not None
    )


class CheckpointStore:
    """One run's checkpoint directory: a manifest plus per-cell files.

    Opening semantics:

    * directory without a manifest — a fresh store; ``manifest`` is
      written (atomically) and the directory created as needed.
    * directory with a manifest — a resume; the stored manifest must
      equal the given one (after JSON normalization) or the open fails
      with :class:`CheckpointError` naming the differing fields.
    * ``require_existing=True`` — refuse to create: resuming from a
      path that holds no checkpoint is an error, not a silent cold run.
    """

    def __init__(
        self,
        directory: "str | Path",
        manifest: dict,
        *,
        require_existing: bool = False,
    ) -> None:
        if "format" in manifest and manifest["format"] != _MANIFEST_FORMAT:
            raise ValueError(
                f"manifest format must be {_MANIFEST_FORMAT}, got "
                f"{manifest['format']!r}"
            )
        manifest = _normalize({**manifest, "format": _MANIFEST_FORMAT})
        self.directory = Path(directory)
        manifest_path = self.directory / _MANIFEST_NAME
        if manifest_path.exists():
            stored = json.loads(manifest_path.read_text())
            if stored.get("format") != _MANIFEST_FORMAT:
                raise CheckpointError(
                    f"{manifest_path} is not a {_MANIFEST_FORMAT} manifest "
                    f"(format={stored.get('format')!r})"
                )
            if stored != manifest:
                differing = sorted(
                    key
                    for key in set(stored) | set(manifest)
                    if stored.get(key) != manifest.get(key)
                )
                raise CheckpointError(
                    f"checkpoint at {self.directory} was written by a "
                    "different run configuration (differing fields: "
                    f"{', '.join(differing)}); point checkpointing at a "
                    "fresh directory or rerun with the original settings"
                )
            self.resumed = True
        else:
            if require_existing:
                raise CheckpointError(
                    f"nothing to resume: {manifest_path} does not exist"
                )
            self.directory.mkdir(parents=True, exist_ok=True)
            _write_json_atomic(manifest_path, manifest)
            self.resumed = False
        self.manifest = manifest

    # ------------------------------------------------------------------
    # Cells
    # ------------------------------------------------------------------

    def _path(self, key: str) -> Path:
        if not _KEY_PATTERN.match(key):
            raise ValueError(
                f"checkpoint key {key!r} must match {_KEY_PATTERN.pattern}"
            )
        return self.directory / f"{key}.json"

    def has(self, key: str) -> bool:
        """Whether a completed cell is stored under ``key``."""
        return self._path(key).exists()

    def save(self, key: str, payload: dict) -> None:
        """Atomically persist one completed cell."""
        _write_json_atomic(self._path(key), payload)

    def load(self, key: str) -> dict:
        """The stored cell document; :class:`CheckpointError` if absent."""
        path = self._path(key)
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            raise CheckpointError(f"no checkpointed cell at {path}") from None
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"corrupt checkpoint cell {path}: {exc}")

    def keys(self) -> list[str]:
        """Stored cell keys, sorted (manifest excluded)."""
        return sorted(
            path.stem
            for path in self.directory.glob("*.json")
            if path.name != _MANIFEST_NAME and not path.name.startswith(".")
        )

    def verify_cell(self, key: str, fresh_payload: dict) -> None:
        """Assert a recomputed cell matches its stored document.

        The resume-parity gate: volatile wall-clock fields are excluded
        (scenario step ``seconds``), everything else must be equal
        field-for-field.  JSON float round-trips are exact, so this is a
        bit-identity check on the stable fields.
        """
        stored = self.load(key)
        if _stable(stored) != _stable(_normalize(fresh_payload)):
            raise CheckpointParityError(
                f"re-verified cell {key!r} in {self.directory} does not "
                "match its checkpoint: the store was written by different "
                "code, seeds or data — refusing to resume from it"
            )

    def __repr__(self) -> str:
        return (
            f"CheckpointStore({str(self.directory)!r}, "
            f"cells={len(self.keys())}, resumed={self.resumed})"
        )


#: Wall-clock fields: legitimately different between executions of
#: identical work, so the resume-parity comparisons must ignore them.
_VOLATILE_KEYS = frozenset({"seconds", "elapsed_seconds"})


def _stable(payload):
    """A copy with volatile wall-clock fields removed."""
    if isinstance(payload, dict):
        return {
            key: _stable(value)
            for key, value in payload.items()
            if key not in _VOLATILE_KEYS
        }
    if isinstance(payload, list):
        return [_stable(value) for value in payload]
    return payload


def stable_scenario_dict(payload: dict) -> dict:
    """The comparison form of a scenario document (``seconds`` stripped).

    What the resume-parity assertion and the interrupted-vs-uninterrupted
    tests compare: every result field except wall-clock timings, which
    legitimately differ between executions of identical work.
    """
    return _stable(payload)


# ----------------------------------------------------------------------
# SolveResult documents
# ----------------------------------------------------------------------


def solve_result_to_dict(result: SolveResult) -> dict:
    """Explicit JSON-ready form of one solve outcome.

    Captures everything the reporting layers read — best placement,
    metric bundle, fitness, effort counts — and deliberately drops the
    family trace and the engine cache: the trace is a debugging artifact
    and the cache is a performance hint that any consumer treats as
    optional (results are unaffected without it).
    """
    from repro.instances.serializer import placement_to_dict

    best = result.best
    metrics = best.metrics
    return {
        "format": _SOLVE_FORMAT,
        "solver": result.solver,
        "n_evaluations": int(result.n_evaluations),
        "n_phases": int(result.n_phases),
        "warm_started": bool(result.warm_started),
        "stopped_by": result.stopped_by,
        "elapsed_seconds": float(result.elapsed_seconds),
        "fitness": float(best.fitness),
        "placement": placement_to_dict(best.placement),
        "metrics": {
            "giant_size": int(metrics.giant_size),
            "n_routers": int(metrics.n_routers),
            "covered_clients": int(metrics.covered_clients),
            "n_clients": int(metrics.n_clients),
            "n_components": int(metrics.n_components),
            "n_links": int(metrics.n_links),
            "mean_degree": float(metrics.mean_degree),
        },
        "giant_mask": [
            int(flag) for flag in np.asarray(best.giant_mask, dtype=bool)
        ],
    }


def solve_result_from_dict(payload: dict) -> SolveResult:
    """Inverse of :func:`solve_result_to_dict` (validates the tag)."""
    from repro.core.evaluation import Evaluation
    from repro.core.fitness import NetworkMetrics
    from repro.instances.serializer import placement_from_dict
    from repro.solvers.base import SolveResult

    if payload.get("format") != _SOLVE_FORMAT:
        raise CheckpointError(
            f"not a {_SOLVE_FORMAT} document: format={payload.get('format')!r}"
        )
    metrics = NetworkMetrics(
        giant_size=int(payload["metrics"]["giant_size"]),
        n_routers=int(payload["metrics"]["n_routers"]),
        covered_clients=int(payload["metrics"]["covered_clients"]),
        n_clients=int(payload["metrics"]["n_clients"]),
        n_components=int(payload["metrics"]["n_components"]),
        n_links=int(payload["metrics"]["n_links"]),
        mean_degree=float(payload["metrics"]["mean_degree"]),
    )
    best = Evaluation(
        placement=placement_from_dict(payload["placement"]),
        metrics=metrics,
        fitness=float(payload["fitness"]),
        giant_mask=np.asarray(payload["giant_mask"], dtype=bool),
    )
    return SolveResult(
        solver=payload["solver"],
        best=best,
        n_evaluations=int(payload["n_evaluations"]),
        n_phases=int(payload["n_phases"]),
        warm_started=bool(payload["warm_started"]),
        # Absent in pre-deadline documents — restore as "ran to budget".
        stopped_by=payload.get("stopped_by"),
        elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
    )


# ----------------------------------------------------------------------
# ScenarioResult documents
# ----------------------------------------------------------------------


class RestoredStep:
    """A checkpoint-restored stand-in for a ``ScenarioStep``.

    Carries exactly what the reporting layers read off a step — its
    ``index`` and ``event`` — without the problem instance, which a
    completed step's consumers never touch again.
    """

    __slots__ = ("index", "event")

    def __init__(self, index: int, event: str) -> None:
        self.index = index
        self.event = event

    def __repr__(self) -> str:
        return f"RestoredStep(index={self.index}, event={self.event!r})"


def _seed_payload(seed):
    if isinstance(seed, tuple):
        return list(seed)
    return seed


def _seed_restore(payload):
    if isinstance(payload, list):
        return tuple(payload)
    return payload


def scenario_result_to_dict(result: ScenarioResult) -> dict:
    """JSON-ready form of one scenario run, seed provenance included."""
    return {
        "format": _SCENARIO_FORMAT,
        "scenario": result.scenario_name,
        "solver": result.solver_name,
        "warm": bool(result.warm),
        "seed": _seed_payload(result.seed),
        "steps": [
            {
                "index": int(step.index),
                "event": step.event,
                "seconds": float(step.seconds),
                "result": solve_result_to_dict(step.result),
            }
            for step in result.steps
        ],
    }


def scenario_result_from_dict(payload: dict) -> ScenarioResult:
    """Inverse of :func:`scenario_result_to_dict`.

    Restored steps carry :class:`RestoredStep` stand-ins (index + event)
    instead of full problem instances; every aggregation the fleet and
    timeline layers perform reads only those fields.
    """
    from repro.scenario.runner import ScenarioResult, ScenarioStepResult

    if payload.get("format") != _SCENARIO_FORMAT:
        raise CheckpointError(
            f"not a {_SCENARIO_FORMAT} document: "
            f"format={payload.get('format')!r}"
        )
    steps = tuple(
        ScenarioStepResult(
            step=RestoredStep(int(item["index"]), item["event"]),
            result=solve_result_from_dict(item["result"]),
            seconds=float(item["seconds"]),
        )
        for item in payload["steps"]
    )
    return ScenarioResult(
        scenario_name=payload["scenario"],
        solver_name=payload["solver"],
        warm=bool(payload["warm"]),
        steps=steps,
        seed=_seed_restore(payload["seed"]),
    )


def rows_payload(rows: Sequence) -> list:
    """Replication rows (tuples of floats) as JSON lists."""
    return [list(map(float, row)) for row in rows]


def rows_restore(payload: Sequence) -> list[tuple]:
    """Inverse of :func:`rows_payload`."""
    return [tuple(row) for row in payload]
