"""Name-based lookup of client distributions.

The experiment harness and the CLI refer to distributions by name
(``"uniform"``, ``"normal"``, ``"exponential"``, ``"weibull"``); this
registry resolves those names to distribution instances.
"""

from __future__ import annotations

from typing import Callable

from repro.distributions.base import ClientDistribution
from repro.distributions.exponential import ExponentialDistribution
from repro.distributions.normal import NormalDistribution
from repro.distributions.uniform import UniformDistribution
from repro.distributions.weibull import WeibullDistribution

__all__ = ["available_distributions", "make_distribution", "register_distribution"]

_FACTORIES: dict[str, Callable[..., ClientDistribution]] = {
    UniformDistribution.name: UniformDistribution,
    NormalDistribution.name: NormalDistribution,
    ExponentialDistribution.name: ExponentialDistribution,
    WeibullDistribution.name: WeibullDistribution,
}


def available_distributions() -> list[str]:
    """Names of all registered distributions, sorted."""
    return sorted(_FACTORIES)


def register_distribution(
    name: str, factory: Callable[..., ClientDistribution]
) -> None:
    """Register a custom distribution under ``name``.

    Raises ``ValueError`` when the name is already taken, so library
    defaults cannot be silently shadowed.
    """
    if name in _FACTORIES:
        raise ValueError(f"distribution {name!r} is already registered")
    _FACTORIES[name] = factory


def make_distribution(name: str, **parameters) -> ClientDistribution:
    """Instantiate the distribution registered under ``name``.

    Keyword arguments are forwarded to the distribution constructor,
    e.g. ``make_distribution("weibull", shape=0.8)``.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(available_distributions())
        raise ValueError(f"unknown distribution {name!r}; known: {known}") from None
    return factory(**parameters)
