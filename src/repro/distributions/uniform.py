"""Uniform client distribution.

Clients spread evenly over the whole grid — the paper's baseline
distribution and the one used for the Random router placement analogy.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from repro.distributions.base import ClientDistribution

__all__ = ["UniformDistribution"]


class UniformDistribution(ClientDistribution):
    """Coordinates uniform over ``[0, extent)`` on each axis."""

    name: ClassVar[str] = "uniform"

    def sample_axis(
        self, count: int, extent: int, rng: np.random.Generator
    ) -> np.ndarray:
        return rng.uniform(0.0, float(extent), size=count)
