"""Client distribution framework.

"Mesh client nodes can be arbitrarily situated in the given area.  For
evaluation purposes ... different client mesh node distributions should
be considered" (Section 2).  The paper evaluates Uniform, Normal,
Exponential and Weibull distributions; each is a subclass of
:class:`ClientDistribution`.

A distribution samples the x and y coordinates independently from a 1-D
law parameterized by the axis extent.  Values falling outside the grid
are resampled (truncation by rejection), so the spatial law is the
conditional distribution given the grid — this matches how hotspot-style
client clustering is generated on a bounded area.
"""

from __future__ import annotations

import abc
from typing import ClassVar

import numpy as np

from repro.core.clients import ClientSet
from repro.core.geometry import Point
from repro.core.grid import GridArea

__all__ = ["ClientDistribution"]


class ClientDistribution(abc.ABC):
    """A spatial law for client mesh node positions.

    Subclasses implement :meth:`sample_axis`, drawing raw (possibly
    out-of-range) coordinates for one axis; the base class handles
    truncation to the grid and assembling :class:`ClientSet` objects.
    """

    #: Registry name of the distribution (e.g. ``"normal"``).
    name: ClassVar[str] = "abstract"

    #: How many resampling rounds to attempt before clamping leftovers.
    _max_resample_rounds: ClassVar[int] = 64

    @abc.abstractmethod
    def sample_axis(
        self, count: int, extent: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``count`` raw coordinates for an axis of size ``extent``.

        Returned values are floats and may fall outside ``[0, extent)``;
        the caller truncates.  ``extent`` lets parameter defaults scale
        with the grid (e.g. the paper's Normal uses ``sigma = extent/10``).
        """

    # ------------------------------------------------------------------
    # Truncated sampling
    # ------------------------------------------------------------------

    def sample_axis_truncated(
        self, count: int, extent: int, rng: np.random.Generator
    ) -> np.ndarray:
        """``count`` integer coordinates inside ``[0, extent)``.

        Out-of-range draws are rejected and resampled; after
        ``_max_resample_rounds`` rounds any stragglers are clamped to the
        boundary (this only triggers for pathological parameters, e.g. a
        mean far outside the grid).
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        values = self.sample_axis(count, extent, rng)
        values = np.asarray(values, dtype=float)
        if values.shape != (count,):
            raise ValueError(
                f"{type(self).__name__}.sample_axis returned shape "
                f"{values.shape}, expected ({count},)"
            )
        for _ in range(self._max_resample_rounds):
            out_of_range = (values < 0) | (values >= extent)
            n_bad = int(np.count_nonzero(out_of_range))
            if n_bad == 0:
                break
            values[out_of_range] = self.sample_axis(n_bad, extent, rng)
        values = np.clip(values, 0, extent - 1)
        return np.floor(values).astype(int)

    def sample_points(
        self, count: int, grid: GridArea, rng: np.random.Generator
    ) -> list[Point]:
        """``count`` client cells inside ``grid``."""
        xs = self.sample_axis_truncated(count, grid.width, rng)
        ys = self.sample_axis_truncated(count, grid.height, rng)
        return [Point(int(x), int(y)) for x, y in zip(xs, ys)]

    def sample_clients(
        self, count: int, grid: GridArea, rng: np.random.Generator
    ) -> ClientSet:
        """A :class:`ClientSet` of ``count`` clients inside ``grid``."""
        return ClientSet.from_points(self.sample_points(count, grid, rng), grid=grid)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
