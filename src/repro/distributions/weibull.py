"""Weibull client distribution.

"It has been shown from studies in real urban areas or university
campuses that users tend to cluster to hotspots.  Therefore different
client mesh node distributions should be considered, for instance
Weibull distribution" (Section 2).  The Weibull's shape parameter tunes
how sharply clients cluster near the origin corner: ``shape < 1`` is
extremely heavy near zero, ``shape = 1`` recovers the Exponential and
larger shapes push the mode away from the corner.

Sampling uses the inverse-transform method:
``X = scale * (-ln(1 - U)) ** (1 / shape)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.distributions.base import ClientDistribution

__all__ = ["WeibullDistribution"]


@dataclass(frozen=True)
class WeibullDistribution(ClientDistribution):
    """Per-axis Weibull with the given ``shape`` and ``scale``.

    When ``scale`` is ``None`` it defaults to ``extent / 3`` (DESIGN.md
    decision D7: the paper leaves Weibull parameters unspecified; the
    default produces a hotspot around the lower-left with a visible tail
    across the grid).
    """

    shape: float = 1.2
    scale: float | None = None

    name: ClassVar[str] = "weibull"

    def __post_init__(self) -> None:
        if self.shape <= 0:
            raise ValueError(f"shape must be positive, got {self.shape}")
        if self.scale is not None and self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    def axis_scale(self, extent: int) -> float:
        """Effective scale for an axis of the given extent."""
        return self.scale if self.scale is not None else extent / 3.0

    def sample_axis(
        self, count: int, extent: int, rng: np.random.Generator
    ) -> np.ndarray:
        uniforms = rng.uniform(0.0, 1.0, size=count)
        return self.axis_scale(extent) * np.power(
            -np.log1p(-uniforms), 1.0 / self.shape
        )
