"""Normal (Gaussian) client distribution.

The paper's central-hotspot scenario: "client mesh nodes generated with
Normal distribution N(mu = 64, sigma = 128/10)" on a 128 x 128 grid
(Table 1) — users cluster around the middle of the deployment area.

Sampling uses the Box-Muller transform implemented here directly on top
of the uniform PRNG, so the library owns its randomness end to end (and
the test suite cross-validates the moments against ``scipy.stats``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.distributions.base import ClientDistribution

__all__ = ["NormalDistribution"]


@dataclass(frozen=True)
class NormalDistribution(ClientDistribution):
    """Per-axis Gaussian ``N(mean, std)``.

    When ``mean`` / ``std`` are ``None`` they default to the paper's
    parameterization relative to the axis extent: ``mean = extent / 2``
    and ``std = extent / 10`` (i.e. ``N(64, 12.8)`` on a 128 grid).
    """

    mean: float | None = None
    std: float | None = None

    name: ClassVar[str] = "normal"

    def __post_init__(self) -> None:
        if self.std is not None and self.std <= 0:
            raise ValueError(f"std must be positive, got {self.std}")

    def axis_mean(self, extent: int) -> float:
        """Effective mean for an axis of the given extent."""
        return self.mean if self.mean is not None else extent / 2.0

    def axis_std(self, extent: int) -> float:
        """Effective standard deviation for an axis of the given extent."""
        return self.std if self.std is not None else extent / 10.0

    def sample_axis(
        self, count: int, extent: int, rng: np.random.Generator
    ) -> np.ndarray:
        if count == 0:
            return np.zeros(0)
        # Box-Muller: two independent uniforms give two independent
        # standard normals; we generate in pairs and keep ``count``.
        n_pairs = (count + 1) // 2
        u1 = rng.uniform(np.finfo(float).tiny, 1.0, size=n_pairs)
        u2 = rng.uniform(0.0, 1.0, size=n_pairs)
        magnitude = np.sqrt(-2.0 * np.log(u1))
        angle = 2.0 * np.pi * u2
        normals = np.concatenate(
            [magnitude * np.cos(angle), magnitude * np.sin(angle)]
        )[:count]
        return self.axis_mean(extent) + self.axis_std(extent) * normals
