"""Exponential client distribution.

Clients pile up towards the origin corner of the grid and thin out
exponentially — the paper's asymmetric-hotspot scenario (Table 2).

Sampling uses the inverse-transform method on top of the uniform PRNG:
``X = -scale * ln(1 - U)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.distributions.base import ClientDistribution

__all__ = ["ExponentialDistribution"]


@dataclass(frozen=True)
class ExponentialDistribution(ClientDistribution):
    """Per-axis Exponential with the given ``scale`` (mean).

    When ``scale`` is ``None`` it defaults to ``extent / 4`` so that the
    bulk of the mass sits in the lower-left quarter of the grid (the
    paper leaves the parameter unspecified; see DESIGN.md decision D7).
    """

    scale: float | None = None

    name: ClassVar[str] = "exponential"

    def __post_init__(self) -> None:
        if self.scale is not None and self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    def axis_scale(self, extent: int) -> float:
        """Effective scale for an axis of the given extent."""
        return self.scale if self.scale is not None else extent / 4.0

    def sample_axis(
        self, count: int, extent: int, rng: np.random.Generator
    ) -> np.ndarray:
        uniforms = rng.uniform(0.0, 1.0, size=count)
        # Inverse transform; 1 - U avoids log(0) because U < 1.
        return -self.axis_scale(extent) * np.log1p(-uniforms)
