"""Client mesh node distributions (paper Section 2 / Section 5.1).

Uniform, Normal, Exponential and Weibull spatial laws for generating the
fixed client positions of benchmark instances, plus a registry for
name-based lookup from the experiment harness and the CLI.
"""

from repro.distributions.base import ClientDistribution
from repro.distributions.exponential import ExponentialDistribution
from repro.distributions.normal import NormalDistribution
from repro.distributions.registry import (
    available_distributions,
    make_distribution,
    register_distribution,
)
from repro.distributions.uniform import UniformDistribution
from repro.distributions.weibull import WeibullDistribution

__all__ = [
    "ClientDistribution",
    "ExponentialDistribution",
    "NormalDistribution",
    "UniformDistribution",
    "WeibullDistribution",
    "available_distributions",
    "make_distribution",
    "register_distribution",
]
