"""Best-neighbor selection (paper Algorithm 2).

"The exploration of the neighborhood can be done in different ways.  For
instance, we can systematically generate all movements ... or, in case
of large neighborhoods, just a pre-fixed number of movements is
generated and corresponding neighboring solutions are examined."

The placement neighborhoods here are large (every router x every free
cell), so the sampled variant is the work-horse:
:func:`best_neighbor` draws a pre-fixed number of candidate moves from
the movement type and returns the fittest resulting solution.

The phase's candidate set is evaluated as one batch through the
vectorized engine (:meth:`Evaluator.evaluate_many`): sampling the moves
stays sequential (identical RNG stream to the scalar loop), only the
evaluation is stacked.  Results and evaluation counts are bit-identical
to evaluating the candidates one by one.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluation import Evaluation, Evaluator
from repro.core.solution import Placement
from repro.neighborhood.moves import Move, RelocateMove
from repro.neighborhood.movements import MovementType

__all__ = ["apply_valid_move", "best_neighbor"]

#: Distinguishes "caller did not resolve the batch path" from "the
#: evaluator has no batch path" in :func:`best_neighbor`.
_UNRESOLVED = object()


def apply_valid_move(move: Move, placement: Placement) -> Placement | None:
    """``move`` applied to ``placement``, or ``None`` when it is stale.

    The common staleness — a relocation whose target cell is meanwhile
    occupied by another router — is pre-checked against the placement's
    cached occupancy set instead of paying a raised-and-caught
    ``ValueError`` per candidate in the search hot loops.  Anything the
    pre-check does not cover (exotic move types, out-of-range ids) falls
    through to the original try/except semantics.
    """
    if type(move) is RelocateMove and move.target in placement.occupied:
        cells = placement.cells
        if 0 <= move.router_id < len(cells) and cells[move.router_id] == move.target:
            # Relocating onto its own cell: with_move's documented no-op.
            return placement
        return None
    try:
        return move.apply(placement)
    except ValueError:
        return None


def best_neighbor(
    evaluator: Evaluator,
    current: Evaluation,
    movement: MovementType,
    rng: np.random.Generator,
    n_candidates: int = 16,
    evaluate_many=_UNRESOLVED,
) -> Evaluation | None:
    """The best solution among ``n_candidates`` sampled neighbors.

    Follows Algorithm 2: generate movements of the chosen type, apply
    them to the current solution and keep the best neighboring solution.
    Invalid or unavailable candidates (the movement returns ``None``, or
    the move no longer applies) are skipped; they still count against
    ``n_candidates`` so a phase has bounded cost.

    ``evaluate_many`` lets a phase loop hoist the batch-path capability
    probe: pass the evaluator's bound ``evaluate_many`` method (or
    ``None`` for evaluators without one) to skip the per-call
    ``getattr``; by default the probe runs here.

    Returns ``None`` when no candidate produced a valid neighbor —
    Algorithm 1 treats that as an idle phase.
    """
    if n_candidates <= 0:
        raise ValueError(f"n_candidates must be positive, got {n_candidates}")
    placement = current.placement
    neighbors: list[Placement] = []
    for _ in range(n_candidates):
        move = movement.propose(current, evaluator.problem, rng)
        if move is None:
            continue
        neighbor = apply_valid_move(move, placement)
        if neighbor is not None:
            neighbors.append(neighbor)
    if not neighbors:
        return None
    if evaluate_many is _UNRESOLVED:
        evaluate_many = getattr(evaluator, "evaluate_many", None)
    if evaluate_many is not None:
        evaluations = evaluate_many(neighbors)
    else:
        # Evaluators without a batch path (e.g. test doubles) still work.
        evaluations = [evaluator.evaluate(placement) for placement in neighbors]
    best = evaluations[0]
    for candidate in evaluations[1:]:
        # Strict comparison keeps the first-seen candidate on ties,
        # matching the original sequential loop.
        if candidate.fitness > best.fitness:
            best = candidate
    return best
