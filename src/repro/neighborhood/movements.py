"""Movement types — neighborhood structures (paper Section 4).

"Starting from an initial solution, the algorithm first selects a
movement type, that is the way the small local perturbation is
performed, which defines the neighborhood structure."

Two movement types come from the paper:

* :class:`SwapMovement` — Algorithm 3: the worst router of the most
  dense ``Hg x Wg`` area is exchanged with the best router of the most
  sparse area, "to promote the placement of best routers in most dense
  areas of the grid area".
* :class:`RandomMovement` — the "purely random search exploration"
  baseline of Section 5.2.2: a random router relocates to a random free
  cell.

:class:`CombinedMovement` mixes movement types stochastically — the
building block for the "full featured local search methods" the paper
announces as future work.
"""

from __future__ import annotations

import abc
from typing import ClassVar, Sequence

import numpy as np

from repro.core.density import DensityMap
from repro.core.evaluation import Evaluation
from repro.core.geometry import Point, Rect
from repro.core.grid import GridArea
from repro.core.problem import ProblemInstance
from repro.neighborhood.moves import Move, RelocateMove, SwapMove

__all__ = ["MovementType", "SwapMovement", "RandomMovement", "CombinedMovement"]


class MovementType(abc.ABC):
    """A neighborhood structure: proposes candidate moves."""

    #: Registry name of the movement (e.g. ``"swap"``).
    name: ClassVar[str] = "abstract"

    @abc.abstractmethod
    def propose(
        self,
        current: Evaluation,
        problem: ProblemInstance,
        rng: np.random.Generator,
    ) -> Move | None:
        """One candidate move from the neighborhood of ``current``.

        ``None`` signals that no move of this type is available (e.g. no
        router in the chosen window); Algorithm 2 simply samples again.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RandomMovement(MovementType):
    """Relocate a uniformly random router to a uniformly random free cell."""

    name: ClassVar[str] = "random"

    def propose(
        self,
        current: Evaluation,
        problem: ProblemInstance,
        rng: np.random.Generator,
    ) -> Move | None:
        placement = current.placement
        router_id = int(rng.integers(0, len(placement)))
        try:
            target = problem.grid.random_free_cell(placement.occupied, rng)
        except ValueError:
            # Fully packed grid: no relocation exists.
            return None
        return RelocateMove(router_id=router_id, target=target)


class SwapMovement(MovementType):
    """The swap movement of Algorithm 3.

    Parameters
    ----------
    window_fraction, window_width, window_height:
        Size of the ``Hg x Wg`` sub-areas ranked by density (fraction of
        the grid, or explicit cells).
    density_source:
        What "dense" counts — ``"routers"`` (default), ``"clients"`` or
        ``"both"``.  Algorithm 3 speaks of the most dense/sparse areas of
        the mesh without the "in terms of client nodes" qualifier that
        HotSpot carries, and only the router reading sustains the giant
        component growth of Fig. 4: as routers accrete, the dense window
        tracks the growing cluster instead of saturating on a fixed
        client hotspot (see DESIGN.md, decision D6).
    relocate:
        DESIGN.md decision D6.  ``False`` = literal Algorithm 3: the two
        routers exchange positions.  ``True`` (default) = the best
        sparse-area router also *relocates into* the dense window, the
        reading consistent with the growth shown in Fig. 4.
    pool:
        Candidate windows are sampled from the ``pool`` most extreme
        windows rather than always the single most extreme, so repeated
        proposals differ (Algorithm 2 samples several movements per
        phase).
    """

    name: ClassVar[str] = "swap"

    def __init__(
        self,
        window_fraction: float = 0.125,
        window_width: int | None = None,
        window_height: int | None = None,
        density_source: str = "routers",
        relocate: bool = True,
        pool: int = 8,
    ) -> None:
        if not 0.0 < window_fraction <= 1.0:
            raise ValueError(
                f"window_fraction must be in (0, 1], got {window_fraction}"
            )
        if density_source not in ("clients", "routers", "both"):
            raise ValueError(
                "density_source must be 'clients', 'routers' or 'both', "
                f"got {density_source!r}"
            )
        if pool <= 0:
            raise ValueError(f"pool must be positive, got {pool}")
        if window_width is not None and window_width <= 0:
            raise ValueError(f"window_width must be positive, got {window_width}")
        if window_height is not None and window_height <= 0:
            raise ValueError(f"window_height must be positive, got {window_height}")
        self.window_fraction = window_fraction
        self.window_width = window_width
        self.window_height = window_height
        self.density_source = density_source
        self.relocate = relocate
        self.pool = pool
        # Best-neighbor selection proposes many moves from the same
        # current solution; the ranked windows only depend on that
        # solution, so a one-entry cache removes the repeated density
        # computations (the placement is immutable, identity is safe).
        self._cached_placement = None
        self._cached_pools: tuple[list[Rect], list[Rect]] | None = None

    # ------------------------------------------------------------------
    # Algorithm 3, steps 1-3: windows
    # ------------------------------------------------------------------

    def window_size(self, grid: GridArea) -> tuple[int, int]:
        """Effective ``(Wg, Hg)`` on the given grid."""
        width = (
            self.window_width
            if self.window_width is not None
            else max(1, int(round(grid.width * self.window_fraction)))
        )
        height = (
            self.window_height
            if self.window_height is not None
            else max(1, int(round(grid.height * self.window_fraction)))
        )
        return min(width, grid.width), min(height, grid.height)

    def _density_points(
        self, current: Evaluation, problem: ProblemInstance
    ) -> np.ndarray:
        client_points = problem.clients.positions
        router_points = current.placement.positions_array()
        if self.density_source == "clients":
            return client_points
        if self.density_source == "routers":
            return router_points
        return np.vstack([client_points, router_points])

    def _window_pools(
        self, current: Evaluation, problem: ProblemInstance
    ) -> tuple[list[Rect], list[Rect]]:
        """The top dense and sparse windows for the current solution."""
        placement = current.placement
        if self._cached_placement is placement and self._cached_pools is not None:
            return self._cached_pools
        width, height = self.window_size(problem.grid)
        density = DensityMap.build(
            problem.grid, self._density_points(current, problem), width, height
        )
        pools = (
            density.ranked_windows(self.pool, densest=True),
            density.ranked_windows(self.pool, densest=False),
        )
        self._cached_placement = placement
        self._cached_pools = pools
        return pools

    def _windows(
        self,
        current: Evaluation,
        problem: ProblemInstance,
        rng: np.random.Generator,
    ) -> tuple[Rect, Rect]:
        dense_pool, sparse_pool = self._window_pools(current, problem)
        dense = dense_pool[int(rng.integers(0, len(dense_pool)))]
        sparse = sparse_pool[int(rng.integers(0, len(sparse_pool)))]
        return dense, sparse

    # ------------------------------------------------------------------
    # Algorithm 3, steps 4-7: pick routers and build the move
    # ------------------------------------------------------------------

    def propose(
        self,
        current: Evaluation,
        problem: ProblemInstance,
        rng: np.random.Generator,
    ) -> Move | None:
        placement = current.placement
        dense, sparse = self._windows(current, problem, rng)
        dense_routers = placement.routers_in(dense)
        sparse_routers = placement.routers_in(sparse)

        if not self.relocate:
            # Literal Algorithm 3: both windows must contain a router and
            # the two routers must differ.
            if not dense_routers or not sparse_routers:
                return None
            weak_dense = problem.fleet.weakest_among(dense_routers)
            strong_sparse = problem.fleet.strongest_among(sparse_routers)
            if weak_dense == strong_sparse:
                return None
            return SwapMove(router_a=weak_dense, router_b=strong_sparse)

        # Relocating reading (D6): the best router available outside the
        # dense window moves into a free cell of the dense window.
        mover = self._pick_mover(problem, placement, dense, sparse_routers)
        if mover is None:
            return None
        target = self._free_cell_in(problem.grid, placement, dense, rng)
        if target is None:
            return None
        return RelocateMove(router_id=mover, target=target)

    def _pick_mover(
        self,
        problem: ProblemInstance,
        placement,
        dense: Rect,
        sparse_routers: list[int],
    ) -> int | None:
        """The router that should migrate towards the dense window."""
        if sparse_routers:
            return problem.fleet.strongest_among(sparse_routers)
        # The sparse window holds no router (common: its density is 0
        # because it is empty of everything).  Fall back to the most
        # powerful router currently outside the dense window.
        outside = [
            router_id
            for router_id in range(len(placement))
            if not dense.contains(placement[router_id])
        ]
        if not outside:
            return None
        return problem.fleet.strongest_among(outside)

    @staticmethod
    def _free_cell_in(
        grid: GridArea, placement, window: Rect, rng: np.random.Generator
    ) -> Point | None:
        """A random free cell inside ``window`` (``None`` when full)."""
        try:
            return grid.random_free_cell(placement.occupied, rng, within=window)
        except ValueError:
            return None

    def __repr__(self) -> str:
        return (
            f"SwapMovement(window_fraction={self.window_fraction}, "
            f"density_source={self.density_source!r}, relocate={self.relocate}, "
            f"pool={self.pool})"
        )


class CombinedMovement(MovementType):
    """A stochastic mixture of movement types.

    Each proposal draws one of the constituent movements according to
    ``weights`` (uniform when omitted).  Mixing a density-guided movement
    with a random one adds exploration — the standard diversification
    trick in the "full featured" local search methods the paper points
    to as future work.
    """

    name: ClassVar[str] = "combined"

    def __init__(
        self,
        movements: Sequence[MovementType],
        weights: Sequence[float] | None = None,
    ) -> None:
        if not movements:
            raise ValueError("CombinedMovement needs at least one movement")
        self.movements = list(movements)
        if weights is None:
            weights = [1.0] * len(self.movements)
        if len(weights) != len(self.movements):
            raise ValueError(
                f"{len(weights)} weights for {len(self.movements)} movements"
            )
        if any(weight < 0 for weight in weights) or sum(weights) <= 0:
            raise ValueError("weights must be non-negative and not all zero")
        total = float(sum(weights))
        self._probabilities = np.array([weight / total for weight in weights])

    @property
    def probabilities(self) -> np.ndarray:
        """Normalized selection probabilities, aligned with ``movements``."""
        return self._probabilities

    def propose(
        self,
        current: Evaluation,
        problem: ProblemInstance,
        rng: np.random.Generator,
    ) -> Move | None:
        index = int(rng.choice(len(self.movements), p=self._probabilities))
        return self.movements[index].propose(current, problem, rng)

    def __repr__(self) -> str:
        inner = ", ".join(repr(movement) for movement in self.movements)
        return f"CombinedMovement([{inner}])"
