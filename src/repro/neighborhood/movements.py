"""Movement types — neighborhood structures (paper Section 4).

"Starting from an initial solution, the algorithm first selects a
movement type, that is the way the small local perturbation is
performed, which defines the neighborhood structure."

Two movement types come from the paper:

* :class:`SwapMovement` — Algorithm 3: the worst router of the most
  dense ``Hg x Wg`` area is exchanged with the best router of the most
  sparse area, "to promote the placement of best routers in most dense
  areas of the grid area".
* :class:`RandomMovement` — the "purely random search exploration"
  baseline of Section 5.2.2: a random router relocates to a random free
  cell.

:class:`CombinedMovement` mixes movement types stochastically — the
building block for the "full featured local search methods" the paper
announces as future work.
"""

from __future__ import annotations

import abc
from typing import ClassVar, Sequence

import numpy as np

from repro.core.density import DensityMap
from repro.core.evaluation import Evaluation
from repro.core.geometry import Point, Rect
from repro.core.grid import GridArea
from repro.core.problem import ProblemInstance
from repro.neighborhood.moves import Move, RelocateMove, SwapMove

__all__ = ["MovementType", "SwapMovement", "RandomMovement", "CombinedMovement"]


def _strongest_id(radii: np.ndarray, ids: np.ndarray) -> int:
    """Vectorized :meth:`RouterFleet.strongest_among`: max radius, min id."""
    selected = radii[ids]
    return int(ids[selected == selected.max()].min())


def _weakest_id(radii: np.ndarray, ids: np.ndarray) -> int:
    """Vectorized :meth:`RouterFleet.weakest_among`: min radius, min id."""
    selected = radii[ids]
    return int(ids[selected == selected.min()].min())


#: "Not computed yet" marker for lazily filled per-window memo slots.
_UNSET = object()

#: Entry bound for the per-placement proposal caches; a multi-chain
#: portfolio holds one live entry per chain, so overflow means old
#: placements — clearing keeps memory flat without an LRU.
_CACHE_LIMIT = 512


class _SwapWindowState:
    """Per-incumbent proposal cache of :class:`SwapMovement`.

    Holds the ranked window pools plus lazily filled memo slots for the
    per-window router picks (weakest in a dense window, strongest in a
    sparse window, strongest outside a dense window).  The picks are
    RNG-free functions of the incumbent, so memoizing them never touches
    a chain's stream.
    """

    __slots__ = (
        "placement",
        "pools",
        "x",
        "y",
        "weak_dense",
        "strong_sparse",
        "fallback_outside",
    )

    def __init__(self, placement, pools) -> None:
        self.placement = placement
        self.pools = pools
        positions = placement.positions_array()
        self.x = positions[:, 0]
        self.y = positions[:, 1]
        self.weak_dense: list = [_UNSET] * len(pools[0])
        self.strong_sparse: list = [_UNSET] * len(pools[1])
        self.fallback_outside: list = [_UNSET] * len(pools[0])

    def window_mask(self, window: Rect) -> np.ndarray:
        """Boolean membership of every router in ``window``.

        Same ids, in the same ascending order, as
        :meth:`~repro.core.solution.Placement.routers_in`.
        """
        return (
            (self.x >= window.x0)
            & (self.x < window.x1)
            & (self.y >= window.y0)
            & (self.y < window.y1)
        )


def _sample_free_cell(
    window: Rect, occupied: frozenset, rng: np.random.Generator
) -> Point | None:
    """Stream-identical inline of ``grid.random_free_cell(..., within=window)``.

    The proposal hot loop calls this thousands of times per phase;
    inlining drops the per-call ``Rect.intersection`` allocations (the
    ranked windows are already clipped to the grid) while drawing from
    ``rng`` in exactly the same order: up to 64 rejection samples of two
    ``integers`` draws each, then the exhaustive-enumeration fallback.
    Returns ``None`` instead of raising when the window is full.
    """
    x0, x1 = window.x0, window.x1
    y0, y1 = window.y0, window.y1
    draw = rng.integers
    for _ in range(64):
        cell = Point(int(draw(x0, x1)), int(draw(y0, y1)))
        if cell not in occupied:
            return cell
    free = [cell for cell in window.cells() if cell not in occupied]
    if not free:
        return None
    return free[int(rng.integers(0, len(free)))]


class MovementType(abc.ABC):
    """A neighborhood structure: proposes candidate moves."""

    #: Registry name of the movement (e.g. ``"swap"``).
    name: ClassVar[str] = "abstract"

    @abc.abstractmethod
    def propose(
        self,
        current: Evaluation,
        problem: ProblemInstance,
        rng: np.random.Generator,
    ) -> Move | None:
        """One candidate move from the neighborhood of ``current``.

        ``None`` signals that no move of this type is available (e.g. no
        router in the chosen window); Algorithm 2 simply samples again.
        """

    def propose_batch(
        self,
        currents: Sequence[Evaluation],
        problem: ProblemInstance,
        rngs: "Sequence[np.random.Generator]",
        n_candidates: int,
    ) -> "list[list[Move | None]]":
        """Candidate moves for ``R`` lockstep chains in one call.

        The multi-chain stream contract (this base implementation is its
        definition, and overrides must preserve it): chain ``r``'s
        proposals are exactly what ``n_candidates`` successive
        :meth:`propose` calls against ``currents[r]`` would draw from
        ``rngs[r]`` — each chain consumes *only its own* generator, in
        candidate order, so results are independent of how chains are
        grouped into batches, processes or phases.  Overrides vectorize
        the RNG-free work (window-router lookups, occupancy filters)
        while keeping every random draw on the chain's stream; the
        agreement with scalar ``propose`` is asserted by
        ``tests/neighborhood/test_multichain.py``.
        """
        if len(currents) != len(rngs):
            raise ValueError(
                f"{len(currents)} chain states for {len(rngs)} generators"
            )
        return [
            [
                self._propose_cached(current, problem, rng)
                for _ in range(n_candidates)
            ]
            for current, rng in zip(currents, rngs)
        ]

    def _propose_cached(
        self,
        current: Evaluation,
        problem: ProblemInstance,
        rng: np.random.Generator,
    ) -> Move | None:
        """One proposal that may reuse per-incumbent cached state.

        Result- and stream-identical to :meth:`propose` — the batch path
        and :class:`CombinedMovement` route through this so subclasses
        can hoist RNG-free work (window scans, occupancy sets) across
        the many proposals drawn against one incumbent.  The base
        implementation is :meth:`propose` itself.
        """
        return self.propose(current, problem, rng)

    def release_proposal_caches(self) -> None:
        """Drop any per-incumbent proposal caches (results unaffected).

        Portfolio drivers call this when a run finishes so a long-lived
        movement instance does not keep finished placements alive; the
        base implementation holds no caches.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RandomMovement(MovementType):
    """Relocate a uniformly random router to a uniformly random free cell."""

    name: ClassVar[str] = "random"

    def __init__(self) -> None:
        # One-slot (grid, bounds Rect) memo for the cached fast path;
        # keyed on the (tiny, immutable) grid so nothing heavyweight is
        # pinned or pickled along with the movement.
        self._bounds_cache = None

    def propose(
        self,
        current: Evaluation,
        problem: ProblemInstance,
        rng: np.random.Generator,
    ) -> Move | None:
        placement = current.placement
        router_id = int(rng.integers(0, len(placement)))
        try:
            target = problem.grid.random_free_cell(placement.occupied, rng)
        except ValueError:
            # Fully packed grid: no relocation exists.
            return None
        return RelocateMove(router_id=router_id, target=target)

    def _propose_cached(
        self,
        current: Evaluation,
        problem: ProblemInstance,
        rng: np.random.Generator,
    ) -> Move | None:
        # Same draws as propose(); the inline sampler skips the per-call
        # region clipping the hot loop would otherwise re-do.
        placement = current.placement
        router_id = int(rng.integers(0, len(placement)))
        grid = problem.grid
        bounds_cache = self._bounds_cache
        if bounds_cache is None or bounds_cache[0] is not grid:
            bounds_cache = (grid, grid.bounds)
            self._bounds_cache = bounds_cache
        target = _sample_free_cell(bounds_cache[1], placement.occupied, rng)
        if target is None:
            return None
        return RelocateMove(router_id=router_id, target=target)


class SwapMovement(MovementType):
    """The swap movement of Algorithm 3.

    Parameters
    ----------
    window_fraction, window_width, window_height:
        Size of the ``Hg x Wg`` sub-areas ranked by density (fraction of
        the grid, or explicit cells).
    density_source:
        What "dense" counts — ``"routers"`` (default), ``"clients"`` or
        ``"both"``.  Algorithm 3 speaks of the most dense/sparse areas of
        the mesh without the "in terms of client nodes" qualifier that
        HotSpot carries, and only the router reading sustains the giant
        component growth of Fig. 4: as routers accrete, the dense window
        tracks the growing cluster instead of saturating on a fixed
        client hotspot (see DESIGN.md, decision D6).
    relocate:
        DESIGN.md decision D6.  ``False`` = literal Algorithm 3: the two
        routers exchange positions.  ``True`` (default) = the best
        sparse-area router also *relocates into* the dense window, the
        reading consistent with the growth shown in Fig. 4.
    pool:
        Candidate windows are sampled from the ``pool`` most extreme
        windows rather than always the single most extreme, so repeated
        proposals differ (Algorithm 2 samples several movements per
        phase).
    """

    name: ClassVar[str] = "swap"

    def __init__(
        self,
        window_fraction: float = 0.125,
        window_width: int | None = None,
        window_height: int | None = None,
        density_source: str = "routers",
        relocate: bool = True,
        pool: int = 8,
    ) -> None:
        if not 0.0 < window_fraction <= 1.0:
            raise ValueError(
                f"window_fraction must be in (0, 1], got {window_fraction}"
            )
        if density_source not in ("clients", "routers", "both"):
            raise ValueError(
                "density_source must be 'clients', 'routers' or 'both', "
                f"got {density_source!r}"
            )
        if pool <= 0:
            raise ValueError(f"pool must be positive, got {pool}")
        if window_width is not None and window_width <= 0:
            raise ValueError(f"window_width must be positive, got {window_width}")
        if window_height is not None and window_height <= 0:
            raise ValueError(f"window_height must be positive, got {window_height}")
        self.window_fraction = window_fraction
        self.window_width = window_width
        self.window_height = window_height
        self.density_source = density_source
        self.relocate = relocate
        self.pool = pool
        # Best-neighbor selection proposes many moves from the same
        # current solution, and a lockstep portfolio holds one incumbent
        # per chain; the ranked windows and the per-window router picks
        # only depend on that solution, so an identity-keyed cache (one
        # entry per live placement, placements are immutable) removes
        # the repeated density and window-scan work.
        self._window_cache: dict[int, _SwapWindowState] = {}
        # One-slot pools cache for placement-independent density (see
        # _ranked_pools).
        self._static_pools = None

    def __getstate__(self):
        # Worker processes rebuild their own caches; shipping cached
        # arrays would only bloat the pickle.
        state = self.__dict__.copy()
        state["_window_cache"] = {}
        state["_static_pools"] = None
        return state

    # ------------------------------------------------------------------
    # Algorithm 3, steps 1-3: windows
    # ------------------------------------------------------------------

    def window_size(self, grid: GridArea) -> tuple[int, int]:
        """Effective ``(Wg, Hg)`` on the given grid."""
        width = (
            self.window_width
            if self.window_width is not None
            else max(1, int(round(grid.width * self.window_fraction)))
        )
        height = (
            self.window_height
            if self.window_height is not None
            else max(1, int(round(grid.height * self.window_fraction)))
        )
        return min(width, grid.width), min(height, grid.height)

    def _density_points(
        self, current: Evaluation, problem: ProblemInstance
    ) -> np.ndarray:
        client_points = problem.clients.positions
        router_points = current.placement.positions_array()
        if self.density_source == "clients":
            return client_points
        if self.density_source == "routers":
            return router_points
        return np.vstack([client_points, router_points])

    def _window_state(
        self, current: Evaluation, problem: ProblemInstance
    ) -> "_SwapWindowState":
        """The cached window pools + memo slots for ``current``."""
        placement = current.placement
        key = id(placement)
        state = self._window_cache.get(key)
        if state is not None and state.placement is placement:
            return state
        if len(self._window_cache) >= _CACHE_LIMIT:
            self._window_cache.clear()
        state = _SwapWindowState(placement, self._ranked_pools(current, problem))
        self._window_cache[key] = state
        return state

    def _ranked_pools(
        self, current: Evaluation, problem: ProblemInstance
    ) -> tuple[list[Rect], list[Rect]]:
        """Dense/sparse window pools, density-built for ``current``.

        Client-only density does not depend on router positions, so its
        pools are computed once per problem instance and shared by every
        incumbent (the per-placement window *state* still memoizes the
        router picks, which do depend on the placement).
        """
        static = self.density_source == "clients"
        if static and self._static_pools is not None:
            problem_key, pools = self._static_pools
            if problem_key is problem:
                return pools
        width, height = self.window_size(problem.grid)
        density = DensityMap.build(
            problem.grid, self._density_points(current, problem), width, height
        )
        pools = (
            density.ranked_windows(self.pool, densest=True),
            density.ranked_windows(self.pool, densest=False),
        )
        if static:
            self._static_pools = (problem, pools)
        return pools

    def _window_pools(
        self, current: Evaluation, problem: ProblemInstance
    ) -> tuple[list[Rect], list[Rect]]:
        """The top dense and sparse windows for the current solution."""
        return self._window_state(current, problem).pools

    def release_proposal_caches(self) -> None:
        # The static client-density pools stay (one tiny problem-keyed
        # slot); only the per-placement window states pin solutions.
        self._window_cache.clear()

    def _windows(
        self,
        current: Evaluation,
        problem: ProblemInstance,
        rng: np.random.Generator,
    ) -> tuple[Rect, Rect]:
        dense_pool, sparse_pool = self._window_pools(current, problem)
        dense = dense_pool[int(rng.integers(0, len(dense_pool)))]
        sparse = sparse_pool[int(rng.integers(0, len(sparse_pool)))]
        return dense, sparse

    # ------------------------------------------------------------------
    # Algorithm 3, steps 4-7: pick routers and build the move
    # ------------------------------------------------------------------

    def propose(
        self,
        current: Evaluation,
        problem: ProblemInstance,
        rng: np.random.Generator,
    ) -> Move | None:
        placement = current.placement
        dense, sparse = self._windows(current, problem, rng)
        dense_routers = placement.routers_in(dense)
        sparse_routers = placement.routers_in(sparse)

        if not self.relocate:
            # Literal Algorithm 3: both windows must contain a router and
            # the two routers must differ.
            if not dense_routers or not sparse_routers:
                return None
            weak_dense = problem.fleet.weakest_among(dense_routers)
            strong_sparse = problem.fleet.strongest_among(sparse_routers)
            if weak_dense == strong_sparse:
                return None
            return SwapMove(router_a=weak_dense, router_b=strong_sparse)

        # Relocating reading (D6): the best router available outside the
        # dense window moves into a free cell of the dense window.
        mover = self._pick_mover(problem, placement, dense, sparse_routers)
        if mover is None:
            return None
        target = self._free_cell_in(problem.grid, placement, dense, rng)
        if target is None:
            return None
        return RelocateMove(router_id=mover, target=target)

    def _propose_cached(
        self,
        current: Evaluation,
        problem: ProblemInstance,
        rng: np.random.Generator,
    ) -> Move | None:
        """Memoized fast path, stream-identical to :meth:`propose`.

        The scalar reference re-scans the sampled windows per proposal
        (:meth:`~repro.core.solution.Placement.routers_in` python
        loops); here the weakest/strongest/fallback router of each
        pooled window is resolved once per incumbent via vectorized
        masks and memoized in the window state, so repeated draws of the
        same window cost two generator calls and a list lookup.  Every
        random draw — the two window choices and the free-cell rejection
        sampling — stays on the chain's stream in the scalar call order.
        """
        state = self._window_state(current, problem)
        dense_pool, sparse_pool = state.pools
        radii = problem.fleet.radii
        dense_index = int(rng.integers(0, len(dense_pool)))
        sparse_index = int(rng.integers(0, len(sparse_pool)))
        dense = dense_pool[dense_index]

        if not self.relocate:
            weak = state.weak_dense[dense_index]
            if weak is _UNSET:
                ids = np.flatnonzero(state.window_mask(dense))
                weak = _weakest_id(radii, ids) if ids.size else None
                state.weak_dense[dense_index] = weak
            strong = state.strong_sparse[sparse_index]
            if strong is _UNSET:
                ids = np.flatnonzero(
                    state.window_mask(sparse_pool[sparse_index])
                )
                strong = _strongest_id(radii, ids) if ids.size else None
                state.strong_sparse[sparse_index] = strong
            if weak is None or strong is None or weak == strong:
                return None
            return SwapMove(router_a=weak, router_b=strong)

        mover = state.strong_sparse[sparse_index]
        if mover is _UNSET:
            ids = np.flatnonzero(state.window_mask(sparse_pool[sparse_index]))
            mover = _strongest_id(radii, ids) if ids.size else None
            state.strong_sparse[sparse_index] = mover
        if mover is None:
            mover = state.fallback_outside[dense_index]
            if mover is _UNSET:
                outside = np.flatnonzero(~state.window_mask(dense))
                mover = _strongest_id(radii, outside) if outside.size else None
                state.fallback_outside[dense_index] = mover
            if mover is None:
                return None
        target = _sample_free_cell(dense, current.placement.occupied, rng)
        if target is None:
            return None
        return RelocateMove(router_id=mover, target=target)

    def _pick_mover(
        self,
        problem: ProblemInstance,
        placement,
        dense: Rect,
        sparse_routers: list[int],
    ) -> int | None:
        """The router that should migrate towards the dense window."""
        if sparse_routers:
            return problem.fleet.strongest_among(sparse_routers)
        # The sparse window holds no router (common: its density is 0
        # because it is empty of everything).  Fall back to the most
        # powerful router currently outside the dense window.
        outside = [
            router_id
            for router_id in range(len(placement))
            if not dense.contains(placement[router_id])
        ]
        if not outside:
            return None
        return problem.fleet.strongest_among(outside)

    @staticmethod
    def _free_cell_in(
        grid: GridArea, placement, window: Rect, rng: np.random.Generator
    ) -> Point | None:
        """A random free cell inside ``window`` (``None`` when full)."""
        try:
            return grid.random_free_cell(placement.occupied, rng, within=window)
        except ValueError:
            return None

    def __repr__(self) -> str:
        return (
            f"SwapMovement(window_fraction={self.window_fraction}, "
            f"density_source={self.density_source!r}, relocate={self.relocate}, "
            f"pool={self.pool})"
        )


class CombinedMovement(MovementType):
    """A stochastic mixture of movement types.

    Each proposal draws one of the constituent movements according to
    ``weights`` (uniform when omitted).  Mixing a density-guided movement
    with a random one adds exploration — the standard diversification
    trick in the "full featured" local search methods the paper points
    to as future work.
    """

    name: ClassVar[str] = "combined"

    def __init__(
        self,
        movements: Sequence[MovementType],
        weights: Sequence[float] | None = None,
    ) -> None:
        if not movements:
            raise ValueError("CombinedMovement needs at least one movement")
        self.movements = list(movements)
        if weights is None:
            weights = [1.0] * len(self.movements)
        if len(weights) != len(self.movements):
            raise ValueError(
                f"{len(weights)} weights for {len(self.movements)} movements"
            )
        if any(weight < 0 for weight in weights) or sum(weights) <= 0:
            raise ValueError("weights must be non-negative and not all zero")
        total = float(sum(weights))
        self._probabilities = np.array([weight / total for weight in weights])
        # Cumulative weights for the cached fast path, normalized exactly
        # the way Generator.choice does (cumsum then divide by the last
        # entry) so the bisection below rounds identically.
        self._cdf = np.cumsum(self._probabilities)
        self._cdf /= self._cdf[-1]

    @property
    def probabilities(self) -> np.ndarray:
        """Normalized selection probabilities, aligned with ``movements``."""
        return self._probabilities

    def propose(
        self,
        current: Evaluation,
        problem: ProblemInstance,
        rng: np.random.Generator,
    ) -> Move | None:
        index = int(rng.choice(len(self.movements), p=self._probabilities))
        return self.movements[index].propose(current, problem, rng)

    def _propose_cached(
        self,
        current: Evaluation,
        problem: ProblemInstance,
        rng: np.random.Generator,
    ) -> Move | None:
        # Generator.choice(n, p=...) draws one uniform double and bisects
        # the normalized cumulative weights; doing the same against the
        # precomputed cdf consumes the identical stream value and returns
        # the identical index, without choice()'s per-call cumsum and
        # validation.  Exactness is pinned by the propose_batch parity
        # tests.
        index = int(self._cdf.searchsorted(rng.random(), side="right"))
        if index >= len(self.movements):  # guard exact-1.0 edge draw
            index = len(self.movements) - 1
        return self.movements[index]._propose_cached(current, problem, rng)

    def release_proposal_caches(self) -> None:
        for movement in self.movements:
            movement.release_proposal_caches()

    def __repr__(self) -> str:
        inner = ", ".join(repr(movement) for movement in self.movements)
        return f"CombinedMovement([{inner}])"
