"""Search traces.

Figure 4 of the paper plots "the evolution of the size of the giant
component" against "nb phases" of neighborhood search.  Every search in
this subpackage records a :class:`SearchTrace`: one :class:`PhaseRecord`
per phase with the metrics of the incumbent solution, ready to be
printed as the figure's series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.evaluation import Evaluation

__all__ = ["PhaseRecord", "SearchTrace"]


@dataclass(frozen=True, slots=True)
class PhaseRecord:
    """The incumbent's state at the end of one search phase."""

    phase: int
    giant_size: int
    covered_clients: int
    fitness: float
    improved: bool
    n_evaluations: int

    def as_dict(self) -> dict:
        """Plain-dict form for serialization and reporting."""
        return {
            "phase": self.phase,
            "giant_size": self.giant_size,
            "covered_clients": self.covered_clients,
            "fitness": self.fitness,
            "improved": self.improved,
            "n_evaluations": self.n_evaluations,
        }


@dataclass
class SearchTrace:
    """Phase-by-phase history of one neighborhood search run."""

    records: list[PhaseRecord] = field(default_factory=list)

    def append(self, record: PhaseRecord) -> None:
        """Add the next phase record (phases must arrive in order)."""
        if self.records and record.phase <= self.records[-1].phase:
            raise ValueError(
                f"phase {record.phase} out of order after "
                f"{self.records[-1].phase}"
            )
        self.records.append(record)

    def record_phase(
        self, phase: int, evaluation: Evaluation, improved: bool, n_evaluations: int
    ) -> None:
        """Convenience: append a record built from an evaluation."""
        self.append(
            PhaseRecord(
                phase=phase,
                giant_size=evaluation.giant_size,
                covered_clients=evaluation.covered_clients,
                fitness=evaluation.fitness,
                improved=improved,
                n_evaluations=n_evaluations,
            )
        )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[PhaseRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> PhaseRecord:
        return self.records[index]

    @property
    def phases(self) -> list[int]:
        """Phase numbers (the figure's x axis)."""
        return [record.phase for record in self.records]

    @property
    def giant_sizes(self) -> list[int]:
        """Giant component sizes (the figure's y axis)."""
        return [record.giant_size for record in self.records]

    @property
    def fitness_values(self) -> list[float]:
        """Fitness per phase."""
        return [record.fitness for record in self.records]

    def best_fitness(self) -> float:
        """Highest fitness seen (the final value under monotone accept)."""
        if not self.records:
            raise ValueError("empty trace")
        return max(record.fitness for record in self.records)

    def final(self) -> PhaseRecord:
        """The last phase record."""
        if not self.records:
            raise ValueError("empty trace")
        return self.records[-1]
