"""Simulated annealing over placement movements.

The paper closes with "we are currently implementing full featured local
search methods for the mesh router nodes placement" — the authors' own
follow-up line of work (WMN-SA) is simulated annealing over exactly this
movement model.  This module provides that extension: hill climbing with
a temperature-controlled probability of accepting worsening moves, which
escapes the local optima the plain neighborhood search plateaus on.

The trace format matches :class:`~repro.neighborhood.search.SearchResult`
so the ablation bench can overlay SA, tabu and the paper's search on the
same axes.

Every step is a single move off the incumbent, so the loop runs on the
incremental :class:`~repro.core.engine.delta.DeltaEvaluator`: only the
state the moved router touches is recomputed per candidate (matrix
rows/columns at paper scale, sparse edge/coverage-hit arrays on
city-scale instances — the engine dispatch picks automatically), with
results and evaluation counts bit-identical to the scalar path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.anytime.deadline import DEFAULT_CLOCK
from repro.core.engine.delta import DeltaEvaluator
from repro.core.evaluation import Evaluator
from repro.core.solution import Placement
from repro.neighborhood.movements import MovementType
from repro.neighborhood.search import SearchResult
from repro.neighborhood.trace import SearchTrace

if TYPE_CHECKING:
    from repro.anytime.deadline import Deadline

__all__ = ["AnnealingSchedule", "SimulatedAnnealing"]


@dataclass(frozen=True)
class AnnealingSchedule:
    """Geometric cooling schedule.

    Temperature starts at ``initial_temperature`` and is multiplied by
    ``cooling_rate`` after every phase, never dropping below
    ``floor_temperature`` (a strictly positive floor keeps the
    acceptance probability well-defined).
    """

    initial_temperature: float = 0.05
    cooling_rate: float = 0.95
    floor_temperature: float = 1e-6

    def __post_init__(self) -> None:
        if self.initial_temperature <= 0:
            raise ValueError(
                f"initial_temperature must be positive, got "
                f"{self.initial_temperature}"
            )
        if not 0.0 < self.cooling_rate <= 1.0:
            raise ValueError(
                f"cooling_rate must be in (0, 1], got {self.cooling_rate}"
            )
        if self.floor_temperature <= 0:
            raise ValueError(
                f"floor_temperature must be positive, got {self.floor_temperature}"
            )

    def temperature_at(self, phase: int) -> float:
        """Temperature for the given phase (phase 1 = initial)."""
        if phase < 1:
            raise ValueError(f"phase must be >= 1, got {phase}")
        value = self.initial_temperature * self.cooling_rate ** (phase - 1)
        return max(value, self.floor_temperature)


class SimulatedAnnealing:
    """Metropolis acceptance over a movement type.

    Per phase, ``moves_per_phase`` single moves are proposed; improving
    moves are always taken, worsening ones with probability
    ``exp(delta / T)`` where ``delta`` is the (negative) fitness change.
    """

    def __init__(
        self,
        movement: MovementType,
        schedule: AnnealingSchedule | None = None,
        max_phases: int = 64,
        moves_per_phase: int = 16,
    ) -> None:
        if max_phases <= 0:
            raise ValueError(f"max_phases must be positive, got {max_phases}")
        if moves_per_phase <= 0:
            raise ValueError(
                f"moves_per_phase must be positive, got {moves_per_phase}"
            )
        self.movement = movement
        self.schedule = schedule if schedule is not None else AnnealingSchedule()
        self.max_phases = max_phases
        self.moves_per_phase = moves_per_phase

    def run(
        self,
        evaluator: Evaluator,
        initial: Placement,
        rng: np.random.Generator,
        engine_cache=None,
        track_cache: bool = False,
        deadline: "Deadline | None" = None,
    ) -> SearchResult:
        """Anneal from ``initial``; returns the best solution and trace.

        ``deadline`` is polled once per phase boundary (cooperative
        cancellation, never mid-phase): when it fires the run stops and
        returns the tracked best with ``stopped_by`` set — always a
        valid evaluated incumbent, even for an already-expired deadline.

        ``engine_cache`` is an optional
        :class:`~repro.core.engine.handoff.IncumbentCache` from a prior
        run; still-valid pieces seed the delta engine's reset instead of
        a full rebuild (results are unchanged — only the reset cost).
        With ``track_cache`` the engine state is snapshotted every time
        the global best improves, so ``SearchResult.engine_cache``
        describes the *best* placement — exactly what a follow-up run
        warm-starts from.  Off by default: callers that never hand off
        (plain replication loops) pay no copies.
        """
        started = DEFAULT_CLOCK.now()
        evaluations_before = evaluator.n_evaluations
        # The delta engine follows the evaluator's resolved engine, so a
        # forced dense/sparse choice applies to the whole run.
        engine = DeltaEvaluator(evaluator, engine=evaluator.engine)
        current = engine.reset(initial, cache=engine_cache)
        best = current
        best_cache = engine.export_cache() if track_cache else None
        trace = SearchTrace()
        trace.record_phase(
            phase=0,
            evaluation=current,
            improved=False,
            n_evaluations=evaluator.n_evaluations - evaluations_before,
        )
        phases_done = 0
        stopped_by: str | None = None
        for phase in range(1, self.max_phases + 1):
            if deadline is not None:
                stopped_by = deadline.stop_reason()
                if stopped_by is not None:
                    break
            phases_done = phase
            temperature = self.schedule.temperature_at(phase)
            improved_this_phase = False
            for _ in range(self.moves_per_phase):
                move = self.movement.propose(current, evaluator.problem, rng)
                if move is None:
                    continue
                try:
                    candidate = engine.propose(move)
                except ValueError:  # repro-lint: disable=RL007
                    # Invalid move for the current placement; skip it.
                    continue
                delta = candidate.fitness - current.fitness
                if delta >= 0 or rng.uniform() < math.exp(delta / temperature):
                    engine.commit(candidate)
                    current = candidate
                    if current.fitness > best.fitness:
                        best = current
                        improved_this_phase = True
                        if track_cache:
                            # The incumbent IS the new best right now, so
                            # this snapshot is keyed to the placement the
                            # next run will warm-start from.
                            best_cache = engine.export_cache()
            trace.record_phase(
                phase=phase,
                evaluation=current,
                improved=improved_this_phase,
                n_evaluations=evaluator.n_evaluations - evaluations_before,
            )
        return SearchResult(
            best=best,
            trace=trace,
            n_phases=phases_done,
            n_evaluations=evaluator.n_evaluations - evaluations_before,
            engine_cache=best_cache,
            stopped_by=stopped_by,
            elapsed_seconds=DEFAULT_CLOCK.now() - started,
        )

    def __repr__(self) -> str:
        return (
            f"SimulatedAnnealing(movement={self.movement!r}, "
            f"schedule={self.schedule!r}, max_phases={self.max_phases}, "
            f"moves_per_phase={self.moves_per_phase})"
        )
