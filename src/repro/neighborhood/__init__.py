"""Neighborhood search methods (paper Section 4) and extensions.

The paper's Algorithm 1 (best-improvement neighborhood search),
Algorithm 2 (sampled best-neighbor selection) and Algorithm 3 (the swap
movement), the purely-random movement baseline, plus the "full featured
local search methods" announced as future work: simulated annealing,
tabu search, and the lockstep multi-chain / multi-start portfolio
engine (:mod:`repro.neighborhood.multichain`) that executes whole
replication portfolios through one stacked evaluation per phase.
"""

from repro.neighborhood.annealing import AnnealingSchedule, SimulatedAnnealing
from repro.neighborhood.best_neighbor import apply_valid_move, best_neighbor
from repro.neighborhood.moves import Move, RelocateMove, SwapMove
from repro.neighborhood.multichain import (
    MultiChainSearch,
    MultiStartResult,
    MultiStartSearch,
    chain_generators,
)
from repro.neighborhood.movements import (
    CombinedMovement,
    MovementType,
    RandomMovement,
    SwapMovement,
)
from repro.neighborhood.registry import (
    available_movements,
    make_movement,
    movement_factory,
    register_movement,
)
from repro.neighborhood.search import NeighborhoodSearch, SearchResult
from repro.neighborhood.tabu import TabuSearch
from repro.neighborhood.trace import PhaseRecord, SearchTrace

__all__ = [
    "AnnealingSchedule",
    "SimulatedAnnealing",
    "apply_valid_move",
    "best_neighbor",
    "chain_generators",
    "MultiChainSearch",
    "MultiStartResult",
    "MultiStartSearch",
    "Move",
    "RelocateMove",
    "SwapMove",
    "CombinedMovement",
    "MovementType",
    "RandomMovement",
    "SwapMovement",
    "available_movements",
    "make_movement",
    "movement_factory",
    "register_movement",
    "NeighborhoodSearch",
    "SearchResult",
    "TabuSearch",
    "PhaseRecord",
    "SearchTrace",
]
