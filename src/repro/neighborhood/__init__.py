"""Neighborhood search methods (paper Section 4) and extensions.

The paper's Algorithm 1 (best-improvement neighborhood search),
Algorithm 2 (sampled best-neighbor selection) and Algorithm 3 (the swap
movement), the purely-random movement baseline, plus the "full featured
local search methods" announced as future work: simulated annealing and
tabu search.
"""

from repro.neighborhood.annealing import AnnealingSchedule, SimulatedAnnealing
from repro.neighborhood.best_neighbor import best_neighbor
from repro.neighborhood.moves import Move, RelocateMove, SwapMove
from repro.neighborhood.movements import (
    CombinedMovement,
    MovementType,
    RandomMovement,
    SwapMovement,
)
from repro.neighborhood.registry import (
    available_movements,
    make_movement,
    register_movement,
)
from repro.neighborhood.search import NeighborhoodSearch, SearchResult
from repro.neighborhood.tabu import TabuSearch
from repro.neighborhood.trace import PhaseRecord, SearchTrace

__all__ = [
    "AnnealingSchedule",
    "SimulatedAnnealing",
    "best_neighbor",
    "Move",
    "RelocateMove",
    "SwapMove",
    "CombinedMovement",
    "MovementType",
    "RandomMovement",
    "SwapMovement",
    "available_movements",
    "make_movement",
    "register_movement",
    "NeighborhoodSearch",
    "SearchResult",
    "TabuSearch",
    "PhaseRecord",
    "SearchTrace",
]
