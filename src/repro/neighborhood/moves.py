"""Local moves on placements.

A *move* is a small, concrete perturbation of one placement — the "local
moves" of Section 4.  Moves are immutable descriptions; applying one
yields a new placement and never mutates the original, so the search can
evaluate many candidate moves against the same current solution.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.geometry import Point
from repro.core.solution import Placement

__all__ = ["Move", "SwapMove", "RelocateMove"]


class Move(abc.ABC):
    """A reproducible perturbation of a placement."""

    @abc.abstractmethod
    def apply(self, placement: Placement) -> Placement:
        """The placement after performing this move.

        Raises ``ValueError`` when the move is invalid for ``placement``
        (e.g. the target cell is now occupied); proposers treat that as
        "candidate unavailable" and skip it.
        """

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable one-liner for traces and logs."""


@dataclass(frozen=True, slots=True)
class SwapMove(Move):
    """Exchange the positions of two routers (Algorithm 3, literal).

    The occupied-cell set is invariant under this move; only the
    assignment of router hardware (radii) to positions changes.
    """

    router_a: int
    router_b: int

    def __post_init__(self) -> None:
        if self.router_a == self.router_b:
            raise ValueError("a swap needs two distinct routers")

    def apply(self, placement: Placement) -> Placement:
        return placement.with_swap(self.router_a, self.router_b)

    def describe(self) -> str:
        return f"swap(router {self.router_a} <-> router {self.router_b})"


@dataclass(frozen=True, slots=True)
class RelocateMove(Move):
    """Move one router to a new (free) cell.

    This is the relocating reading of the swap movement (DESIGN.md
    decision D6) and the primitive behind the purely random movement the
    paper compares against.
    """

    router_id: int
    target: Point

    def apply(self, placement: Placement) -> Placement:
        return placement.with_move(self.router_id, self.target)

    def describe(self) -> str:
        return f"relocate(router {self.router_id} -> {tuple(self.target)})"
