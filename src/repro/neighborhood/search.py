"""Neighborhood search (paper Algorithm 1).

"The main idea is exploring the neighborhood of an initial solution by
means of local moves and iterate until a stopping condition is met."

:class:`NeighborhoodSearch` is the paper's algorithm: per phase it asks
:func:`~repro.neighborhood.best_neighbor.best_neighbor` for the best
sampled neighbor and moves there when it improves (or ties, if sideways
steps are enabled).  Each phase's candidate set is evaluated as one
batch through the vectorized engine (see :mod:`repro.core.engine`) with
unchanged results and evaluation counts.  The run returns a
:class:`SearchResult` holding the best solution and the full phase trace
used by Figure 4.

Stopping conditions: a phase budget (``max_phases``, the figure's x
axis), an optional patience (``stall_phases`` without improvement) and
an optional fitness target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.anytime.deadline import DEFAULT_CLOCK
from repro.core.evaluation import Evaluation, Evaluator
from repro.core.solution import Placement
from repro.neighborhood.best_neighbor import best_neighbor
from repro.neighborhood.movements import MovementType
from repro.neighborhood.trace import SearchTrace

if TYPE_CHECKING:
    from repro.anytime.deadline import Deadline
    from repro.core.engine.handoff import IncumbentCache

__all__ = ["SearchResult", "NeighborhoodSearch"]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one local search run.

    ``engine_cache`` is the engine state of the *best* placement found
    by cache-tracking runs on the incremental delta engine (simulated
    annealing and tabu search with ``track_cache=True``), exported for
    warm-start handoff into a follow-up run (see
    :mod:`repro.core.engine.handoff`); ``None`` otherwise.

    ``stopped_by`` is ``None`` for a run that exhausted its budget (or
    met its stall/target condition) and ``"deadline"``/``"cancelled"``
    when a :class:`~repro.anytime.deadline.Deadline` stopped it early —
    the returned ``best`` is still a fully evaluated incumbent either
    way.  ``elapsed_seconds`` is wall-clock (excluded from equality:
    two bit-identical runs never have identical timings).
    """

    best: Evaluation
    trace: SearchTrace
    n_phases: int
    n_evaluations: int
    engine_cache: "IncumbentCache | None" = field(
        default=None, compare=False, repr=False
    )
    stopped_by: str | None = None
    elapsed_seconds: float = field(default=0.0, compare=False)

    @property
    def giant_size(self) -> int:
        """Giant component size of the best solution found."""
        return self.best.giant_size

    @property
    def covered_clients(self) -> int:
        """Covered clients of the best solution found."""
        return self.best.covered_clients


class NeighborhoodSearch:
    """Best-improvement local search over a movement type.

    Parameters
    ----------
    movement:
        The neighborhood structure (swap, random, combined...).
    n_candidates:
        Neighbors sampled per phase (Algorithm 2's "pre-fixed number of
        movements").
    max_phases:
        Hard phase budget.
    stall_phases:
        Stop after this many consecutive phases without improvement
        (``None`` disables early stopping, as in Fig. 4 where plateaus
        persist across phases).
    accept_equal:
        Whether to move sideways on fitness ties (helps escape plateaus
        without a worsening step).
    """

    def __init__(
        self,
        movement: MovementType,
        n_candidates: int = 16,
        max_phases: int = 64,
        stall_phases: int | None = None,
        accept_equal: bool = False,
    ) -> None:
        if n_candidates <= 0:
            raise ValueError(f"n_candidates must be positive, got {n_candidates}")
        if max_phases <= 0:
            raise ValueError(f"max_phases must be positive, got {max_phases}")
        if stall_phases is not None and stall_phases <= 0:
            raise ValueError(
                f"stall_phases must be positive or None, got {stall_phases}"
            )
        self.movement = movement
        self.n_candidates = n_candidates
        self.max_phases = max_phases
        self.stall_phases = stall_phases
        self.accept_equal = accept_equal

    def run(
        self,
        evaluator: Evaluator,
        initial: Placement,
        rng: np.random.Generator,
        fitness_target: float | None = None,
        deadline: "Deadline | None" = None,
    ) -> SearchResult:
        """Search from ``initial``; returns best solution and trace.

        ``deadline`` is polled once per phase boundary (cooperative
        cancellation): when it fires the loop stops *before* the next
        phase and returns the best incumbent so far with
        ``stopped_by`` set.  An already-expired deadline still
        evaluates the initial placement, so the result is always a
        valid evaluated solution.  With ``deadline=None`` the run is
        bit-identical to one without deadline support.
        """
        started = DEFAULT_CLOCK.now()
        evaluations_before = evaluator.n_evaluations
        # One capability probe per run instead of one per phase.
        evaluate_many = getattr(evaluator, "evaluate_many", None)
        current = evaluator.evaluate(initial)
        best = current
        trace = SearchTrace()
        trace.record_phase(
            phase=0,
            evaluation=current,
            improved=False,
            n_evaluations=evaluator.n_evaluations - evaluations_before,
        )
        stall = 0
        phase = 0
        stopped_by: str | None = None
        for next_phase in range(1, self.max_phases + 1):
            if deadline is not None:
                stopped_by = deadline.stop_reason()
                if stopped_by is not None:
                    break
            phase = next_phase
            candidate = best_neighbor(
                evaluator,
                current,
                self.movement,
                rng,
                n_candidates=self.n_candidates,
                evaluate_many=evaluate_many,
            )
            improved = False
            if candidate is not None:
                accept = candidate.fitness > current.fitness or (
                    self.accept_equal and candidate.fitness == current.fitness
                )
                if accept:
                    improved = candidate.fitness > current.fitness
                    current = candidate
                    if current.fitness > best.fitness:
                        best = current
            trace.record_phase(
                phase=phase,
                evaluation=current,
                improved=improved,
                n_evaluations=evaluator.n_evaluations - evaluations_before,
            )
            stall = 0 if improved else stall + 1
            if fitness_target is not None and best.fitness >= fitness_target:
                break
            if self.stall_phases is not None and stall >= self.stall_phases:
                break
        return SearchResult(
            best=best,
            trace=trace,
            n_phases=phase,
            n_evaluations=evaluator.n_evaluations - evaluations_before,
            stopped_by=stopped_by,
            elapsed_seconds=DEFAULT_CLOCK.now() - started,
        )

    def __repr__(self) -> str:
        return (
            f"NeighborhoodSearch(movement={self.movement!r}, "
            f"n_candidates={self.n_candidates}, max_phases={self.max_phases}, "
            f"stall_phases={self.stall_phases}, accept_equal={self.accept_equal})"
        )
