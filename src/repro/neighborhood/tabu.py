"""Tabu search over placement movements.

The second "full featured local search method" extension (the authors'
follow-up line also includes WMN-TS).  Classic short-term-memory tabu
search: the best sampled neighbor is taken even when worsening, recently
touched routers are tabu for ``tenure`` phases, and an aspiration
criterion overrides the tabu status of a move that beats the global
best.

Every candidate is one move off the incumbent, so the sampling loop runs
on the incremental :class:`~repro.core.engine.delta.DeltaEvaluator`: the
incumbent's state is cached (adjacency/coverage matrices at paper
scale, sparse edge/coverage-hit arrays on city-scale instances — the
engine dispatch picks automatically) and each candidate recomputes only
what its move touches.  The chosen neighbor is then committed as the
new incumbent.  Results and evaluation counts are bit-identical to the
scalar path.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.anytime.deadline import DEFAULT_CLOCK
from repro.core.engine.delta import DeltaEvaluator
from repro.core.evaluation import Evaluator
from repro.core.solution import Placement
from repro.neighborhood.moves import Move, RelocateMove, SwapMove
from repro.neighborhood.movements import MovementType
from repro.neighborhood.search import SearchResult
from repro.neighborhood.trace import SearchTrace

if TYPE_CHECKING:
    from repro.anytime.deadline import Deadline

__all__ = ["TabuSearch"]


def _touched_routers(move: Move) -> tuple[int, ...]:
    """The router ids a move modifies (used as the tabu attribute)."""
    if isinstance(move, SwapMove):
        return (move.router_a, move.router_b)
    if isinstance(move, RelocateMove):
        return (move.router_id,)
    return ()


class TabuSearch:
    """Best-of-sample tabu search with router-attribute memory."""

    def __init__(
        self,
        movement: MovementType,
        tenure: int = 8,
        n_candidates: int = 16,
        max_phases: int = 64,
    ) -> None:
        if tenure < 0:
            raise ValueError(f"tenure must be non-negative, got {tenure}")
        if n_candidates <= 0:
            raise ValueError(f"n_candidates must be positive, got {n_candidates}")
        if max_phases <= 0:
            raise ValueError(f"max_phases must be positive, got {max_phases}")
        self.movement = movement
        self.tenure = tenure
        self.n_candidates = n_candidates
        self.max_phases = max_phases

    def run(
        self,
        evaluator: Evaluator,
        initial: Placement,
        rng: np.random.Generator,
        engine_cache=None,
        track_cache: bool = False,
        deadline: "Deadline | None" = None,
    ) -> SearchResult:
        """Search from ``initial``; returns the best solution and trace.

        ``deadline`` is polled once per phase boundary (cooperative
        cancellation, never mid-phase): when it fires the run stops and
        returns the tracked best with ``stopped_by`` set — always a
        valid evaluated incumbent, even for an already-expired deadline.

        ``engine_cache`` follows the warm-start handoff protocol of
        :meth:`SimulatedAnnealing.run`: valid pieces of a prior run's
        :class:`~repro.core.engine.handoff.IncumbentCache` seed the
        delta engine's reset.  ``track_cache`` snapshots the engine
        whenever the global best improves (tabu keeps walking after its
        best, so the final incumbent is the wrong placement to export);
        off by default so non-handoff callers pay no copies.
        """
        started = DEFAULT_CLOCK.now()
        evaluations_before = evaluator.n_evaluations
        # The delta engine follows the evaluator's resolved engine, so a
        # forced dense/sparse choice applies to the whole run.
        engine = DeltaEvaluator(evaluator, engine=evaluator.engine)
        current = engine.reset(initial, cache=engine_cache)
        best = current
        best_cache = engine.export_cache() if track_cache else None
        trace = SearchTrace()
        trace.record_phase(
            phase=0,
            evaluation=current,
            improved=False,
            n_evaluations=evaluator.n_evaluations - evaluations_before,
        )
        # Router id -> phase until which it is tabu; a deque of
        # (router, expiry) keeps eviction O(1).
        tabu_until: dict[int, int] = {}
        expiry_queue: deque[tuple[int, int]] = deque()

        phases_done = 0
        stopped_by: str | None = None
        for phase in range(1, self.max_phases + 1):
            if deadline is not None:
                stopped_by = deadline.stop_reason()
                if stopped_by is not None:
                    break
            phases_done = phase
            while expiry_queue and expiry_queue[0][1] <= phase:
                router, expiry = expiry_queue.popleft()
                if tabu_until.get(router) == expiry:
                    del tabu_until[router]

            chosen = None
            chosen_move: Move | None = None
            for _ in range(self.n_candidates):
                move = self.movement.propose(current, evaluator.problem, rng)
                if move is None:
                    continue
                try:
                    candidate = engine.propose(move)
                except ValueError:  # repro-lint: disable=RL007
                    # Invalid move for the current placement; skip it.
                    continue
                is_tabu = any(
                    tabu_until.get(router, 0) > phase
                    for router in _touched_routers(move)
                )
                # Aspiration: a tabu move that improves the global best
                # is always admissible.
                if is_tabu and candidate.fitness <= best.fitness:
                    continue
                if chosen is None or candidate.fitness > chosen.fitness:
                    chosen = candidate
                    chosen_move = move
            improved = False
            if chosen is not None:
                # Tabu search always moves to the best admissible
                # neighbor, even when it worsens the incumbent.
                engine.commit(chosen)
                current = chosen
                if current.fitness > best.fitness:
                    best = current
                    improved = True
                    if track_cache:
                        # Snapshot now, while the incumbent IS the best —
                        # the placement the next run warm-starts from.
                        best_cache = engine.export_cache()
                if chosen_move is not None and self.tenure > 0:
                    for router in _touched_routers(chosen_move):
                        expiry = phase + self.tenure
                        tabu_until[router] = expiry
                        expiry_queue.append((router, expiry))
            trace.record_phase(
                phase=phase,
                evaluation=current,
                improved=improved,
                n_evaluations=evaluator.n_evaluations - evaluations_before,
            )
        return SearchResult(
            best=best,
            trace=trace,
            n_phases=phases_done,
            n_evaluations=evaluator.n_evaluations - evaluations_before,
            engine_cache=best_cache,
            stopped_by=stopped_by,
            elapsed_seconds=DEFAULT_CLOCK.now() - started,
        )

    def __repr__(self) -> str:
        return (
            f"TabuSearch(movement={self.movement!r}, tenure={self.tenure}, "
            f"n_candidates={self.n_candidates}, max_phases={self.max_phases})"
        )
