"""Lockstep execution of whole neighborhood-search portfolios.

The paper's headline experiments are *portfolios* of independent search
runs — many seeds x many movements (Tables 1-3, Fig. 4) — and the
replication harness reruns them across even more seeds.  Executing each
chain as its own python loop leaves most of the vectorized engine's
throughput on the table: every phase of every chain pays its own small
batch evaluation and its own per-candidate object churn.

:class:`MultiChainSearch` advances ``R`` independent
:class:`~repro.neighborhood.search.NeighborhoodSearch` chains in
lockstep instead:

* each phase samples all chains' candidates through one
  :meth:`~repro.neighborhood.movements.MovementType.propose_batch` call
  (per-chain generator streams, vectorized window scans);
* all ``R x C`` surviving candidates are stacked into one
  ``(K, N, 2)`` position tensor and measured by a single
  :class:`~repro.core.engine.stacked.StackedEngine` pass (dense), or one
  shared sparse engine (city scale) — only each chain's *winning*
  candidate is ever materialized as an
  :class:`~repro.core.evaluation.Evaluation`;
* converged/stalled chains drop out of the lockstep via boolean masking
  and the survivors keep batching.

Per-chain results — trace, best solution, phase and evaluation counts —
are **bit-identical** to running each chain through a serial
``NeighborhoodSearch`` (asserted by
``tests/neighborhood/test_multichain.py``), because every random draw
stays on its chain's own generator and every engine path shares the
evaluation contract.

RNG contract
------------

A portfolio is reproducible because chain streams are independent and
parent-derived:

* :func:`chain_generators` spawns ``R`` child ``SeedSequence`` s from one
  parent (``SeedSequence(seed).spawn(R)``) and wraps each in its own
  ``Generator`` — the documented way to seed an ad hoc portfolio;
* callers with an existing per-chain key scheme (the replication
  harness's ``(instance_seed, label_key, seed)`` tuples) pass one
  pre-seeded ``Generator`` per chain instead;
* chain ``r`` consumes **only** ``rngs[r]``, in the same order as the
  serial loop (initial placement first if the caller drew it there, then
  ``C`` proposals per phase).  Results are therefore invariant to chain
  grouping: batching, ``workers=`` sharding and phase masking never
  change a chain's stream.

``run(..., workers=W)`` composes both parallelism axes: chains batch
*within* a process, contiguous chain shards fan out *across* processes,
and because of the stream contract the results are identical to
``workers=1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.anytime.deadline import DEFAULT_CLOCK
from repro.core.engine.batch import DEFAULT_MAX_CHUNK
from repro.core.engine.stacked import StackedDeltaEngine, StackedEngine
from repro.core.evaluation import Evaluation
from repro.core.fitness import FitnessFunction
from repro.core.problem import ProblemInstance
from repro.core.solution import Placement
from repro.neighborhood.best_neighbor import apply_valid_move
from repro.neighborhood.moves import RelocateMove, SwapMove
from repro.neighborhood.movements import MovementType
from repro.neighborhood.search import SearchResult
from repro.neighborhood.trace import SearchTrace
from repro.parallel import (
    get_runtime,
    resolve_task_problem,
    run_tasks,
    runtime_enabled,
    shard_slices,
)
from repro.seeding import root_sequence, spawn_children

if TYPE_CHECKING:
    from repro.anytime.deadline import Deadline
    from repro.resilience.supervisor import RetryPolicy, SupervisionReport

__all__ = [
    "chain_generators",
    "MultiChainSearch",
    "MultiStartResult",
    "MultiStartSearch",
]

#: Portfolio-wide cap on the compiled delta engine's per-chain dense
#: incumbent caches (``N * (N + M)`` byte-sized cells per chain) on
#: sparse-layout instances.  ~256 MB — roomy for city portfolios
#: (16 chains at 1024 routers / 4000 clients is ~80 MB) while keeping
#: city-large (4096 routers / 50k clients, ~220 MB *per chain*) on the
#: constant-memory stacked path.
DELTA_CACHE_BUDGET = 1 << 28


def chain_generators(
    seed: "int | Sequence[int] | np.random.SeedSequence", n_chains: int
) -> list[np.random.Generator]:
    """``n_chains`` independent per-chain generators from one parent seed.

    The documented spawning contract: the parent
    ``numpy.random.SeedSequence`` (built from ``seed`` unless one is
    passed directly) is ``spawn``-ed once per chain, and chain ``r``
    owns ``default_rng(child_r)``.  Spawning guarantees the child
    streams are statistically independent and that the whole portfolio
    is reproducible from the single parent seed, no matter how chains
    are later grouped into batches or worker processes.
    """
    if n_chains <= 0:
        raise ValueError(f"n_chains must be positive, got {n_chains}")
    sequence = root_sequence(seed)
    return [
        np.random.default_rng(child)
        for child in spawn_children(sequence, n_chains)
    ]


@dataclass
class _ChainState:
    """Mutable lockstep bookkeeping of one chain (internal)."""

    rng: np.random.Generator
    current: Evaluation
    best: Evaluation
    trace: SearchTrace
    n_evaluations: int = 1
    stall: int = 0
    last_phase: int = 0
    active: bool = True
    stopped_by: str | None = None


#: Tags of :func:`_classify_move`.
_SKIP, _NOOP, _RELOCATE, _SWAP, _EXOTIC = range(5)


def _classify_move(move, incumbent: Placement, occupied, n_routers: int, grid):
    """The serial validity rules, shared by both lockstep collectors.

    One implementation of the decision
    :func:`~repro.neighborhood.best_neighbor.apply_valid_move` makes for
    the serial loop — stale relocations are dropped, an own-cell
    relocation is a no-op candidate, out-of-range ids and out-of-grid
    targets are skipped — tagged so the delta and full-measure paths can
    build their own candidate representations without re-deriving the
    rules.  Returns ``(tag, target)``; ``target`` is only set for
    ``_RELOCATE``.
    """
    kind = type(move)
    if kind is RelocateMove:
        if not 0 <= move.router_id < n_routers:
            return _SKIP, None
        target = move.target
        if target in occupied:
            if incumbent.cells[move.router_id] != target:
                return _SKIP, None  # stale: another router holds the cell
            return _NOOP, None
        if not grid.contains(target):
            return _SKIP, None
        return _RELOCATE, target
    if kind is SwapMove:
        if not (
            0 <= move.router_a < n_routers and 0 <= move.router_b < n_routers
        ):
            return _SKIP, None
        if move.router_a == move.router_b:
            # Unreachable through SwapMove's constructor (it rejects
            # a == b), but duplicate movers would corrupt the delta
            # engine's edge accounting — mirror with_swap's no-op.
            return _NOOP, None
        return _SWAP, None
    return _EXOTIC, None


#: Backward-compatible alias (the split now lives in :mod:`repro.parallel`,
#: shared with the replication and scenario-fleet harnesses).
_shard_slices = shard_slices


def _run_shard(task) -> list[SearchResult]:
    """One contiguous chain shard in a worker process (top-level: pickling).

    The problem payload is either the instance itself (pickle path) or a
    broadcast handle resolved against this process's attached shared
    memory (see :mod:`repro.parallel.runtime`).
    """
    (parameters, problem, movement, initials, rngs, fitness, target) = task
    problem = resolve_task_problem(problem)
    search = MultiChainSearch(movement, **parameters)
    return search.run(problem, initials, rngs, fitness=fitness, fitness_target=target)


class MultiChainSearch:
    """``R`` independent best-improvement chains advanced in lockstep.

    Parameters mirror :class:`~repro.neighborhood.search.NeighborhoodSearch`
    (movement, candidates per phase, phase budget, patience, sideways
    acceptance) plus the engine knobs of the stacked evaluation path.

    ``movement`` is a :class:`MovementType` shared by all chains or a
    zero-argument factory (one instance per run / worker shard).  Either
    way results are identical — movements are stateless with respect to
    outcomes — but a factory keeps instances process-local under
    ``workers=``.
    """

    def __init__(
        self,
        movement: "MovementType | Callable[[], MovementType]",
        n_candidates: int = 16,
        max_phases: int = 64,
        stall_phases: int | None = None,
        accept_equal: bool = False,
        engine: str = "auto",
        max_chunk: int = DEFAULT_MAX_CHUNK,
    ) -> None:
        if n_candidates <= 0:
            raise ValueError(f"n_candidates must be positive, got {n_candidates}")
        if max_phases <= 0:
            raise ValueError(f"max_phases must be positive, got {max_phases}")
        if stall_phases is not None and stall_phases <= 0:
            raise ValueError(
                f"stall_phases must be positive or None, got {stall_phases}"
            )
        if max_chunk <= 0:
            raise ValueError(f"max_chunk must be positive, got {max_chunk}")
        self.movement = movement
        self.n_candidates = n_candidates
        self.max_phases = max_phases
        self.stall_phases = stall_phases
        self.accept_equal = accept_equal
        self.engine = engine
        self.max_chunk = max_chunk

    # ------------------------------------------------------------------
    # Public entry
    # ------------------------------------------------------------------

    def run(
        self,
        problem: ProblemInstance,
        initials: Sequence[Placement],
        rngs: Sequence[np.random.Generator],
        fitness: FitnessFunction | None = None,
        fitness_target: float | None = None,
        workers: int | None = None,
        deadline: "Deadline | None" = None,
        policy: "RetryPolicy | None" = None,
        report: "SupervisionReport | None" = None,
    ) -> list[SearchResult]:
        """Search all chains; one :class:`SearchResult` per chain, in order.

        ``initials[r]`` and ``rngs[r]`` define chain ``r`` (see the
        module docstring for the stream contract).  With ``workers > 1``
        contiguous chain shards run in a process pool — bit-identical
        results, less wall-clock; the problem, movement, placements and
        generators must then be picklable (all built-ins are).  Shard
        execution is supervised exactly like the fleet path: ``policy``
        governs retry/backoff/degradation, ``report`` collects recovery
        activity, and every shard task carries a label naming its chain
        range so a :class:`~repro.resilience.supervisor.RetryExhaustedError`
        says which chains were lost.

        ``deadline`` is polled once per lockstep phase (cooperative
        cancellation): when it fires, every still-active chain is
        masked out with ``stopped_by`` set and its best-so-far kept —
        chains that already converged keep their own results and traces
        untouched (mask-out-and-finish).  A deadline forces the serial
        lockstep path (``workers`` is ignored — results are identical
        by the stream contract; cancel tokens cannot cross processes).
        """
        if not initials:
            raise ValueError("a portfolio needs at least one chain")
        if len(initials) != len(rngs):
            raise ValueError(
                f"{len(initials)} initial placements for {len(rngs)} generators"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be a positive int or None, got {workers}")
        if (
            workers is not None
            and workers > 1
            and len(initials) > 1
            and deadline is None
        ):
            return self._run_parallel(
                problem,
                initials,
                rngs,
                fitness,
                fitness_target,
                workers,
                policy=policy,
                report=report,
            )
        started = DEFAULT_CLOCK.now()
        movement = self._resolve_movement()
        engine = StackedEngine(
            problem, fitness, engine=self.engine, max_chunk=self.max_chunk
        )
        # On the dense layout every phase measures incrementally against
        # per-chain incumbent caches (the compiled tier carries through
        # to the delta kernels).  The compiled tier also takes the delta
        # path on sparse-layout instances — its commit updates are
        # O(nnz), so the only cost of the dense per-chain caches is
        # memory, gated below.  Numpy sparse instances keep the shared
        # spatial-grid engine (per-candidate cost is already O(N k)).
        per_chain_cells = problem.n_routers * (
            problem.n_routers + problem.n_clients
        )
        delta = (
            StackedDeltaEngine(
                problem, engine.fitness_function, engine=engine.engine
            )
            if engine.layout == "dense"
            or (
                engine.engine == "compiled"
                and len(initials) * per_chain_cells <= DELTA_CACHE_BUDGET
            )
            else None
        )
        states = self._initial_states(engine, initials, rngs)
        if delta is not None:
            for index, initial in enumerate(initials):
                delta.reset_chain(index, initial)
        try:
            for phase in range(1, self.max_phases + 1):
                active = [r for r, state in enumerate(states) if state.active]
                if not active:
                    break
                if deadline is not None:
                    reason = deadline.stop_reason()
                    if reason is not None:
                        # Mask-out-and-finish: surviving chains stop at
                        # their tracked best; converged chains keep
                        # their own (deadline-free) results and traces.
                        for r in active:
                            states[r].active = False
                            states[r].stopped_by = reason
                        break
                self._advance_phase(
                    phase, states, active, movement, engine, delta,
                    fitness_target,
                )
        finally:
            # Shared movement instances must not pin this run's
            # incumbents after the portfolio finishes.
            movement.release_proposal_caches()
        elapsed = DEFAULT_CLOCK.now() - started
        return [
            SearchResult(
                best=state.best,
                trace=state.trace,
                n_phases=state.last_phase,
                n_evaluations=state.n_evaluations,
                stopped_by=state.stopped_by,
                elapsed_seconds=elapsed,
            )
            for state in states
        ]

    # ------------------------------------------------------------------
    # Lockstep internals
    # ------------------------------------------------------------------

    def _resolve_movement(self) -> MovementType:
        if isinstance(self.movement, MovementType):
            return self.movement
        movement = self.movement()
        if not isinstance(movement, MovementType):
            raise TypeError(
                f"movement factory returned {type(movement).__name__}, "
                "expected a MovementType"
            )
        return movement

    def _initial_states(
        self,
        engine: StackedEngine,
        initials: Sequence[Placement],
        rngs: Sequence[np.random.Generator],
    ) -> list[_ChainState]:
        """Evaluate every chain's start in one stacked pass (phase 0)."""
        measurement = engine.measure_placements(list(initials))
        states: list[_ChainState] = []
        for index, (initial, rng) in enumerate(zip(initials, rngs)):
            evaluation = measurement.evaluation(index, initial)
            trace = SearchTrace()
            trace.record_phase(
                phase=0, evaluation=evaluation, improved=False, n_evaluations=1
            )
            states.append(
                _ChainState(
                    rng=rng, current=evaluation, best=evaluation, trace=trace
                )
            )
        return states

    def _advance_phase(
        self,
        phase: int,
        states: list[_ChainState],
        active: list[int],
        movement: MovementType,
        engine: StackedEngine,
        delta: StackedDeltaEngine | None,
        fitness_target: float | None,
    ) -> None:
        proposals = movement.propose_batch(
            [states[r].current for r in active],
            engine.problem,
            [states[r].rng for r in active],
            self.n_candidates,
        )
        collected = (
            self._collect_delta(states, active, proposals, engine.problem)
            if delta is not None
            else None
        )
        if collected is not None:
            items, sources, spans = collected
            measurement = delta.measure_phase(items)
        else:
            sources, spans, measurement = self._measure_full(
                states, active, proposals, engine
            )

        for (start, end), chain_index in zip(spans, active):
            state = states[chain_index]
            improved = False
            if end > start:
                state.n_evaluations += end - start
                local = measurement.fitness[start:end]
                # argmax keeps the first maximum — the serial loop's
                # first-seen tie rule.
                winner = start + int(np.argmax(local))
                winner_fitness = float(measurement.fitness[winner])
                accept = winner_fitness > state.current.fitness or (
                    self.accept_equal
                    and winner_fitness == state.current.fitness
                )
                if accept:
                    improved = winner_fitness > state.current.fitness
                    state.current = self._materialize(
                        measurement, winner, sources[winner], state
                    )
                    if delta is not None:
                        delta.commit_chain(chain_index, state.current.placement)
                    if state.current.fitness > state.best.fitness:
                        state.best = state.current
            state.trace.record_phase(
                phase=phase,
                evaluation=state.current,
                improved=improved,
                n_evaluations=state.n_evaluations,
            )
            state.last_phase = phase
            state.stall = 0 if improved else state.stall + 1
            if (
                fitness_target is not None
                and state.best.fitness >= fitness_target
            ):
                state.active = False
            elif (
                self.stall_phases is not None
                and state.stall >= self.stall_phases
            ):
                state.active = False

    def _collect_delta(
        self,
        states: list[_ChainState],
        active: list[int],
        proposals,
        problem: ProblemInstance,
    ):
        """Neutral ``(chain, movers, new_positions)`` items for the phase.

        Applies exactly the serial loop's validity rules (see
        :func:`~repro.neighborhood.best_neighbor.apply_valid_move`):
        stale relocations are dropped, an own-cell relocation becomes a
        no-op candidate.  Returns ``None`` when a move outside the delta
        vocabulary (relocate/swap) appears — the phase then measures
        through the full stacked path instead.
        """
        n_routers = problem.n_routers
        grid = problem.grid
        items: list[tuple] = []
        sources: list[object] = []
        spans: list[tuple[int, int]] = []
        for chain_index, moves in zip(active, proposals):
            state = states[chain_index]
            start = len(sources)
            incumbent = state.current.placement
            occupied = incumbent.occupied
            cells = incumbent.cells
            for move in moves:
                if move is None:
                    continue
                tag, target = _classify_move(
                    move, incumbent, occupied, n_routers, grid
                )
                if tag == _SKIP:
                    continue
                if tag == _NOOP:
                    item = (chain_index, (), ())
                elif tag == _RELOCATE:
                    item = (
                        chain_index,
                        (move.router_id,),
                        ((float(target.x), float(target.y)),),
                    )
                elif tag == _SWAP:
                    a, b = move.router_a, move.router_b
                    pos_a, pos_b = cells[a], cells[b]
                    item = (
                        chain_index,
                        (a, b),
                        (
                            (float(pos_b.x), float(pos_b.y)),
                            (float(pos_a.x), float(pos_a.y)),
                        ),
                    )
                else:
                    return None
                items.append(item)
                sources.append(move)
            spans.append((start, len(sources)))
        return items, sources, spans

    def _measure_full(
        self,
        states: list[_ChainState],
        active: list[int],
        proposals,
        engine: StackedEngine,
    ):
        """Full stacked measurement of the phase (no incremental caches).

        The sparse path always measures here (one spatial-grid pass per
        candidate); the dense path only when a phase contains exotic
        move types.  ``sources[k]`` materializes candidate ``k`` later —
        a move re-applied to its chain's incumbent, or an already-built
        placement.
        """
        dense = engine.accepts_positions
        sources: list[object] = []
        rows: list[np.ndarray] = []
        placements: list[Placement] = []
        spans: list[tuple[int, int]] = []
        n_routers = engine.problem.n_routers
        grid = engine.problem.grid
        for chain_index, moves in zip(active, proposals):
            state = states[chain_index]
            start = len(sources)
            incumbent = state.current.placement
            occupied = incumbent.occupied
            positions = incumbent.positions_array()
            for move in moves:
                if move is None:
                    continue
                tag, target = (
                    _classify_move(move, incumbent, occupied, n_routers, grid)
                    if dense
                    else (_EXOTIC, None)
                )
                if tag == _SKIP:
                    continue
                if tag == _NOOP:
                    sources.append(move)
                    rows.append(positions)
                elif tag == _RELOCATE:
                    row = positions.copy()
                    row[move.router_id] = (target.x, target.y)
                    sources.append(move)
                    rows.append(row)
                elif tag == _SWAP:
                    row = positions.copy()
                    row[[move.router_a, move.router_b]] = row[
                        [move.router_b, move.router_a]
                    ]
                    sources.append(move)
                    rows.append(row)
                else:
                    # Sparse path, or an exotic move type: build the
                    # placement (validity rules identical to the serial
                    # loop's apply_valid_move).
                    candidate = apply_valid_move(move, incumbent)
                    if candidate is None:
                        continue
                    sources.append(candidate)
                    if dense:
                        rows.append(
                            np.asarray(candidate.positions_array(), dtype=float)
                        )
                    else:
                        placements.append(candidate)
            spans.append((start, len(sources)))

        if dense:
            stack = (
                np.stack(rows)
                if rows
                else np.zeros((0, n_routers, 2), dtype=float)
            )
            measurement = engine.measure_positions(stack)
        else:
            measurement = engine.measure_placements(placements)
        return sources, spans, measurement

    @staticmethod
    def _materialize(
        measurement, index: int, source, state: _ChainState
    ) -> Evaluation:
        """Turn the winning stack row into a full :class:`Evaluation`."""
        if isinstance(source, Placement):
            return measurement.evaluation(index, source)
        placement = apply_valid_move(source, state.current.placement)
        if placement is None:  # pragma: no cover - validity pre-checked
            raise RuntimeError("accepted candidate became invalid")
        return measurement.evaluation(index, placement)

    # ------------------------------------------------------------------
    # Process fan-out
    # ------------------------------------------------------------------

    def _run_parallel(
        self,
        problem: ProblemInstance,
        initials: Sequence[Placement],
        rngs: Sequence[np.random.Generator],
        fitness: FitnessFunction | None,
        fitness_target: float | None,
        workers: int,
        policy: "RetryPolicy | None" = None,
        report: "SupervisionReport | None" = None,
    ) -> list[SearchResult]:
        parameters = dict(
            n_candidates=self.n_candidates,
            max_phases=self.max_phases,
            stall_phases=self.stall_phases,
            accept_equal=self.accept_equal,
            engine=self.engine,
            max_chunk=self.max_chunk,
        )
        # Publish the instance once; every shard task carries the small
        # broadcast handle (or the instance itself when it is below the
        # broadcast threshold / the runtime is disabled).
        payload = (
            get_runtime().broadcast(problem) if runtime_enabled() else problem
        )
        parts = _shard_slices(len(initials), workers)
        tasks = [
            (
                parameters,
                payload,
                self.movement,
                list(initials[part]),
                list(rngs[part]),
                fitness,
                fitness_target,
            )
            for part in parts
        ]
        labels = [
            f"chain {part.start}"
            if part.stop - part.start == 1
            else f"chains {part.start}..{part.stop - 1}"
            for part in parts
        ]
        # The shared supervised pool pins worker threads (OMP) and
        # retries crashed shards; a raw ProcessPoolExecutor here used to
        # skip both.
        return run_tasks(
            _run_shard,
            tasks,
            workers,
            policy=policy,
            labels=labels,
            report=report,
        )

    def __repr__(self) -> str:
        return (
            f"MultiChainSearch(movement={self.movement!r}, "
            f"n_candidates={self.n_candidates}, max_phases={self.max_phases}, "
            f"stall_phases={self.stall_phases}, accept_equal={self.accept_equal}, "
            f"engine={self.engine!r})"
        )


@dataclass(frozen=True)
class MultiStartResult:
    """Outcome of a best-of-``R`` multi-start run."""

    results: tuple[SearchResult, ...]
    best_index: int

    @property
    def n_restarts(self) -> int:
        """Number of restart chains."""
        return len(self.results)

    @property
    def best(self) -> SearchResult:
        """The winning chain's full search result."""
        return self.results[self.best_index]

    @property
    def best_evaluation(self) -> Evaluation:
        """The winning chain's best evaluation."""
        return self.best.best

    @property
    def n_evaluations(self) -> int:
        """Total evaluations across every restart chain."""
        return sum(result.n_evaluations for result in self.results)


class MultiStartSearch:
    """Best-of-``R`` random restarts on the lockstep engine.

    The classic multi-start wrapper: draw ``n_restarts`` independent
    initial placements, search each with its own chain, return the
    fittest outcome (first chain wins exact ties).  All chains advance
    through one :class:`MultiChainSearch`, so a whole restart portfolio
    costs one stacked engine pass per phase — and ``workers=`` shards it
    across processes without changing any result.

    Each restart chain draws its initial placement from its *own*
    generator before searching (the same stream layout the replication
    harness uses), so a single parent seed reproduces the entire
    portfolio.
    """

    def __init__(
        self,
        movement: "MovementType | Callable[[], MovementType]",
        n_restarts: int = 8,
        n_candidates: int = 16,
        max_phases: int = 64,
        stall_phases: int | None = None,
        accept_equal: bool = False,
        engine: str = "auto",
        max_chunk: int = DEFAULT_MAX_CHUNK,
    ) -> None:
        if n_restarts <= 0:
            raise ValueError(f"n_restarts must be positive, got {n_restarts}")
        self.n_restarts = n_restarts
        self.search = MultiChainSearch(
            movement,
            n_candidates=n_candidates,
            max_phases=max_phases,
            stall_phases=stall_phases,
            accept_equal=accept_equal,
            engine=engine,
            max_chunk=max_chunk,
        )

    def run(
        self,
        problem: ProblemInstance,
        seed: "int | Sequence[int] | np.random.SeedSequence | Sequence[np.random.Generator]",
        fitness: FitnessFunction | None = None,
        fitness_target: float | None = None,
        workers: int | None = None,
        deadline: "Deadline | None" = None,
    ) -> MultiStartResult:
        """Run the restart portfolio; ``seed`` follows :func:`chain_generators`.

        Pass a parent seed (int / entropy sequence / ``SeedSequence``)
        for the documented spawn contract, or one pre-seeded
        ``Generator`` per restart to control each stream directly.
        ``deadline`` follows :meth:`MultiChainSearch.run` (cooperative,
        mask-out-and-finish across the restart chains).
        """
        rngs = self._resolve_generators(seed)
        initials = [
            Placement.random(problem.grid, problem.n_routers, rng) for rng in rngs
        ]
        results = self.search.run(
            problem,
            initials,
            rngs,
            fitness=fitness,
            fitness_target=fitness_target,
            workers=workers,
            deadline=deadline,
        )
        fitnesses = np.array([result.best.fitness for result in results])
        return MultiStartResult(
            results=tuple(results), best_index=int(np.argmax(fitnesses))
        )

    def _resolve_generators(self, seed) -> list[np.random.Generator]:
        if isinstance(seed, (list, tuple)) and seed and all(
            isinstance(item, np.random.Generator) for item in seed
        ):
            if len(seed) != self.n_restarts:
                raise ValueError(
                    f"{len(seed)} generators for {self.n_restarts} restarts"
                )
            return list(seed)
        return chain_generators(seed, self.n_restarts)

    def __repr__(self) -> str:
        return (
            f"MultiStartSearch(n_restarts={self.n_restarts}, "
            f"search={self.search!r})"
        )
