"""Name-based lookup of movement types.

Mirrors the ad hoc and distribution registries: the CLI and experiment
configuration refer to neighborhood structures by name (``"swap"``,
``"swap-literal"``, ``"random"``, ``"combined"``).
"""

from __future__ import annotations

import functools
from typing import Callable

from repro.neighborhood.movements import (
    CombinedMovement,
    MovementType,
    RandomMovement,
    SwapMovement,
)

__all__ = [
    "available_movements",
    "make_movement",
    "movement_factory",
    "register_movement",
]


def _make_swap(**parameters) -> SwapMovement:
    parameters.setdefault("relocate", True)
    return SwapMovement(**parameters)


def _make_swap_literal(**parameters) -> SwapMovement:
    parameters["relocate"] = False
    return SwapMovement(**parameters)


def _make_combined(**parameters) -> CombinedMovement:
    movements = parameters.pop("movements", None)
    if movements is None:
        movements = [SwapMovement(), RandomMovement()]
    return CombinedMovement(movements, **parameters)


_FACTORIES: dict[str, Callable[..., MovementType]] = {
    "random": RandomMovement,
    "swap": _make_swap,
    "swap-literal": _make_swap_literal,
    "combined": _make_combined,
}


def available_movements() -> list[str]:
    """Names of all registered movement types, sorted."""
    return sorted(_FACTORIES)


def register_movement(name: str, factory: Callable[..., MovementType]) -> None:
    """Register a custom movement type under ``name``."""
    if name in _FACTORIES:
        raise ValueError(f"movement {name!r} is already registered")
    _FACTORIES[name] = factory


def make_movement(name: str, **parameters) -> MovementType:
    """Instantiate the movement registered under ``name``."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(available_movements())
        raise ValueError(f"unknown movement {name!r}; known: {known}") from None
    return factory(**parameters)


def movement_factory(name: str, **parameters) -> Callable[[], MovementType]:
    """A picklable zero-argument factory for a registered movement.

    The multi-chain engine and the replication harness take movement
    *factories* so each run / worker shard gets a fresh, process-local
    instance; ``functools.partial`` over :func:`make_movement` keeps the
    factory picklable for ``workers=`` fan-out.  Unknown names fail here
    rather than inside a worker.
    """
    if name not in _FACTORIES:
        known = ", ".join(available_movements())
        raise ValueError(f"unknown movement {name!r}; known: {known}")
    return functools.partial(make_movement, name, **parameters)
