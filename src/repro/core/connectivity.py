"""Connected components and the giant component.

"Network connectivity is measured through the size of the giant
component" (Section 2).  This module implements the graph machinery from
scratch: a union-find (disjoint set union) structure with path
compression and union by size, component labeling and giant-component
extraction.  ``networkx`` is used only in the test suite, to
cross-validate these implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["UnionFind", "ComponentStructure", "connected_components", "giant_component_mask"]


class UnionFind:
    """Disjoint-set union with path compression and union by size.

    Elements are the integers ``0 .. n-1``.  Amortized near-constant time
    per operation; the evaluation hot path unions the edge list of the
    router graph on every fitness call.
    """

    __slots__ = ("_parent", "_size", "_n_components")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"element count must be non-negative, got {n}")
        self._parent = list(range(n))
        self._size = [1] * n
        self._n_components = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def n_components(self) -> int:
        """Current number of disjoint sets."""
        return self._n_components

    def find(self, element: int) -> int:
        """Representative of the set containing ``element``."""
        parent = self._parent
        root = element
        while parent[root] != root:
            root = parent[root]
        # Path compression: point every node on the path at the root.
        while parent[element] != root:
            parent[element], element = root, parent[element]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets containing ``a`` and ``b``.

        Returns ``True`` when a merge happened (the elements were in
        different sets), ``False`` when they were already together.
        """
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return False
        # Union by size: attach the smaller tree under the larger.
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self._n_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def component_size(self, element: int) -> int:
        """Size of the set containing ``element``."""
        return self._size[self.find(element)]

    def labels(self) -> np.ndarray:
        """Canonical component label per element (root index)."""
        return np.array([self.find(i) for i in range(len(self._parent))], dtype=int)


@dataclass(frozen=True)
class ComponentStructure:
    """The component decomposition of a graph on ``n`` nodes.

    ``labels[i]`` is the canonical label (root id) of node ``i``'s
    component; ``sizes`` maps each label to its component size.
    """

    labels: np.ndarray
    sizes: dict[int, int]

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the underlying graph."""
        return int(self.labels.shape[0])

    @property
    def n_components(self) -> int:
        """Number of connected components."""
        return len(self.sizes)

    @property
    def giant_size(self) -> int:
        """Size of the largest component (0 for an empty graph)."""
        if not self.sizes:
            return 0
        return max(self.sizes.values())

    def giant_label(self) -> int:
        """Label of the largest component (smallest label wins ties).

        Deterministic tie-breaking keeps experiment runs reproducible.
        """
        if not self.sizes:
            raise ValueError("empty graph has no components")
        best = max(self.sizes.values())
        return min(label for label, size in self.sizes.items() if size == best)

    def giant_mask(self) -> np.ndarray:
        """Boolean mask of the nodes in the giant component."""
        if self.n_nodes == 0:
            return np.zeros(0, dtype=bool)
        return self.labels == self.giant_label()

    def members(self, label: int) -> list[int]:
        """The node ids of the component with the given label."""
        return [int(i) for i in np.flatnonzero(self.labels == label)]

    def component_of(self, node: int) -> int:
        """Label of the component containing ``node``."""
        return int(self.labels[node])


def connected_components(
    n_nodes: int, edges: Iterable[tuple[int, int]]
) -> ComponentStructure:
    """Component decomposition of the graph ``(range(n_nodes), edges)``."""
    if n_nodes < 0:
        raise ValueError(f"node count must be non-negative, got {n_nodes}")
    dsu = UnionFind(n_nodes)
    for a, b in edges:
        if not (0 <= a < n_nodes and 0 <= b < n_nodes):
            raise ValueError(f"edge ({a}, {b}) out of range for {n_nodes} nodes")
        dsu.union(a, b)
    labels = dsu.labels()
    sizes: dict[int, int] = {}
    for label in labels:
        sizes[int(label)] = sizes.get(int(label), 0) + 1
    return ComponentStructure(labels=labels, sizes=sizes)


def giant_component_mask(
    n_nodes: int, edges: Sequence[tuple[int, int]]
) -> np.ndarray:
    """Shortcut: boolean membership mask of the giant component."""
    return connected_components(n_nodes, edges).giant_mask()
