"""Connected components and the giant component.

"Network connectivity is measured through the size of the giant
component" (Section 2).  This module implements the graph machinery from
scratch: a union-find (disjoint set union) structure with path
compression and union by size, component labeling and giant-component
extraction.  ``networkx`` is used only in the test suite, to
cross-validate these implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "UnionFind",
    "ComponentStructure",
    "canonical_labels",
    "connected_components",
    "connected_components_from_arrays",
    "giant_component_mask",
    "structure_from_canonical_labels",
]


class UnionFind:
    """Disjoint-set union with path compression and union by size.

    Elements are the integers ``0 .. n-1``.  Amortized near-constant time
    per operation; the evaluation hot path unions the edge list of the
    router graph on every fitness call.
    """

    __slots__ = ("_parent", "_size", "_n_components")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"element count must be non-negative, got {n}")
        self._parent = list(range(n))
        self._size = [1] * n
        self._n_components = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def n_components(self) -> int:
        """Current number of disjoint sets."""
        return self._n_components

    def find(self, element: int) -> int:
        """Representative of the set containing ``element``."""
        parent = self._parent
        root = element
        while parent[root] != root:
            root = parent[root]
        # Path compression: point every node on the path at the root.
        while parent[element] != root:
            parent[element], element = root, parent[element]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets containing ``a`` and ``b``.

        Returns ``True`` when a merge happened (the elements were in
        different sets), ``False`` when they were already together.
        """
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return False
        # Union by size: attach the smaller tree under the larger.
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self._n_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def component_size(self, element: int) -> int:
        """Size of the set containing ``element``."""
        return self._size[self.find(element)]

    def labels(self) -> np.ndarray:
        """Component root per element, as one vectorized pass.

        Pointer-jumping (``parent = parent[parent]``) flattens every find
        path simultaneously instead of calling :meth:`find` element by
        element; the result is the root index of each element's set.
        """
        parent = np.asarray(self._parent, dtype=np.intp)
        while True:
            jumped = parent[parent]
            if np.array_equal(jumped, parent):
                return jumped
            parent = jumped


def canonical_labels(raw_labels: np.ndarray) -> np.ndarray:
    """Relabel a component labeling to smallest-member-id labels.

    Any labeling that is constant on components (e.g. union-find root
    ids) maps to the canonical one where each node carries the minimum
    node id of its component.  Every evaluation path (scalar union-find,
    batched label propagation, incremental delta updates) canonicalizes
    through here, so giant-component tie-breaking is identical across
    engines and runs stay bit-reproducible.

    Note: versions predating the engine layer broke giant-size ties on
    union-find *root* ids, which depend on edge processing order; on
    exact ties the selected giant component (and thus GIANT_ONLY
    coverage) may differ from those versions.  The smallest-member rule
    is the stable, engine-independent replacement.
    """
    if raw_labels.size == 0:
        return np.asarray(raw_labels, dtype=np.intp)
    _, inverse = np.unique(raw_labels, return_inverse=True)
    minima = np.full(int(inverse.max()) + 1, raw_labels.shape[0], dtype=np.intp)
    np.minimum.at(minima, inverse, np.arange(raw_labels.shape[0], dtype=np.intp))
    return minima[inverse]


@dataclass(frozen=True)
class ComponentStructure:
    """The component decomposition of a graph on ``n`` nodes.

    ``labels[i]`` is the canonical label of node ``i``'s component — the
    smallest node id in that component (see :func:`canonical_labels`);
    ``sizes`` maps each label to its component size.
    """

    labels: np.ndarray
    sizes: dict[int, int]

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the underlying graph."""
        return int(self.labels.shape[0])

    @property
    def n_components(self) -> int:
        """Number of connected components."""
        return len(self.sizes)

    @property
    def giant_size(self) -> int:
        """Size of the largest component (0 for an empty graph)."""
        if not self.sizes:
            return 0
        return max(self.sizes.values())

    def giant_label(self) -> int:
        """Label of the largest component (smallest label wins ties).

        Deterministic tie-breaking keeps experiment runs reproducible.
        The answer is cached on first use so :meth:`giant_mask` does not
        rescan ``sizes`` on every call (movements query the mask often).
        """
        cached = getattr(self, "_giant_label_cache", None)
        if cached is not None:
            return cached
        if not self.sizes:
            raise ValueError("empty graph has no components")
        best = max(self.sizes.values())
        label = min(label for label, size in self.sizes.items() if size == best)
        object.__setattr__(self, "_giant_label_cache", label)
        return label

    def giant_mask(self) -> np.ndarray:
        """Boolean mask of the nodes in the giant component."""
        if self.n_nodes == 0:
            return np.zeros(0, dtype=bool)
        return self.labels == self.giant_label()

    def members(self, label: int) -> list[int]:
        """The node ids of the component with the given label."""
        return [int(i) for i in np.flatnonzero(self.labels == label)]

    def component_of(self, node: int) -> int:
        """Label of the component containing ``node``."""
        return int(self.labels[node])


def structure_from_canonical_labels(labels: np.ndarray) -> ComponentStructure:
    """Tally component sizes of already-canonical labels in vector form.

    Shared constructor for every evaluation path; ``labels`` must come
    from :func:`canonical_labels` (or an equivalent smallest-member
    labeling, e.g. the engine's label propagation).
    """
    labels = np.asarray(labels, dtype=np.intp)
    unique, counts = np.unique(labels, return_counts=True)
    sizes = {
        int(label): int(count) for label, count in zip(unique.tolist(), counts.tolist())
    }
    return ComponentStructure(labels=labels, sizes=sizes)


def _structure_from_raw_labels(raw_labels: np.ndarray) -> ComponentStructure:
    """Canonicalize labels and tally component sizes."""
    return structure_from_canonical_labels(canonical_labels(raw_labels))


def connected_components(
    n_nodes: int, edges: Iterable[tuple[int, int]]
) -> ComponentStructure:
    """Component decomposition of the graph ``(range(n_nodes), edges)``."""
    if n_nodes < 0:
        raise ValueError(f"node count must be non-negative, got {n_nodes}")
    dsu = UnionFind(n_nodes)
    for a, b in edges:
        if not (0 <= a < n_nodes and 0 <= b < n_nodes):
            raise ValueError(f"edge ({a}, {b}) out of range for {n_nodes} nodes")
        dsu.union(a, b)
    return _structure_from_raw_labels(dsu.labels())


def connected_components_from_arrays(
    n_nodes: int, rows: np.ndarray, cols: np.ndarray
) -> ComponentStructure:
    """Component decomposition from parallel endpoint arrays.

    Array-native sibling of :func:`connected_components` for callers
    that already hold ``np.nonzero``-style edge arrays (see
    :func:`repro.core.network.edge_array`) — no Python tuple list is
    materialized on the way in.
    """
    if n_nodes < 0:
        raise ValueError(f"node count must be non-negative, got {n_nodes}")
    rows = np.asarray(rows, dtype=np.intp)
    cols = np.asarray(cols, dtype=np.intp)
    if rows.shape != cols.shape or rows.ndim != 1:
        raise ValueError(
            f"endpoint arrays must be parallel 1-D, got {rows.shape} / {cols.shape}"
        )
    if rows.size and not (
        0 <= int(min(rows.min(), cols.min()))
        and int(max(rows.max(), cols.max())) < n_nodes
    ):
        raise ValueError(f"edge endpoints out of range for {n_nodes} nodes")
    dsu = UnionFind(n_nodes)
    union = dsu.union
    for a, b in zip(rows.tolist(), cols.tolist()):
        union(a, b)
    return _structure_from_raw_labels(dsu.labels())


def giant_component_mask(
    n_nodes: int, edges: Sequence[tuple[int, int]]
) -> np.ndarray:
    """Shortcut: boolean membership mask of the giant component."""
    return connected_components(n_nodes, edges).giant_mask()
