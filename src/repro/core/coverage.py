"""User coverage.

"User coverage ... refers to the number of mesh client nodes connected to
the WMN" (Section 2).  A client is covered when it lies within the radio
coverage radius of a qualifying router; the instance's
:class:`~repro.core.radio.CoverageRule` decides whether only routers in
the giant component qualify (default) or any router does.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import ProblemInstance
from repro.core.radio import CoverageRule
from repro.core.solution import Placement

__all__ = ["coverage_mask", "covered_clients", "coverage_matrix"]


def coverage_matrix(
    client_positions: np.ndarray, router_positions: np.ndarray, radii: np.ndarray
) -> np.ndarray:
    """Boolean ``(M, N)`` matrix: client ``m`` within range of router ``n``."""
    if client_positions.size == 0:
        return np.zeros((0, router_positions.shape[0]), dtype=bool)
    # Per-axis broadcasting beats building an (M, N, 2) delta tensor on
    # this hot path (called once per fitness evaluation).
    dx = client_positions[:, 0:1] - router_positions[np.newaxis, :, 0]
    dy = client_positions[:, 1:2] - router_positions[np.newaxis, :, 1]
    squared_distance = dx * dx + dy * dy
    return squared_distance <= (radii * radii)[np.newaxis, :]


def coverage_mask(
    problem: ProblemInstance,
    placement: Placement,
    router_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Boolean mask over clients: covered or not.

    ``router_mask`` restricts which routers may cover (typically the
    giant-component mask).  When ``None``, the rule from the problem
    instance is applied by the caller — this function covers with every
    router in the mask (or all routers when no mask is given).
    """
    matrix = coverage_matrix(
        problem.clients.positions, placement.positions_array(), problem.fleet.radii
    )
    if router_mask is not None:
        if router_mask.shape != (problem.n_routers,):
            raise ValueError(
                f"router_mask shape {router_mask.shape} does not match "
                f"{problem.n_routers} routers"
            )
        matrix = matrix[:, router_mask]
    if matrix.shape[1] == 0:
        return np.zeros(problem.n_clients, dtype=bool)
    return matrix.any(axis=1)


def covered_clients(
    problem: ProblemInstance,
    placement: Placement,
    giant_mask: np.ndarray | None = None,
) -> int:
    """Number of covered clients under the instance's coverage rule.

    For ``CoverageRule.GIANT_ONLY`` the caller should pass the giant
    component's ``giant_mask`` (the evaluation engine already has it); it
    is computed on demand otherwise.
    """
    if problem.coverage_rule is CoverageRule.ANY_ROUTER:
        mask = coverage_mask(problem, placement, router_mask=None)
        return int(np.count_nonzero(mask))
    if giant_mask is None:
        from repro.core.network import RouterNetwork

        giant_mask = RouterNetwork.build(problem, placement).giant_mask()
    mask = coverage_mask(problem, placement, router_mask=giant_mask)
    return int(np.count_nonzero(mask))
