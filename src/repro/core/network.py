"""Building the router communication graph from a placement.

Given a placement and the fleet's radii, this module computes which
router pairs share a wireless link under the instance's
:class:`~repro.core.radio.LinkRule`.  Distances and link ranges are
compared on squared values where possible and computed with vectorized
numpy broadcasting: the adjacency computation sits on the hot path of
every fitness evaluation in the GA and the neighborhood search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.connectivity import (
    ComponentStructure,
    connected_components_from_arrays,
)
from repro.core.problem import ProblemInstance
from repro.core.radio import LinkRule
from repro.core.solution import Placement

__all__ = ["adjacency_matrix", "edge_array", "link_edges", "RouterNetwork"]


def adjacency_matrix(
    positions: np.ndarray, radii: np.ndarray, link_rule: LinkRule
) -> np.ndarray:
    """Boolean ``(N, N)`` adjacency matrix of the router graph.

    ``positions`` is ``(N, 2)``; ``radii`` is ``(N,)``.  The diagonal is
    ``False`` (no self loops); the matrix is symmetric for every link
    rule (all three predicates are symmetric in ``i, j``).
    """
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must be (N, 2), got {positions.shape}")
    n = positions.shape[0]
    if radii.shape != (n,):
        raise ValueError(
            f"radii shape {radii.shape} does not match {n} positions"
        )
    # Per-axis broadcasting avoids an (N, N, 2) delta tensor on the
    # fitness-evaluation hot path.
    x = positions[:, 0]
    y = positions[:, 1]
    dx = x[:, np.newaxis] - x[np.newaxis, :]
    dy = y[:, np.newaxis] - y[np.newaxis, :]
    squared_distance = dx * dx + dy * dy
    link_range = link_rule.range_matrix(radii)
    adjacency = squared_distance <= link_range * link_range
    np.fill_diagonal(adjacency, False)
    return adjacency


def edge_array(adjacency: np.ndarray) -> np.ndarray:
    """Upper-triangular edges ``(i < j)`` as an ``(E, 2)`` integer array.

    This is the hot-path representation: the component engine consumes
    the endpoint columns directly, so no per-edge Python tuples are
    materialized.
    """
    rows, cols = np.nonzero(adjacency)
    keep = rows < cols
    return np.column_stack((rows[keep], cols[keep])).astype(np.intp, copy=False)


def link_edges(adjacency: np.ndarray) -> list[tuple[int, int]]:
    """Upper-triangular edge list ``(i < j)`` of an adjacency matrix.

    Compatibility wrapper over :func:`edge_array` for callers that want
    Python tuples; performance-sensitive code should use the array form.
    """
    edges = edge_array(adjacency)
    return [(int(i), int(j)) for i, j in edges]


@dataclass(frozen=True)
class RouterNetwork:
    """The communication graph induced by a placement.

    A snapshot object: adjacency, edge list and component structure are
    computed once and then shared by the metric calculators.
    """

    adjacency: np.ndarray
    components: ComponentStructure

    @classmethod
    def build(cls, problem: ProblemInstance, placement: Placement) -> "RouterNetwork":
        """Compute the network of ``placement`` under ``problem``'s rules."""
        if len(placement) != problem.n_routers:
            raise ValueError(
                f"placement positions {len(placement)} routers but the fleet "
                f"has {problem.n_routers}"
            )
        adjacency = adjacency_matrix(
            placement.positions_array(), problem.fleet.radii, problem.link_rule
        )
        edges = edge_array(adjacency)
        components = connected_components_from_arrays(
            problem.n_routers, edges[:, 0], edges[:, 1]
        )
        return cls(adjacency=adjacency, components=components)

    @property
    def n_routers(self) -> int:
        """Number of routers (graph nodes)."""
        return int(self.adjacency.shape[0])

    @property
    def n_links(self) -> int:
        """Number of wireless links (undirected edges)."""
        # The adjacency matrix is symmetric with a False diagonal.
        return int(np.count_nonzero(self.adjacency)) // 2

    @property
    def giant_size(self) -> int:
        """Size of the giant component — the paper's connectivity metric."""
        return self.components.giant_size

    def giant_mask(self) -> np.ndarray:
        """Boolean membership mask of the giant component."""
        return self.components.giant_mask()

    def degrees(self) -> np.ndarray:
        """Degree of every router."""
        return self.adjacency.sum(axis=1).astype(int)

    def mean_degree(self) -> float:
        """Average router degree."""
        if self.n_routers == 0:
            return 0.0
        return float(self.degrees().mean())

    def isolated_routers(self) -> list[int]:
        """Routers with no wireless link at all."""
        return [int(i) for i in np.flatnonzero(self.degrees() == 0)]
