"""Mesh routers and the router fleet ("vector of routers").

An instance of the placement problem contains "N mesh router nodes, each
having its own radio coverage, defining thus a vector of routers"
(Section 2).  :class:`MeshRouter` is one router; :class:`RouterFleet` is
that vector.  The fleet fixes the hardware — how many routers exist and
how powerful each one is — while a *placement* (see
:mod:`repro.core.solution`) decides where each router goes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.core.radio import RadioProfile

__all__ = ["MeshRouter", "RouterFleet"]


@dataclass(frozen=True, slots=True)
class MeshRouter:
    """A single mesh router.

    ``radius`` is the radio coverage radius in grid-cell units; it also
    serves as the router's "power" for the HotSpot placement and the swap
    movement (larger radius = more powerful router).
    """

    router_id: int
    radius: float

    def __post_init__(self) -> None:
        if self.router_id < 0:
            raise ValueError(f"router_id must be non-negative, got {self.router_id}")
        if self.radius <= 0:
            raise ValueError(f"radius must be positive, got {self.radius}")


@dataclass(frozen=True)
class RouterFleet:
    """An immutable, ordered collection of :class:`MeshRouter`.

    Router ids are their indices in the fleet (``fleet[i].router_id == i``),
    which lets placements, chromosomes and numpy arrays all address
    routers by position.
    """

    routers: tuple[MeshRouter, ...]
    _radii: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.routers:
            raise ValueError("a fleet must contain at least one router")
        for index, router in enumerate(self.routers):
            if router.router_id != index:
                raise ValueError(
                    f"router at position {index} has id {router.router_id}; "
                    "fleet ids must equal positions"
                )
        radii = np.array([router.radius for router in self.routers], dtype=float)
        radii.setflags(write=False)
        object.__setattr__(self, "_radii", radii)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_radii(cls, radii: Sequence[float]) -> "RouterFleet":
        """Build a fleet from an explicit radius per router."""
        return cls(
            tuple(
                MeshRouter(router_id=index, radius=float(radius))
                for index, radius in enumerate(radii)
            )
        )

    @classmethod
    def oscillating(
        cls, count: int, profile: RadioProfile, rng: np.random.Generator
    ) -> "RouterFleet":
        """Sample a fleet whose radii oscillate within ``profile``.

        This is the paper's router model: each of the ``count`` routers
        draws its own coverage radius between the profile's minimum and
        maximum values.
        """
        if count <= 0:
            raise ValueError(f"fleet size must be positive, got {count}")
        return cls.from_radii(profile.sample_radii(count, rng))

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.routers)

    def __iter__(self) -> Iterator[MeshRouter]:
        return iter(self.routers)

    def __getitem__(self, index: int) -> MeshRouter:
        return self.routers[index]

    # ------------------------------------------------------------------
    # Power queries (used by HotSpot and the swap movement)
    # ------------------------------------------------------------------

    @property
    def radii(self) -> np.ndarray:
        """Read-only radius vector, indexed by router id."""
        return self._radii

    def by_power_descending(self) -> list[MeshRouter]:
        """Routers sorted from most to least powerful (ties by id)."""
        return sorted(self.routers, key=lambda router: (-router.radius, router.router_id))

    def strongest(self) -> MeshRouter:
        """The most powerful router (largest coverage radius)."""
        return self.by_power_descending()[0]

    def weakest(self) -> MeshRouter:
        """The least powerful router (smallest coverage radius)."""
        return self.by_power_descending()[-1]

    def strongest_among(self, router_ids: Sequence[int]) -> int:
        """Id of the most powerful router among ``router_ids``."""
        ids = list(router_ids)
        if not ids:
            raise ValueError("router_ids must not be empty")
        return max(ids, key=lambda rid: (self.routers[rid].radius, -rid))

    def weakest_among(self, router_ids: Sequence[int]) -> int:
        """Id of the least powerful router among ``router_ids``."""
        ids = list(router_ids)
        if not ids:
            raise ValueError("router_ids must not be empty")
        return min(ids, key=lambda rid: (self.routers[rid].radius, rid))
