"""Problem instances.

Bundles everything Section 2 of the paper lists as "an instance of the
problem": the grid area, the vector of routers (with their oscillating
radio coverage) and the matrix of clients — plus the two modeling rules
(link predicate and coverage predicate) that the evaluation engine needs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.clients import ClientSet
from repro.core.grid import GridArea
from repro.core.radio import CoverageRule, LinkRule, RadioProfile
from repro.core.routers import RouterFleet

__all__ = ["ProblemInstance"]


@dataclass(frozen=True)
class ProblemInstance:
    """One instance of the mesh router placement problem.

    Attributes
    ----------
    grid:
        The ``W x H`` deployment area.
    fleet:
        The ``N`` mesh routers with their coverage radii.
    clients:
        The ``M`` fixed mesh clients.
    link_rule:
        When two routers form a wireless link (DESIGN.md decision D3).
    coverage_rule:
        Which routers cover clients (DESIGN.md decision D4).
    """

    grid: GridArea
    fleet: RouterFleet
    clients: ClientSet
    link_rule: LinkRule = LinkRule.BIDIRECTIONAL
    coverage_rule: CoverageRule = CoverageRule.GIANT_ONLY

    def __post_init__(self) -> None:
        if len(self.fleet) > self.grid.n_cells:
            raise ValueError(
                f"{len(self.fleet)} routers cannot be placed on a grid with "
                f"only {self.grid.n_cells} cells"
            )
        for client in self.clients:
            if not self.grid.contains(client.cell):
                raise ValueError(
                    f"client {client.client_id} at {tuple(client.cell)} lies "
                    f"outside the {self.grid.width}x{self.grid.height} grid"
                )
        # Non-finite radii or client positions would flow silently
        # through every engine tier (numpy comparisons with NaN are all
        # False) and come back as garbage fitness — reject them here,
        # at the single choke point every instance passes through.
        if not np.isfinite(self.fleet.radii).all():
            bad = np.flatnonzero(~np.isfinite(self.fleet.radii))
            raise ValueError(
                f"router radii must be finite; non-finite radius for "
                f"router ids {bad.tolist()}"
            )
        if not np.isfinite(self.clients.positions).all():
            bad = np.flatnonzero(
                ~np.isfinite(self.clients.positions).all(axis=1)
            )
            raise ValueError(
                f"client positions must be finite; non-finite position "
                f"for client ids {bad.tolist()}"
            )

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def n_routers(self) -> int:
        """Number of mesh routers (``N``)."""
        return len(self.fleet)

    @property
    def n_clients(self) -> int:
        """Number of mesh clients (``M``)."""
        return len(self.clients)

    def with_link_rule(self, link_rule: LinkRule) -> "ProblemInstance":
        """The same instance under a different link predicate."""
        return replace(self, link_rule=link_rule)

    def with_coverage_rule(self, coverage_rule: CoverageRule) -> "ProblemInstance":
        """The same instance under a different coverage predicate."""
        return replace(self, coverage_rule=coverage_rule)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        width: int,
        height: int,
        n_routers: int,
        client_cells: "np.ndarray | list",
        radio: RadioProfile,
        rng: np.random.Generator,
        link_rule: LinkRule = LinkRule.BIDIRECTIONAL,
        coverage_rule: CoverageRule = CoverageRule.GIANT_ONLY,
    ) -> "ProblemInstance":
        """Assemble an instance from raw ingredients.

        ``client_cells`` is any sequence of ``(x, y)`` pairs; router radii
        are sampled from ``radio`` using ``rng``.
        """
        grid = GridArea(width, height)
        fleet = RouterFleet.oscillating(n_routers, radio, rng)
        from repro.core.geometry import Point

        clients = ClientSet.from_points(
            [Point(int(x), int(y)) for x, y in client_cells], grid=grid
        )
        return cls(
            grid=grid,
            fleet=fleet,
            clients=clients,
            link_rule=link_rule,
            coverage_rule=coverage_rule,
        )
