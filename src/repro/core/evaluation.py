"""The scalar evaluation engine.

Everything an optimizer needs to know about a candidate placement in one
call: :class:`Evaluator` builds the router network, extracts the giant
component, computes user coverage under the instance's coverage rule and
scalarizes the result through the configured fitness function.

The returned :class:`Evaluation` is an immutable snapshot; search
algorithms compare evaluations, never recompute pieces by hand.  The
evaluator also counts how many evaluations it has performed —
experiments report search cost in evaluations, which is
machine-independent.

:class:`Evaluator` is the *reference* path and the adapter into the
faster engines of :mod:`repro.core.engine`: :meth:`Evaluator.evaluate_many`
routes whole candidate sets through the batched engine, and
:class:`~repro.core.engine.delta.DeltaEvaluator` wraps an evaluator for
incremental single-move loops.  All paths share this evaluator's counter
and archive, and produce bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.coverage import coverage_mask
from repro.core.fitness import FitnessFunction, NetworkMetrics, WeightedSumFitness
from repro.core.network import RouterNetwork
from repro.core.problem import ProblemInstance
from repro.core.radio import CoverageRule
from repro.core.solution import Placement

__all__ = ["Evaluation", "Evaluator"]


@dataclass(frozen=True, eq=False)
class Evaluation:
    """The full measurement of one placement.

    Carries the placement itself, its metric bundle, the scalar fitness
    and the giant-component mask (several movements and reports need to
    know *which* routers form the giant component, not just how many).
    Evaluations are snapshots and compare by identity (the mask is a
    numpy array, so field-wise equality would be ill-defined).
    """

    placement: Placement
    metrics: NetworkMetrics
    fitness: float
    giant_mask: np.ndarray

    @property
    def giant_size(self) -> int:
        """Size of the giant component."""
        return self.metrics.giant_size

    @property
    def covered_clients(self) -> int:
        """Number of covered clients."""
        return self.metrics.covered_clients

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"giant={self.metrics.giant_size}/{self.metrics.n_routers} "
            f"coverage={self.metrics.covered_clients}/{self.metrics.n_clients} "
            f"fitness={self.fitness:.4f}"
        )


class Evaluator:
    """Evaluates placements for one problem instance.

    Parameters
    ----------
    problem:
        The instance to evaluate against.
    fitness:
        The scalarization; defaults to the paper-aligned
        :class:`WeightedSumFitness` (0.7 connectivity / 0.3 coverage).
    archive:
        Optional :class:`~repro.core.pareto.ParetoArchive`; when given,
        every evaluation is offered to it, so any search run through
        this evaluator also yields the bi-objective front it explored.
    engine:
        ``"auto"`` (default) picks the dense matrix path at paper scale
        and the spatial-grid sparse path for city-scale instances (see
        :mod:`repro.core.engine.dispatch`); ``"dense"``/``"sparse"``
        force one.  All engines are bit-identical, so this is purely a
        performance knob.
    """

    def __init__(
        self,
        problem: ProblemInstance,
        fitness: FitnessFunction | None = None,
        archive=None,
        engine: str = "auto",
    ) -> None:
        # Deferred: the engine package's modules import this one.
        from repro.core.engine.dispatch import resolve_engine

        # Cheap non-finite gate (two vectorized isfinite scans).  The
        # same check runs at ProblemInstance construction; repeating it
        # here catches instances whose arrays were mutated after the
        # fact (e.g. through object.__setattr__), before whichever
        # engine tier this evaluator resolves to sees them.
        if not np.isfinite(problem.fleet.radii).all():
            raise ValueError(
                "router radii must be finite (NaN/inf would silently "
                "produce garbage fitness in every engine tier)"
            )
        if not np.isfinite(problem.clients.positions).all():
            raise ValueError(
                "client positions must be finite (NaN/inf would silently "
                "produce garbage fitness in every engine tier)"
            )
        self._problem = problem
        self._fitness = fitness if fitness is not None else WeightedSumFitness()
        self._archive = archive
        self._n_evaluations = 0
        self._engine = resolve_engine(problem, engine)
        self._sparse = None
        self._compiled = None

    @property
    def engine(self) -> str:
        """The resolved path: ``"dense"``, ``"sparse"`` or ``"compiled"``."""
        return self._engine

    def _sparse_engine(self):
        """The lazily built :class:`~repro.core.engine.sparse.SparseEngine`."""
        if self._sparse is None:
            from repro.core.engine.sparse import SparseEngine

            self._sparse = SparseEngine(self._problem, self._fitness)
        return self._sparse

    def _compiled_engine(self):
        """The lazily built :class:`~repro.core.engine.compiled.CompiledEngine`."""
        if self._compiled is None:
            from repro.core.engine.compiled import CompiledEngine

            self._compiled = CompiledEngine(self._problem, self._fitness)
        return self._compiled

    @property
    def problem(self) -> ProblemInstance:
        """The instance this evaluator measures against."""
        return self._problem

    @property
    def fitness_function(self) -> FitnessFunction:
        """The configured scalarization."""
        return self._fitness

    @property
    def n_evaluations(self) -> int:
        """Number of placements evaluated so far (search cost counter)."""
        return self._n_evaluations

    def reset_counter(self) -> None:
        """Zero the evaluation counter (e.g. between experiment runs)."""
        self._n_evaluations = 0

    def record_evaluation(self, evaluation: Evaluation) -> None:
        """Count an evaluation performed on this evaluator's behalf.

        Engine hook: the batched and delta paths measure placements
        outside :meth:`evaluate` but must preserve the evaluation-count
        semantics and archive observation, so they report here.
        """
        self._n_evaluations += 1
        if self._archive is not None:
            self._archive.observe(evaluation)

    def evaluate(self, placement: Placement) -> Evaluation:
        """Measure a placement: network, giant component, coverage, fitness."""
        if self._engine == "compiled":
            evaluation = self._compiled_engine().evaluate(placement)
            self.record_evaluation(evaluation)
            return evaluation
        if self._engine == "sparse":
            evaluation = self._sparse_engine().evaluate(placement)
            self.record_evaluation(evaluation)
            return evaluation
        network = RouterNetwork.build(self._problem, placement)
        giant_mask = network.giant_mask()
        if self._problem.coverage_rule is CoverageRule.ANY_ROUTER:
            covered = coverage_mask(self._problem, placement, router_mask=None)
        else:
            covered = coverage_mask(self._problem, placement, router_mask=giant_mask)
        metrics = NetworkMetrics(
            giant_size=network.giant_size,
            n_routers=self._problem.n_routers,
            covered_clients=int(np.count_nonzero(covered)),
            n_clients=self._problem.n_clients,
            n_components=network.components.n_components,
            n_links=network.n_links,
            mean_degree=network.mean_degree(),
        )
        evaluation = Evaluation(
            placement=placement,
            metrics=metrics,
            fitness=self._fitness.score(metrics),
            giant_mask=giant_mask,
        )
        self.record_evaluation(evaluation)
        return evaluation

    def evaluate_many(self, placements: Sequence[Placement]) -> list[Evaluation]:
        """Measure a whole candidate set through the dispatched engine.

        Bit-identical to calling :meth:`evaluate` in a loop (the parity
        tests assert it) and counted the same — one evaluation per
        placement.  On the dense path the set is vectorized in bounded
        chunks (one stacked distance tensor, one component-labeling
        pass, one coverage comparison); on the sparse path each
        placement runs through the shared spatial-grid engine, whose
        per-candidate cost and memory stay ``O(N k + M k)``.
        """
        from repro.core.engine.batch import DEFAULT_MAX_CHUNK, evaluate_batch

        evaluations: list[Evaluation] = []
        if self._engine == "compiled":
            evaluations.extend(self._compiled_engine().evaluate_batch(placements))
        elif self._engine == "sparse":
            sparse = self._sparse_engine()
            evaluations.extend(sparse.evaluate(p) for p in placements)
        else:
            for start in range(0, len(placements), DEFAULT_MAX_CHUNK):
                chunk = placements[start : start + DEFAULT_MAX_CHUNK]
                evaluations.extend(
                    evaluate_batch(self._problem, self._fitness, chunk)
                )
        for evaluation in evaluations:
            self.record_evaluation(evaluation)
        return evaluations
