"""Planar geometry primitives for the WMN grid model.

The deployment area of a Wireless Mesh Network is modeled as a discrete
``W x H`` grid (paper, Section 2).  Every position is an integer cell
``(x, y)``.  This module provides the :class:`Point` and :class:`Rect`
primitives used throughout the library, together with the distance
functions that the radio model is built on.

All classes here are immutable value types: they hash, compare and can be
used as dictionary keys or set members, which the placement and density
engines rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, NamedTuple

__all__ = [
    "Point",
    "Rect",
    "euclidean",
    "euclidean_squared",
    "manhattan",
    "chebyshev",
]


class Point(NamedTuple):
    """An integer grid cell ``(x, y)``.

    ``Point`` is a ``NamedTuple``: it unpacks, compares lexicographically
    and is hashable, so placements can store occupied cells in sets.
    """

    x: int
    y: int

    def translated(self, dx: int, dy: int) -> "Point":
        """Return the point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return euclidean(self, other)


def euclidean_squared(a: Point, b: Point) -> int:
    """Squared Euclidean distance between two cells.

    Preferred in hot paths: it avoids the square root and stays exact in
    integer arithmetic, so radius comparisons can be done on squared
    values without floating point error.
    """
    dx = a.x - b.x
    dy = a.y - b.y
    return dx * dx + dy * dy


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two cells."""
    return math.sqrt(euclidean_squared(a, b))


def manhattan(a: Point, b: Point) -> int:
    """Manhattan (L1) distance between two cells."""
    return abs(a.x - b.x) + abs(a.y - b.y)


def chebyshev(a: Point, b: Point) -> int:
    """Chebyshev (L-infinity) distance between two cells."""
    return max(abs(a.x - b.x), abs(a.y - b.y))


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle of grid cells.

    The rectangle spans ``x0 <= x < x0 + width`` and
    ``y0 <= y < y0 + height`` (half-open, like Python ranges).  Rectangles
    describe density windows (``Hg x Wg`` sub-areas of Algorithm 3), the
    central zone of the *Near* placement and the corner zones of the
    *Corners* placement.
    """

    x0: int
    y0: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 0 or self.height < 0:
            raise ValueError(
                f"Rect dimensions must be non-negative, got "
                f"{self.width}x{self.height}"
            )

    @property
    def x1(self) -> int:
        """Exclusive right edge."""
        return self.x0 + self.width

    @property
    def y1(self) -> int:
        """Exclusive top edge."""
        return self.y0 + self.height

    @property
    def area(self) -> int:
        """Number of cells in the rectangle."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """The central cell (rounded down for even dimensions)."""
        return Point(self.x0 + self.width // 2, self.y0 + self.height // 2)

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside the rectangle."""
        return self.x0 <= point.x < self.x1 and self.y0 <= point.y < self.y1

    def cells(self) -> Iterator[Point]:
        """Iterate all cells of the rectangle in row-major order."""
        for y in range(self.y0, self.y1):
            for x in range(self.x0, self.x1):
                yield Point(x, y)

    def intersection(self, other: "Rect") -> "Rect":
        """The overlapping rectangle (possibly empty) with ``other``."""
        x0 = max(self.x0, other.x0)
        y0 = max(self.y0, other.y0)
        x1 = min(self.x1, other.x1)
        y1 = min(self.y1, other.y1)
        return Rect(x0, y0, max(0, x1 - x0), max(0, y1 - y0))

    def intersects(self, other: "Rect") -> bool:
        """Whether the two rectangles share at least one cell."""
        return self.intersection(other).area > 0

    def clamped(self, point: Point) -> Point:
        """The nearest cell of the rectangle to ``point``."""
        if self.area == 0:
            raise ValueError("cannot clamp to an empty rectangle")
        x = min(max(point.x, self.x0), self.x1 - 1)
        y = min(max(point.y, self.y0), self.y1 - 1)
        return Point(x, y)
