"""Fitness functions over network metrics.

The problem is bi-objective: "maximize network connectivity (size of the
giant component) and client coverage", with "network connectivity ...
considered as more important than user coverage" (Section 2).  The search
algorithms need a scalar to compare solutions, so this module provides
two scalarizations:

* :class:`WeightedSumFitness` — convex combination of the normalized
  objectives (default 0.7 / 0.3, the split the authors use in their
  follow-up WMN-GA / WMN-SA systems).
* :class:`LexicographicFitness` — connectivity strictly first, coverage
  as tie-break, encoded so larger is always better.

Both are pure functions of :class:`NetworkMetrics` and can be swapped
anywhere an algorithm takes a ``fitness`` argument.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "NetworkMetrics",
    "FitnessFunction",
    "WeightedSumFitness",
    "LexicographicFitness",
]


@dataclass(frozen=True, slots=True)
class NetworkMetrics:
    """The measured properties of one placement.

    ``giant_size`` and ``covered_clients`` are the paper's two reported
    metrics; the remaining fields support the extended reporting and the
    ablation benches.
    """

    giant_size: int
    n_routers: int
    covered_clients: int
    n_clients: int
    n_components: int
    n_links: int
    mean_degree: float

    def __post_init__(self) -> None:
        if not 0 <= self.giant_size <= self.n_routers:
            raise ValueError(
                f"giant_size {self.giant_size} outside [0, {self.n_routers}]"
            )
        if not 0 <= self.covered_clients <= self.n_clients:
            raise ValueError(
                f"covered_clients {self.covered_clients} outside "
                f"[0, {self.n_clients}]"
            )

    @property
    def connectivity_ratio(self) -> float:
        """Giant component size as a fraction of the fleet."""
        if self.n_routers == 0:
            return 0.0
        return self.giant_size / self.n_routers

    @property
    def coverage_ratio(self) -> float:
        """Covered clients as a fraction of all clients.

        An instance with no clients counts as fully covered (the coverage
        objective is vacuous), so optimizers degrade gracefully to
        single-objective connectivity maximization.
        """
        if self.n_clients == 0:
            return 1.0
        return self.covered_clients / self.n_clients

    @property
    def is_fully_connected(self) -> bool:
        """Whether every router belongs to one component."""
        return self.giant_size == self.n_routers


class FitnessFunction(abc.ABC):
    """A scalarization of :class:`NetworkMetrics`; larger is better."""

    @abc.abstractmethod
    def score(self, metrics: NetworkMetrics) -> float:
        """Scalar fitness of a placement's metrics."""

    def better(self, candidate: NetworkMetrics, incumbent: NetworkMetrics) -> bool:
        """Whether ``candidate`` strictly improves on ``incumbent``."""
        return self.score(candidate) > self.score(incumbent)

    def score_rows(self, rows) -> np.ndarray:
        """Fitness of every row of a stacked measurement, as an array.

        ``rows`` is any object exposing the stacked-measurement protocol
        (see :class:`repro.core.engine.batch.StackedMeasurement`):
        ``len(rows)`` candidates plus a ``metrics(index)`` accessor.  The
        base implementation loops :meth:`score` per row — exactly the
        scalar semantics — so every custom fitness works unmodified;
        subclasses whose formula vectorizes override this with
        bit-identical array arithmetic (same operations in the same
        order, so float64 results match the scalar path exactly).
        """
        return np.array(
            [self.score(rows.metrics(index)) for index in range(len(rows))],
            dtype=float,
        )


@dataclass(frozen=True)
class WeightedSumFitness(FitnessFunction):
    """``w_connectivity * giant/N + w_coverage * coverage/M``.

    The defaults encode the paper's priority ordering (connectivity
    before coverage).  Weights need not sum to one but must be
    non-negative and not both zero.
    """

    connectivity_weight: float = 0.7
    coverage_weight: float = 0.3

    def __post_init__(self) -> None:
        if self.connectivity_weight < 0 or self.coverage_weight < 0:
            raise ValueError("fitness weights must be non-negative")
        if self.connectivity_weight == 0 and self.coverage_weight == 0:
            raise ValueError("at least one fitness weight must be positive")

    def score(self, metrics: NetworkMetrics) -> float:
        return (
            self.connectivity_weight * metrics.connectivity_ratio
            + self.coverage_weight * metrics.coverage_ratio
        )

    def score_rows(self, rows) -> np.ndarray:
        # Same formula, same operation order as score(): int/int division
        # is identical in python floats and numpy float64, so the rows
        # are bit-identical to per-row score() calls.
        if rows.n_routers == 0:
            connectivity = np.zeros(len(rows), dtype=float)
        else:
            connectivity = rows.giant_sizes / rows.n_routers
        if rows.n_clients == 0:
            coverage = np.ones(len(rows), dtype=float)
        else:
            coverage = rows.covered_clients / rows.n_clients
        return (
            self.connectivity_weight * connectivity
            + self.coverage_weight * coverage
        )


@dataclass(frozen=True)
class LexicographicFitness(FitnessFunction):
    """Connectivity strictly dominates; coverage breaks ties.

    Encoded as ``giant_size + coverage_ratio * epsilon`` with
    ``epsilon < 1``: one extra router in the giant component always beats
    any coverage gain, mirroring "network connectivity is considered as
    more important than user coverage".
    """

    epsilon: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.epsilon < 1:
            raise ValueError(
                f"epsilon must lie strictly between 0 and 1, got {self.epsilon}"
            )

    def score(self, metrics: NetworkMetrics) -> float:
        return metrics.giant_size + self.epsilon * metrics.coverage_ratio

    def score_rows(self, rows) -> np.ndarray:
        if rows.n_clients == 0:
            coverage = np.ones(len(rows), dtype=float)
        else:
            coverage = rows.covered_clients / rows.n_clients
        return rows.giant_sizes + self.epsilon * coverage
