"""Placement solutions.

A solution to the mesh router placement problem assigns every router of
the fleet to a distinct grid cell.  :class:`Placement` is that
assignment.  It is an immutable value object: search operators derive new
placements via :meth:`with_move` and :meth:`with_swap` instead of
mutating in place, which keeps traces, populations and tabu lists safe to
share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.core.geometry import Point, Rect
from repro.core.grid import GridArea

__all__ = ["Placement"]


@dataclass(frozen=True)
class Placement:
    """An assignment of router ids to distinct grid cells.

    ``cells[i]`` is the position of router ``i``.  The constructor
    enforces the two structural invariants of the problem: every cell is
    inside the grid and no two routers share a cell.
    """

    grid: GridArea
    cells: tuple[Point, ...]
    _occupied: frozenset[Point] = field(init=False, repr=False, compare=False)
    _positions: "np.ndarray | None" = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError("a placement must position at least one router")
        for cell in self.cells:
            self.grid.require_inside(cell)
        occupied = frozenset(self.cells)
        if len(occupied) != len(self.cells):
            raise ValueError("placement has two routers on the same cell")
        object.__setattr__(self, "_occupied", occupied)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_cells(cls, grid: GridArea, cells: Sequence[Point]) -> "Placement":
        """Build a placement from an ordered sequence of cells."""
        return cls(grid=grid, cells=tuple(Point(int(c[0]), int(c[1])) for c in cells))

    @classmethod
    def random(
        cls, grid: GridArea, count: int, rng: np.random.Generator
    ) -> "Placement":
        """Uniformly random placement of ``count`` routers."""
        return cls.from_cells(grid, grid.sample_distinct_cells(count, rng))

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.cells)

    def __getitem__(self, router_id: int) -> Point:
        return self.cells[router_id]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def occupied(self) -> frozenset[Point]:
        """The set of occupied cells."""
        return self._occupied

    def is_free(self, cell: Point) -> bool:
        """Whether ``cell`` is inside the grid and not occupied."""
        return self.grid.contains(cell) and cell not in self._occupied

    def positions_array(self) -> np.ndarray:
        """``(N, 2)`` float array of router coordinates (id order).

        Computed lazily and cached (the placement is immutable); the
        array is read-only because network, coverage and density all
        share it.
        """
        if self._positions is None:
            # Point is a NamedTuple, so the cells convert directly —
            # no intermediate nested list on this hot path.
            positions = np.array(self.cells, dtype=float)
            positions.setflags(write=False)
            object.__setattr__(self, "_positions", positions)
        return self._positions

    def routers_in(self, rect: Rect) -> list[int]:
        """Ids of routers whose cell lies inside ``rect``."""
        return [
            router_id
            for router_id, cell in enumerate(self.cells)
            if rect.contains(cell)
        ]

    def as_mapping(self) -> Mapping[int, Point]:
        """Router id -> cell dictionary view (a fresh dict)."""
        return dict(enumerate(self.cells))

    # ------------------------------------------------------------------
    # Derivation (the local moves build on these)
    # ------------------------------------------------------------------

    def with_move(self, router_id: int, cell: Point) -> "Placement":
        """A new placement with ``router_id`` relocated to ``cell``.

        Raises ``ValueError`` when ``cell`` is occupied by another router
        or outside the grid.
        """
        self._require_router(router_id)
        if cell == self.cells[router_id]:
            return self
        if cell in self._occupied:
            raise ValueError(f"cell {tuple(cell)} is already occupied")
        new_cells = list(self.cells)
        new_cells[router_id] = cell
        derived = Placement(grid=self.grid, cells=tuple(new_cells))
        if self._positions is not None:
            # Seed the child's positions cache from ours: one row update
            # instead of reconverting every cell (hot in search loops).
            positions = self._positions.copy()
            positions[router_id] = (cell.x, cell.y)
            positions.setflags(write=False)
            object.__setattr__(derived, "_positions", positions)
        return derived

    def with_swap(self, router_a: int, router_b: int) -> "Placement":
        """A new placement with the positions of two routers exchanged.

        This is the literal "exchange the placement of two routers" of
        Algorithm 3: the occupied-cell multiset is unchanged, only the
        assignment of router hardware to positions changes.
        """
        self._require_router(router_a)
        self._require_router(router_b)
        if router_a == router_b:
            return self
        new_cells = list(self.cells)
        new_cells[router_a], new_cells[router_b] = (
            new_cells[router_b],
            new_cells[router_a],
        )
        derived = Placement(grid=self.grid, cells=tuple(new_cells))
        if self._positions is not None:
            positions = self._positions.copy()
            positions[[router_a, router_b]] = positions[[router_b, router_a]]
            positions.setflags(write=False)
            object.__setattr__(derived, "_positions", positions)
        return derived

    def _require_router(self, router_id: int) -> None:
        if not 0 <= router_id < len(self.cells):
            raise ValueError(
                f"router id {router_id} out of range for fleet of {len(self.cells)}"
            )
