"""Denseness of grid sub-areas.

Two of the paper's algorithms rank sub-areas of the grid by how densely
populated they are:

* *HotSpot* placement puts "the most powerful mesh router in the most
  dense zone (in terms of client nodes) ... the second most powerful mesh
  router in the second most dense zone, and so on" (Section 3).
* The *swap movement* locates "the position of most dense Hg x Wg area"
  and "the position of most sparse Hg x Wg area" (Algorithm 3).

:class:`DensityMap` supports both with an integral-image (2-D prefix sum)
over the point histogram, so every sliding-window count is O(1) after an
O(W*H) setup — the same trick used by image processing box filters.  The
paper notes HotSpot "has a greater computational cost as compared to
other methods due to the computation of denseness property"; prefix sums
keep that cost modest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.geometry import Point, Rect
from repro.core.grid import GridArea

__all__ = ["DensityMap"]


@dataclass(frozen=True)
class DensityMap:
    """Sliding-window point counts over a grid.

    Built from a set of points (client cells, router cells, or both) and
    a window size ``window_width x window_height``; exposes the count of
    points inside every window position and the ranked dense/sparse
    windows.
    """

    grid: GridArea
    window_width: int
    window_height: int
    _window_counts: np.ndarray
    _histogram: np.ndarray

    @classmethod
    def build(
        cls,
        grid: GridArea,
        points: "np.ndarray | list[Point]",
        window_width: int,
        window_height: int,
    ) -> "DensityMap":
        """Compute the density map of ``points`` for the given window size."""
        if window_width <= 0 or window_height <= 0:
            raise ValueError(
                f"window must be positive, got {window_width}x{window_height}"
            )
        if window_width > grid.width or window_height > grid.height:
            raise ValueError(
                f"window {window_width}x{window_height} exceeds grid "
                f"{grid.width}x{grid.height}"
            )
        histogram = np.zeros((grid.height, grid.width), dtype=np.int64)
        array = np.asarray(points, dtype=int).reshape(-1, 2)
        if array.size:
            xs = array[:, 0]
            ys = array[:, 1]
            outside = (xs < 0) | (xs >= grid.width) | (ys < 0) | (ys >= grid.height)
            if outside.any():
                index = int(np.flatnonzero(outside)[0])
                raise ValueError(
                    f"point ({array[index, 0]}, {array[index, 1]}) outside the grid"
                )
            np.add.at(histogram, (ys, xs), 1)
        # Integral image with a zero border row/column, so that
        # sum(rect) = I[y1, x1] - I[y0, x1] - I[y1, x0] + I[y0, x0].
        integral = np.zeros((grid.height + 1, grid.width + 1), dtype=np.int64)
        np.cumsum(np.cumsum(histogram, axis=0), axis=1, out=integral[1:, 1:])
        window_counts = (
            integral[window_height:, window_width:]
            - integral[:-window_height, window_width:]
            - integral[window_height:, :-window_width]
            + integral[:-window_height, :-window_width]
        )
        return cls(
            grid=grid,
            window_width=window_width,
            window_height=window_height,
            _window_counts=window_counts,
            _histogram=histogram,
        )

    # ------------------------------------------------------------------
    # Raw counts
    # ------------------------------------------------------------------

    @property
    def window_counts(self) -> np.ndarray:
        """``(H - Hg + 1, W - Wg + 1)`` array of per-window point counts.

        Entry ``[y0, x0]`` is the number of points in
        ``Rect(x0, y0, Wg, Hg)``.
        """
        return self._window_counts

    @property
    def total_points(self) -> int:
        """Total number of points the map was built from."""
        return int(self._histogram.sum())

    def count_in(self, rect: Rect) -> int:
        """Exact point count inside an arbitrary rectangle (brute check)."""
        clipped = rect.intersection(self.grid.bounds)
        if clipped.area == 0:
            return 0
        return int(
            self._histogram[clipped.y0 : clipped.y1, clipped.x0 : clipped.x1].sum()
        )

    def window_at(self, x0: int, y0: int) -> Rect:
        """The window rectangle anchored at ``(x0, y0)``."""
        rect = Rect(x0, y0, self.window_width, self.window_height)
        if (
            x0 < 0
            or y0 < 0
            or rect.x1 > self.grid.width
            or rect.y1 > self.grid.height
        ):
            raise ValueError(f"window anchor ({x0}, {y0}) out of range")
        return rect

    # ------------------------------------------------------------------
    # Ranked windows
    # ------------------------------------------------------------------

    def densest_window(self) -> Rect:
        """The window with the most points (row-major first on ties)."""
        return self._extreme_window(densest=True)

    def sparsest_window(self) -> Rect:
        """The window with the fewest points (row-major first on ties)."""
        return self._extreme_window(densest=False)

    def _extreme_window(self, densest: bool) -> Rect:
        counts = self._window_counts
        flat_index = int(counts.argmax() if densest else counts.argmin())
        y0, x0 = np.unravel_index(flat_index, counts.shape)
        return self.window_at(int(x0), int(y0))

    def ranked_windows(
        self,
        count: int,
        densest: bool = True,
        min_overlap_free: bool = True,
    ) -> list[Rect]:
        """The top ``count`` windows, optionally non-overlapping.

        With ``min_overlap_free`` (the default) windows are selected by
        greedy non-maximum suppression: the best window is taken, every
        window overlapping it is discarded, and so on.  This yields the
        *distinct* "most dense zone, second most dense zone, ..." ordering
        HotSpot needs; without suppression the top windows would all be
        one-cell shifts of each other.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        counts = self._window_counts
        # Stable sort on the (negated) counts keeps row-major order among
        # ties, matching densest_window()/sparsest_window() tie-breaking.
        keys = -counts if densest else counts
        order = np.argsort(keys, axis=None, kind="stable")
        # Greedy non-maximum suppression with an O(1) membership test:
        # ``blocked[y0, x0]`` is True when the window anchored there would
        # overlap an already-selected window.
        blocked = np.zeros(counts.shape, dtype=bool)
        n_rows, n_cols = counts.shape
        selected: list[Rect] = []
        for flat_index in order:
            y0, x0 = divmod(int(flat_index), n_cols)
            if min_overlap_free and blocked[y0, x0]:
                continue
            selected.append(self.window_at(x0, y0))
            if len(selected) == count:
                break
            if min_overlap_free:
                row_lo = max(0, y0 - self.window_height + 1)
                row_hi = min(n_rows, y0 + self.window_height)
                col_lo = max(0, x0 - self.window_width + 1)
                col_hi = min(n_cols, x0 + self.window_width)
                blocked[row_lo:row_hi, col_lo:col_hi] = True
        return selected

    def sampled_extreme_window(
        self,
        rng: np.random.Generator,
        densest: bool = True,
        pool: int = 8,
    ) -> Rect:
        """One window sampled uniformly from the ``pool`` most extreme.

        The neighborhood search uses this to diversify: always picking
        the single densest/sparsest window makes consecutive swap moves
        identical, so Algorithm 2's "generate a movement" samples from the
        top windows instead.
        """
        candidates = self.ranked_windows(pool, densest=densest)
        return candidates[int(rng.integers(0, len(candidates)))]
