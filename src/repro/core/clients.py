"""Mesh clients ("matrix of clients").

An instance contains "M client mesh nodes located in arbitrary points of
the considered area, defining a matrix of clients" (Section 2).  Client
positions are fixed for the lifetime of an instance; only routers move.

:class:`ClientSet` stores the clients both as value objects (for
readability and serialization) and as a dense ``(M, 2)`` numpy array (for
the vectorized coverage and density computations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.core.geometry import Point, Rect
from repro.core.grid import GridArea

__all__ = ["MeshClient", "ClientSet"]


@dataclass(frozen=True, slots=True)
class MeshClient:
    """A single mesh client at a fixed grid cell."""

    client_id: int
    cell: Point

    def __post_init__(self) -> None:
        if self.client_id < 0:
            raise ValueError(f"client_id must be non-negative, got {self.client_id}")


@dataclass(frozen=True)
class ClientSet:
    """An immutable, ordered collection of :class:`MeshClient`.

    Multiple clients may share a cell (real users cluster), so unlike
    router placements there is no distinctness constraint.
    """

    clients: tuple[MeshClient, ...]
    _positions: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for index, client in enumerate(self.clients):
            if client.client_id != index:
                raise ValueError(
                    f"client at position {index} has id {client.client_id}; "
                    "client ids must equal positions"
                )
        if self.clients:
            positions = np.array(
                [[client.cell.x, client.cell.y] for client in self.clients],
                dtype=float,
            )
        else:
            positions = np.zeros((0, 2), dtype=float)
        positions.setflags(write=False)
        object.__setattr__(self, "_positions", positions)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_points(cls, points: Sequence[Point], grid: GridArea | None = None) -> "ClientSet":
        """Build a client set from explicit cells.

        When ``grid`` is given every cell is validated against it.
        """
        cells = [Point(int(point[0]), int(point[1])) for point in points]
        if grid is not None:
            for cell in cells:
                grid.require_inside(cell)
        return cls(
            tuple(
                MeshClient(client_id=index, cell=cell)
                for index, cell in enumerate(cells)
            )
        )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.clients)

    def __iter__(self) -> Iterator[MeshClient]:
        return iter(self.clients)

    def __getitem__(self, index: int) -> MeshClient:
        return self.clients[index]

    # ------------------------------------------------------------------
    # Spatial queries
    # ------------------------------------------------------------------

    @property
    def positions(self) -> np.ndarray:
        """Read-only ``(M, 2)`` array of client coordinates."""
        return self._positions

    def count_in(self, rect: Rect) -> int:
        """Number of clients inside ``rect``."""
        if not self.clients:
            return 0
        xs = self._positions[:, 0]
        ys = self._positions[:, 1]
        inside = (
            (xs >= rect.x0) & (xs < rect.x1) & (ys >= rect.y0) & (ys < rect.y1)
        )
        return int(np.count_nonzero(inside))

    def cells(self) -> list[Point]:
        """All client cells, in id order (with duplicates preserved)."""
        return [client.cell for client in self.clients]
