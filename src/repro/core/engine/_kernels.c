/* Compiled kernels for the `engine="compiled"` evaluation tier.
 *
 * Built on demand by repro/core/engine/compiled.py with the system C
 * toolchain (cc/gcc/clang) into a cached shared library, then bound via
 * ctypes.  Every kernel reimplements one of the numpy engines' hottest
 * stacked paths with the *same float64 arithmetic in the same order*
 * (subtract, square, add, compare against a precomputed squared
 * threshold), so the boolean predicates — and therefore every integer
 * metric derived from them — are bit-identical to the dense/sparse
 * numpy paths.  The build deliberately passes -ffp-contract=off: a
 * fused multiply-add in `dx*dx + dy*dy` could round differently from
 * numpy's two-instruction sequence and break that contract.
 *
 * Component labels are canonical smallest-member ids, produced directly
 * by a union-find whose union keeps the smaller root: the root of every
 * set is always its minimum member, so the final find() pass *is* the
 * canonical labeling shared by the scalar, batch and sparse engines.
 *
 * Candidate-stack kernels parallelize over candidates with OpenMP when
 * the toolchain supports it (each candidate writes disjoint output
 * rows, so the results are deterministic regardless of thread count);
 * without OpenMP they degrade to plain serial loops.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>

#ifdef _OPENMP
#include <omp.h>
#endif

typedef int64_t i64;
typedef uint8_t u8;

/* ------------------------------------------------------------------ */
/* Runtime introspection                                               */
/* ------------------------------------------------------------------ */

i64 repro_has_openmp(void) {
#ifdef _OPENMP
    return 1;
#else
    return 0;
#endif
}

void repro_set_threads(i64 n) {
#ifdef _OPENMP
    if (n > 0) {
        omp_set_num_threads((int)n);
    }
#else
    (void)n;
#endif
}

i64 repro_get_max_threads(void) {
#ifdef _OPENMP
    return (i64)omp_get_max_threads();
#else
    return 1;
#endif
}

/* ------------------------------------------------------------------ */
/* Union-find with smallest-member roots                               */
/* ------------------------------------------------------------------ */

static i64 uf_find(i64 *parent, i64 x) {
    i64 root = x;
    while (parent[root] != root) {
        root = parent[root];
    }
    while (parent[x] != root) {
        i64 next = parent[x];
        parent[x] = root;
        x = next;
    }
    return root;
}

/* The smaller root wins, so every root is the minimum of its set and
 * find() yields canonical smallest-member labels without a remap. */
static void uf_union(i64 *parent, i64 a, i64 b) {
    i64 ra = uf_find(parent, a);
    i64 rb = uf_find(parent, b);
    if (ra == rb) {
        return;
    }
    if (ra < rb) {
        parent[rb] = ra;
    } else {
        parent[ra] = rb;
    }
}

/* Canonical component labels from parallel edge-endpoint arrays.  One
 * kernel for every graph size, replacing the numpy engines'
 * scipy-vs-propagation split in labels_from_edge_stack. */
void repro_label_components(
    i64 n_nodes, i64 n_edges, const i64 *rows, const i64 *cols, i64 *labels
) {
    for (i64 i = 0; i < n_nodes; i++) {
        labels[i] = i;
    }
    for (i64 e = 0; e < n_edges; e++) {
        uf_union(labels, rows[e], cols[e]);
    }
    for (i64 i = 0; i < n_nodes; i++) {
        labels[i] = uf_find(labels, i);
    }
}

/* ------------------------------------------------------------------ */
/* Shared per-candidate metric assembly                                */
/* ------------------------------------------------------------------ */

/* counts/giant/components/mask from a finished union-find; counts is
 * caller scratch of size N.  Tie-break: first maximum over canonical
 * label index == smallest canonical label among the largest components,
 * the rule every numpy path shares. */
static void finish_components(
    i64 *parent, i64 *counts, i64 n,
    i64 *giant_size, i64 *n_components, u8 *giant_mask
) {
    for (i64 i = 0; i < n; i++) {
        counts[i] = 0;
    }
    for (i64 i = 0; i < n; i++) {
        counts[uf_find(parent, i)]++;
    }
    i64 best = 0;
    i64 giant = 0;
    i64 comps = 0;
    for (i64 i = 0; i < n; i++) {
        if (counts[i] > 0) {
            comps++;
            if (counts[i] > best) {
                best = counts[i];
                giant = i;
            }
        }
    }
    for (i64 i = 0; i < n; i++) {
        giant_mask[i] = (u8)(parent[i] == giant);
    }
    *giant_size = best;
    *n_components = comps;
}

/* ------------------------------------------------------------------ */
/* Dense-form stacked measurement                                      */
/* ------------------------------------------------------------------ */

/* Fused pairwise-distance + link-range test, component labeling and
 * covered-client counting for a (K, N, 2) candidate stack.  No (K,N,N)
 * adjacency or (K,M,N) coverage tensor is ever materialized; the
 * coverage scan early-exits on the first covering router per client. */
void repro_measure_stack_dense(
    const double *positions,  /* K*N*2 */
    i64 n_candidates, i64 n_routers,
    const double *range2,     /* N*N squared link ranges */
    const double *clients,    /* M*2 */
    i64 n_clients,
    const double *radii2,     /* N squared coverage radii */
    i64 giant_only,
    i64 *giant_sizes,         /* K */
    i64 *covered,             /* K */
    i64 *n_components,        /* K */
    i64 *n_links,             /* K */
    u8 *giant_masks           /* K*N */
) {
    const i64 n = n_routers;
    const i64 m = n_clients;
#ifdef _OPENMP
#pragma omp parallel
#endif
    {
        i64 *parent = (i64 *)malloc((size_t)(n > 0 ? n : 1) * sizeof(i64));
        i64 *counts = (i64 *)malloc((size_t)(n > 0 ? n : 1) * sizeof(i64));
#ifdef _OPENMP
#pragma omp for schedule(dynamic)
#endif
        for (i64 k = 0; k < n_candidates; k++) {
            const double *pos = positions + k * n * 2;
            u8 *gmask = giant_masks + k * n;
            for (i64 i = 0; i < n; i++) {
                parent[i] = i;
            }
            i64 links = 0;
            for (i64 i = 0; i < n; i++) {
                const double xi = pos[2 * i];
                const double yi = pos[2 * i + 1];
                const double *row2 = range2 + i * n;
                for (i64 j = i + 1; j < n; j++) {
                    const double dx = xi - pos[2 * j];
                    const double dy = yi - pos[2 * j + 1];
                    if (dx * dx + dy * dy <= row2[j]) {
                        links++;
                        uf_union(parent, i, j);
                    }
                }
            }
            finish_components(
                parent, counts, n,
                &giant_sizes[k], &n_components[k], gmask
            );
            n_links[k] = links;
            i64 cov = 0;
            for (i64 c = 0; c < m; c++) {
                const double cx = clients[2 * c];
                const double cy = clients[2 * c + 1];
                for (i64 j = 0; j < n; j++) {
                    if (giant_only && !gmask[j]) {
                        continue;
                    }
                    const double dx = cx - pos[2 * j];
                    const double dy = cy - pos[2 * j + 1];
                    if (dx * dx + dy * dy <= radii2[j]) {
                        cov++;
                        break;
                    }
                }
            }
            covered[k] = cov;
        }
        free(parent);
        free(counts);
    }
}

/* ------------------------------------------------------------------ */
/* Sparse-form (spatial grid) stacked measurement                      */
/* ------------------------------------------------------------------ */

/* Link range under the rule codes matching repro.core.radio.LinkRule:
 * 0 = OVERLAP (a+b), 1 = BIDIRECTIONAL (min), 2 = UNIDIRECTIONAL (max).
 * Identical float64 arithmetic to LinkRule.range_pairs. */
static inline double link_reach(i64 rule, double ra, double rb) {
    if (rule == 0) {
        return ra + rb;
    }
    if (rule == 1) {
        return ra < rb ? ra : rb;
    }
    return ra > rb ? ra : rb;
}

/* Counting-sort `count` points into (nbx, nby) bins of width `cell`.
 * Coordinates are grid cells (non-negative), so the bin of a point is
 * floor(coord / cell) exactly like the numpy SpatialGridIndex; points
 * past the precomputed grid extent clamp to the last bin, which only
 * widens the candidate set a prune is allowed to keep.  Fills bin_of
 * (count), start (nbins+1 slice offsets) and order (count point ids
 * grouped by bin, ascending within each bin). */
static void bin_points(
    const double *pts, i64 count, double cell, i64 nbx, i64 nby,
    i64 *bin_of, i64 *start, i64 *cursor, i64 *order
) {
    const i64 nbins = nbx * nby;
    for (i64 b = 0; b <= nbins; b++) {
        start[b] = 0;
    }
    for (i64 i = 0; i < count; i++) {
        i64 bx = (i64)floor(pts[2 * i] / cell);
        i64 by = (i64)floor(pts[2 * i + 1] / cell);
        if (bx >= nbx) bx = nbx - 1;
        if (by >= nby) by = nby - 1;
        if (bx < 0) bx = 0;
        if (by < 0) by = 0;
        const i64 b = bx * nby + by;
        bin_of[i] = b;
        start[b + 1]++;
    }
    for (i64 b = 0; b < nbins; b++) {
        start[b + 1] += start[b];
    }
    for (i64 b = 0; b <= nbins; b++) {
        cursor[b] = start[b];
    }
    for (i64 i = 0; i < count; i++) {
        order[cursor[bin_of[i]]++] = i;
    }
}

/* Grid-pruned fused measurement for city-scale stacks: per candidate,
 * routers are binned twice (link-range cells for edges, coverage-radius
 * cells for client queries) and only same-or-adjacent-bin pairs are
 * tested with the exact predicates.  Binning is a conservative prune —
 * bins two apart along an axis are separated by more than one cell
 * width, which is at least the relevant reach — so the surviving edge
 * set and coverage counts equal the dense form's bit for bit. */
void repro_measure_stack_sparse(
    const double *positions,  /* K*N*2 */
    i64 n_candidates, i64 n_routers,
    const double *radii,      /* N */
    i64 link_rule,
    double link_cell, i64 link_nbx, i64 link_nby,
    const double *clients,    /* M*2 */
    i64 n_clients,
    const double *radii2,     /* N */
    double cover_cell, i64 cov_nbx, i64 cov_nby,
    i64 giant_only,
    i64 *giant_sizes,
    i64 *covered,
    i64 *n_components,
    i64 *n_links,
    u8 *giant_masks
) {
    const i64 n = n_routers;
    const i64 m = n_clients;
    const i64 link_bins = link_nbx * link_nby;
    const i64 cov_bins = cov_nbx * cov_nby;
    const i64 scratch_bins = (link_bins > cov_bins ? link_bins : cov_bins) + 1;
#ifdef _OPENMP
#pragma omp parallel
#endif
    {
        i64 *parent = (i64 *)malloc((size_t)(n > 0 ? n : 1) * sizeof(i64));
        i64 *counts = (i64 *)malloc((size_t)(n > 0 ? n : 1) * sizeof(i64));
        i64 *bin_of = (i64 *)malloc((size_t)(n > 0 ? n : 1) * sizeof(i64));
        i64 *order = (i64 *)malloc((size_t)(n > 0 ? n : 1) * sizeof(i64));
        i64 *start = (i64 *)malloc((size_t)(scratch_bins + 1) * sizeof(i64));
        i64 *cursor = (i64 *)malloc((size_t)(scratch_bins + 1) * sizeof(i64));
#ifdef _OPENMP
#pragma omp for schedule(dynamic)
#endif
        for (i64 k = 0; k < n_candidates; k++) {
            const double *pos = positions + k * n * 2;
            u8 *gmask = giant_masks + k * n;
            for (i64 i = 0; i < n; i++) {
                parent[i] = i;
            }
            /* Edges from the link-cell grid. */
            bin_points(pos, n, link_cell, link_nbx, link_nby,
                        bin_of, start, cursor, order);
            i64 links = 0;
            for (i64 i = 0; i < n; i++) {
                const double xi = pos[2 * i];
                const double yi = pos[2 * i + 1];
                const double ri = radii[i];
                const i64 bx = bin_of[i] / link_nby;
                const i64 by = bin_of[i] % link_nby;
                for (i64 ox = -1; ox <= 1; ox++) {
                    const i64 tx = bx + ox;
                    if (tx < 0 || tx >= link_nbx) {
                        continue;
                    }
                    for (i64 oy = -1; oy <= 1; oy++) {
                        const i64 ty = by + oy;
                        if (ty < 0 || ty >= link_nby) {
                            continue;
                        }
                        const i64 b = tx * link_nby + ty;
                        for (i64 s = start[b]; s < start[b + 1]; s++) {
                            const i64 j = order[s];
                            if (j <= i) {
                                continue;
                            }
                            const double dx = xi - pos[2 * j];
                            const double dy = yi - pos[2 * j + 1];
                            const double reach =
                                link_reach(link_rule, ri, radii[j]);
                            if (dx * dx + dy * dy <= reach * reach) {
                                links++;
                                uf_union(parent, i, j);
                            }
                        }
                    }
                }
            }
            finish_components(
                parent, counts, n,
                &giant_sizes[k], &n_components[k], gmask
            );
            n_links[k] = links;
            /* Coverage from the coverage-cell grid of the routers. */
            i64 cov = 0;
            if (m > 0 && n > 0) {
                bin_points(pos, n, cover_cell, cov_nbx, cov_nby,
                            bin_of, start, cursor, order);
                for (i64 c = 0; c < m; c++) {
                    const double cx = clients[2 * c];
                    const double cy = clients[2 * c + 1];
                    i64 cbx = (i64)floor(cx / cover_cell);
                    i64 cby = (i64)floor(cy / cover_cell);
                    if (cbx >= cov_nbx) cbx = cov_nbx - 1;
                    if (cby >= cov_nby) cby = cov_nby - 1;
                    int hit = 0;
                    for (i64 ox = -1; ox <= 1 && !hit; ox++) {
                        const i64 tx = cbx + ox;
                        if (tx < 0 || tx >= cov_nbx) {
                            continue;
                        }
                        for (i64 oy = -1; oy <= 1 && !hit; oy++) {
                            const i64 ty = cby + oy;
                            if (ty < 0 || ty >= cov_nby) {
                                continue;
                            }
                            const i64 b = tx * cov_nby + ty;
                            for (i64 s = start[b]; s < start[b + 1]; s++) {
                                const i64 j = order[s];
                                if (giant_only && !gmask[j]) {
                                    continue;
                                }
                                const double dx = cx - pos[2 * j];
                                const double dy = cy - pos[2 * j + 1];
                                if (dx * dx + dy * dy <= radii2[j]) {
                                    hit = 1;
                                    break;
                                }
                            }
                        }
                    }
                    cov += hit;
                }
            }
            covered[k] = cov;
        }
        free(parent);
        free(counts);
        free(bin_of);
        free(order);
        free(start);
        free(cursor);
    }
}

/* ------------------------------------------------------------------ */
/* Incremental (delta) kernels                                         */
/* ------------------------------------------------------------------ */

/* Metrics from an incumbent's dense boolean matrices — the
 * DeltaEvaluator's per-propose measurement with the edge extraction,
 * labeling and masked coverage count fused into one pass. */
void repro_measure_dense_matrices(
    const u8 *adjacency,  /* N*N, symmetric, zero diagonal */
    const u8 *coverage,   /* M*N */
    i64 n_routers, i64 n_clients, i64 giant_only,
    i64 *giant_size, i64 *covered, i64 *n_components, i64 *n_links,
    u8 *giant_mask        /* N */
) {
    const i64 n = n_routers;
    const i64 m = n_clients;
    i64 *parent = (i64 *)malloc((size_t)(n > 0 ? n : 1) * sizeof(i64));
    i64 *counts = (i64 *)malloc((size_t)(n > 0 ? n : 1) * sizeof(i64));
    for (i64 i = 0; i < n; i++) {
        parent[i] = i;
    }
    i64 links = 0;
    for (i64 i = 0; i < n; i++) {
        const u8 *row = adjacency + i * n;
        for (i64 j = i + 1; j < n; j++) {
            if (row[j]) {
                links++;
                uf_union(parent, i, j);
            }
        }
    }
    finish_components(parent, counts, n, giant_size, n_components, giant_mask);
    *n_links = links;
    i64 cov = 0;
    for (i64 c = 0; c < m; c++) {
        const u8 *row = coverage + c * n;
        for (i64 j = 0; j < n; j++) {
            if (row[j] && (!giant_only || giant_mask[j])) {
                cov++;
                break;
            }
        }
    }
    *covered = cov;
    free(parent);
    free(counts);
}

/* Moved-router adjacency rows and coverage columns for a whole phase:
 * P (candidate, mover) pairs, each tested against the incumbent
 * positions and the client set — the StackedDeltaEngine's two hottest
 * broadcasts fused into one parallel pass. */
void repro_delta_rows_cols(
    const double *new_xy,        /* P*2 */
    const i64 *router_of_pair,   /* P */
    i64 n_pairs,
    const double *positions,     /* N*2 incumbent */
    i64 n_routers,
    const double *range2,        /* N*N */
    const double *clients,       /* M*2 */
    i64 n_clients,
    const double *radii2,        /* N */
    u8 *rows_new,                /* P*N */
    u8 *cols_new                 /* P*M */
) {
    const i64 n = n_routers;
    const i64 m = n_clients;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (i64 p = 0; p < n_pairs; p++) {
        const i64 r = router_of_pair[p];
        const double nx = new_xy[2 * p];
        const double ny = new_xy[2 * p + 1];
        const double *row2 = range2 + r * n;
        u8 *row = rows_new + p * n;
        for (i64 j = 0; j < n; j++) {
            const double dx = nx - positions[2 * j];
            const double dy = ny - positions[2 * j + 1];
            row[j] = (u8)(dx * dx + dy * dy <= row2[j]);
        }
        row[r] = 0;
        u8 *col = cols_new + p * m;
        const double rr2 = radii2[r];
        for (i64 c = 0; c < m; c++) {
            const double dx = nx - clients[2 * c];
            const double dy = ny - clients[2 * c + 1];
            col[c] = (u8)(dx * dx + dy * dy <= rr2);
        }
    }
}

/* Giant-only covered-client counts for one chain's candidate segment,
 * replacing the float32 sgemm + per-mover corrections: per candidate,
 * count each client's covering giant routers from the incumbent's
 * client-major CSR hit lists, then exchange each giant mover's old
 * coverage column for its new one.  All-integer, hence exact. */
void repro_giant_covered(
    const i64 *client_ptr,   /* M+1 CSR offsets */
    const i64 *client_hit,   /* covering router ids, client-major */
    i64 n_clients, i64 n_routers, i64 n_candidates,
    const u8 *giant_masks,   /* C*N, segment-local */
    const i64 *pair_cand,    /* P, segment-local candidate index */
    const i64 *pair_router,  /* P */
    i64 n_pairs,
    const u8 *cols_new,      /* P*M new coverage columns */
    const u8 *cov_old,       /* M*N incumbent coverage matrix */
    i64 *covered             /* C */
) {
    const i64 n = n_routers;
    const i64 m = n_clients;
#ifdef _OPENMP
#pragma omp parallel
#endif
    {
        int32_t *cnt = (int32_t *)malloc(
            (size_t)(m > 0 ? m : 1) * sizeof(int32_t)
        );
#ifdef _OPENMP
#pragma omp for schedule(dynamic)
#endif
        for (i64 c = 0; c < n_candidates; c++) {
            const u8 *g = giant_masks + c * n;
            for (i64 i = 0; i < m; i++) {
                int32_t hits = 0;
                for (i64 s = client_ptr[i]; s < client_ptr[i + 1]; s++) {
                    hits += (int32_t)g[client_hit[s]];
                }
                cnt[i] = hits;
            }
            for (i64 p = 0; p < n_pairs; p++) {
                if (pair_cand[p] != c) {
                    continue;
                }
                const i64 r = pair_router[p];
                if (!g[r]) {
                    continue;
                }
                const u8 *newcol = cols_new + p * m;
                const u8 *oldcol = cov_old + r;
                for (i64 i = 0; i < m; i++) {
                    cnt[i] += (int32_t)newcol[i] - (int32_t)oldcol[i * n];
                }
            }
            i64 cov = 0;
            for (i64 i = 0; i < m; i++) {
                cov += (cnt[i] > 0);
            }
            covered[c] = cov;
        }
        free(cnt);
    }
}

/* Bin-pair candidate form of the fused link test: filter explicit
 * candidate pairs with the exact predicate (the sparse delta path's
 * link_hits).  Writes a keep mask instead of compacting so the caller's
 * numpy-side indexing semantics stay unchanged. */
void repro_filter_pairs(
    const double *positions,  /* N*2 */
    const i64 *rows, const i64 *cols, i64 n_pairs,
    const double *radii, i64 link_rule,
    u8 *keep
) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (i64 p = 0; p < n_pairs; p++) {
        const i64 i = rows[p];
        const i64 j = cols[p];
        const double dx = positions[2 * i] - positions[2 * j];
        const double dy = positions[2 * i + 1] - positions[2 * j + 1];
        const double reach = link_reach(link_rule, radii[i], radii[j]);
        keep[p] = (u8)(dx * dx + dy * dy <= reach * reach);
    }
}

/* Upper-triangle one-way edge extraction from a dense u8 adjacency
 * matrix — the incumbent-commit refresh of a chain cache's edge
 * arrays.  The caller sizes rows/cols from the matrix popcount (each
 * undirected link appears twice), so the fill is a single serial
 * byte scan in the same (row-major, i < j) order np.nonzero emits. */
void repro_dense_edges(
    const u8 *adjacency,  /* N*N */
    i64 n_routers,
    i64 *rows, i64 *cols  /* n_links each */
) {
    i64 w = 0;
    for (i64 i = 0; i < n_routers; i++) {
        const u8 *row = adjacency + i * n_routers;
        for (i64 j = i + 1; j < n_routers; j++) {
            if (row[j]) {
                rows[w] = i;
                cols[w] = j;
                w++;
            }
        }
    }
}

/* Incremental client-major CSR rewrite for one moved router: every
 * occurrence of `router` is dropped and re-inserted (in ascending
 * position) wherever newcol says the moved router now covers the
 * client.  O(nnz) instead of the O(M*N) full-matrix rebuild, and the
 * output is bit-identical to rebuilding from the patched matrix.  The
 * caller sizes new_hit for the worst case (old nnz + one insert per
 * client) and trims to new_ptr[M]. */
void repro_csr_update_column(
    const i64 *ptr, const i64 *hit,  /* M+1 / ptr[M] incumbent lists */
    i64 n_clients,
    i64 router,
    const u8 *newcol,                /* M: does `router` now cover c? */
    i64 *new_ptr, i64 *new_hit
) {
    i64 w = 0;
    new_ptr[0] = 0;
    for (i64 c = 0; c < n_clients; c++) {
        const int want = (int)newcol[c];
        int placed = 0;
        for (i64 s = ptr[c]; s < ptr[c + 1]; s++) {
            const i64 j = hit[s];
            if (j == router) {
                continue;
            }
            if (want && !placed && j > router) {
                new_hit[w++] = router;
                placed = 1;
            }
            new_hit[w++] = j;
        }
        if (want && !placed) {
            new_hit[w++] = router;
        }
        new_ptr[c + 1] = w;
    }
}

/* Client-major CSR fill from a dense u8 coverage matrix.  ptr already
 * holds the exclusive row offsets (cumsum of per-client hit counts),
 * so every client writes its own disjoint slice — ascending router
 * order, matching np.nonzero's row-major emission bit for bit. */
void repro_client_csr_fill(
    const u8 *coverage,  /* M*N */
    i64 n_clients, i64 n_routers,
    const i64 *ptr,      /* M+1 */
    i64 *hit             /* ptr[M] */
) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (i64 c = 0; c < n_clients; c++) {
        i64 w = ptr[c];
        const u8 *row = coverage + c * n_routers;
        for (i64 j = 0; j < n_routers; j++) {
            if (row[j]) {
                hit[w++] = j;
            }
        }
    }
}
