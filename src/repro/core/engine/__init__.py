"""The batched + incremental evaluation engine.

Three evaluation paths share one contract — bit-identical
:class:`~repro.core.fitness.NetworkMetrics`, fitness and giant-component
masks for the same placement:

* **Scalar** — :class:`~repro.core.evaluation.Evaluator`.  The reference
  implementation; one placement per call.  Use it for one-off
  measurements and as the ground truth in tests.
* **Batch** — :class:`BatchEvaluator` (and the pure
  :func:`evaluate_batch`).  Stacks ``K`` candidate placements into
  ``(K, N, 2)`` tensors and evaluates them in one vectorized pass.  Use
  it whenever an algorithm holds a candidate *set*: a sampled
  neighborhood phase, a GA offspring generation.
* **Delta** — :class:`DeltaEvaluator`.  Caches the incumbent's state and
  recomputes only what a move touches.  Use it for one-move-per-step
  loops (simulated annealing, tabu search).
* **Sparse** — :class:`SparseEngine` (and the pure
  :func:`evaluate_sparse`).  Bins positions into a spatial grid and
  generates only neighbor-bin candidate pairs, replacing the
  ``O(N^2 + M * N)`` matrices with ``O(N k + M k)`` edge and hit
  arrays.  Use it — normally via the automatic dispatch — for
  city-scale instances the dense tensors cannot hold.
* **Stacked** — :class:`StackedEngine` (and the pure
  :func:`measure_stack`).  Array-level measurement of whole multi-chain
  candidate stacks: metric *arrays* instead of per-candidate
  ``Evaluation`` objects, with dense/sparse dispatch.  Use it when a
  portfolio of searches advances in lockstep
  (:mod:`repro.neighborhood.multichain`) and only winning rows are ever
  materialized.
* **Compiled** — :class:`CompiledEngine`
  (:mod:`repro.core.engine.compiled`).  The hottest stacked and delta
  paths as C kernels, built on demand with the system toolchain and
  bound via ctypes.  Bit-identical to the numpy engines; purely a
  performance tier.  ``engine="auto"`` promotes to it whenever
  :func:`compiled_available` reports the kernels built, and falls back
  silently otherwise, so the tier never becomes a dependency.

The scalar, batch and delta evaluators all take an ``engine`` argument
(``"auto"`` default): :func:`select_engine` picks dense at paper scale
and sparse above a size/density threshold (see
:mod:`repro.core.engine.dispatch`), and the compiled tier reuses the
same heuristic to pick its kernel form.  All paths count evaluations
identically, so the machine-independent search-cost accounting of the
experiments is unaffected by which engine a search runs on.
"""

from repro.core.engine.batch import (
    BatchEvaluator,
    StackedMeasurement,
    batch_adjacency,
    batch_coverage,
    evaluate_batch,
    measure_stack,
)
from repro.core.engine.components import (
    batch_labels_from_adjacency,
    labels_from_adjacency,
    labels_from_edges,
    structure_from_labels,
)
from repro.core.engine.compiled import CompiledEngine
from repro.core.engine.compiled import is_available as compiled_available
from repro.core.engine.delta import DeltaEvaluator
from repro.core.engine.dispatch import ENGINE_TIERS, resolve_engine, select_engine
from repro.core.engine.sparse import (
    SparseEngine,
    SpatialGridIndex,
    evaluate_sparse,
    sparse_edges,
)
from repro.core.engine.stacked import StackedEngine

__all__ = [
    "BatchEvaluator",
    "CompiledEngine",
    "DeltaEvaluator",
    "ENGINE_TIERS",
    "compiled_available",
    "SparseEngine",
    "SpatialGridIndex",
    "StackedEngine",
    "StackedMeasurement",
    "batch_adjacency",
    "batch_coverage",
    "evaluate_batch",
    "evaluate_sparse",
    "measure_stack",
    "sparse_edges",
    "batch_labels_from_adjacency",
    "labels_from_adjacency",
    "labels_from_edges",
    "structure_from_labels",
    "resolve_engine",
    "select_engine",
]
