"""The batched + incremental evaluation engine.

Three evaluation paths share one contract — bit-identical
:class:`~repro.core.fitness.NetworkMetrics`, fitness and giant-component
masks for the same placement:

* **Scalar** — :class:`~repro.core.evaluation.Evaluator`.  The reference
  implementation; one placement per call.  Use it for one-off
  measurements and as the ground truth in tests.
* **Batch** — :class:`BatchEvaluator` (and the pure
  :func:`evaluate_batch`).  Stacks ``K`` candidate placements into
  ``(K, N, 2)`` tensors and evaluates them in one vectorized pass.  Use
  it whenever an algorithm holds a candidate *set*: a sampled
  neighborhood phase, a GA offspring generation.
* **Delta** — :class:`DeltaEvaluator`.  Caches the incumbent's adjacency
  and coverage matrices and recomputes only the rows/columns a move
  touches.  Use it for one-move-per-step loops (simulated annealing,
  tabu search).

All paths count evaluations identically, so the machine-independent
search-cost accounting of the experiments is unaffected by which engine
a search runs on.
"""

from repro.core.engine.batch import (
    BatchEvaluator,
    batch_adjacency,
    batch_coverage,
    evaluate_batch,
)
from repro.core.engine.components import (
    batch_labels_from_adjacency,
    labels_from_adjacency,
    labels_from_edges,
    structure_from_labels,
)
from repro.core.engine.delta import DeltaEvaluator

__all__ = [
    "BatchEvaluator",
    "DeltaEvaluator",
    "batch_adjacency",
    "batch_coverage",
    "evaluate_batch",
    "batch_labels_from_adjacency",
    "labels_from_adjacency",
    "labels_from_edges",
    "structure_from_labels",
]
