"""Automatic engine selection.

Every evaluator accepts an ``engine`` argument: ``"dense"`` forces the
matrix-based paths of PR 1, ``"sparse"`` forces the spatial-grid path,
``"compiled"`` forces the C-kernel tier of
:mod:`repro.core.engine.compiled` (raising when no toolchain can build
it), and the default ``"auto"`` picks per problem instance — promoting
to the compiled tier whenever it is available and otherwise falling
back to the numpy heuristic below, with identical results either way.

:func:`select_engine` is the numpy-layout heuristic (it also decides
which *kernel form* the compiled tier runs), deliberately simple and
documented so runs stay explainable:

* below :data:`DENSE_CELL_BUDGET` matrix cells (``N^2 + M * N``) the
  dense tensors are small and their flat vectorized passes win — every
  paper-scale instance lands here;
* when one 3x3 bin ring tiles a large fraction of the deployment area,
  binning prunes nothing (the "radio covers the whole grid" regime), so
  dense also wins;
* otherwise the instance is city-scale and sparse: candidate pairs from
  neighbor bins beat materializing ``O(N^2 + M * N)`` matrices both in
  time and — decisively — in peak memory.

All engines produce bit-identical results, so dispatch is purely a
performance decision and never changes an experiment's outcome.
"""

from __future__ import annotations

from repro.core.problem import ProblemInstance

__all__ = [
    "ENGINE_AUTO",
    "ENGINE_DENSE",
    "ENGINE_SPARSE",
    "ENGINE_COMPILED",
    "ENGINE_TIERS",
    "DENSE_CELL_BUDGET",
    "select_engine",
    "resolve_engine",
]

ENGINE_AUTO = "auto"
ENGINE_DENSE = "dense"
ENGINE_SPARSE = "sparse"
ENGINE_COMPILED = "compiled"

#: Every valid ``engine`` argument, in documentation order.  The single
#: source the ``resolve_engine`` error message and the CLI ``--engine``
#: choices are both derived from, so adding a tier cannot skew them.
ENGINE_TIERS = (ENGINE_AUTO, ENGINE_DENSE, ENGINE_SPARSE, ENGINE_COMPILED)

#: Up to this many matrix cells (``N^2 + M * N``) the dense engines are
#: both fast and small; the paper frame (64 routers, 192 clients) is
#: ~16k cells, the largest paper-adjacent workloads a few million.
DENSE_CELL_BUDGET = 1 << 22

#: Binning must prune: if one 3x3 bin ring covers this fraction of the
#: deployment area or more, the sparse path degenerates to dense work
#: with extra indexing overhead.
_RING_AREA_FRACTION = 0.5


def select_engine(problem: ProblemInstance) -> str:
    """``"dense"`` or ``"sparse"``, by instance size and radio density."""
    n = problem.n_routers
    m = problem.n_clients
    if n * n + m * n <= DENSE_CELL_BUDGET:
        return ENGINE_DENSE
    from repro.core.engine.sparse import link_cell_size

    cell = link_cell_size(problem.fleet.radii, problem.link_rule)
    area = float(problem.grid.width) * float(problem.grid.height)
    if 9.0 * cell * cell >= _RING_AREA_FRACTION * area:
        return ENGINE_DENSE
    return ENGINE_SPARSE


def resolve_engine(problem: ProblemInstance, engine: str) -> str:
    """Validate an ``engine`` argument and resolve ``"auto"``.

    ``"auto"`` promotes to the compiled tier when its kernels are
    available (see :func:`repro.core.engine.compiled.is_available`) and
    falls back to :func:`select_engine` when they are not — a *failed
    kernel build* additionally raises a one-time ``RuntimeWarning``
    naming the build error (full text via
    :func:`repro.core.engine.compiled.build_error`), because the
    fallback is result-identical but not speed-identical;
    ``"compiled"`` demands the tier and raises a ``RuntimeError``
    explaining the failure when it cannot run.
    """
    if engine == ENGINE_AUTO:
        from repro.core.engine import compiled

        if compiled.is_available():
            return ENGINE_COMPILED
        return select_engine(problem)
    if engine not in ENGINE_TIERS:
        choices = ", ".join(repr(tier) for tier in ENGINE_TIERS)
        raise ValueError(f"engine must be one of {choices}, got {engine!r}")
    if engine == ENGINE_COMPILED:
        from repro.core.engine import compiled

        compiled.require()
    return engine
