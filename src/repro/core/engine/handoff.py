"""Incumbent-cache handoff between optimization runs.

Dynamic scenarios re-solve a *perturbed* instance starting from the
previous step's best placement (see :mod:`repro.scenario`).  A cold
:meth:`~repro.core.engine.delta.DeltaEvaluator.reset` then rebuilds the
full adjacency and coverage state of a placement the previous run
already measured — wasted work whenever the perturbation left part of
that state valid.  Client drift, for example, moves only clients: the
router-to-router adjacency of the warm-start placement is *identical*
across the step boundary.

:class:`IncumbentCache` is the neutral, engine-agnostic snapshot that
crosses run boundaries: the incumbent's positions plus the dense
matrices or sparse arrays the delta engine keeps, together with the
ingredients they were derived from (radii, link rule, client positions)
so the receiving engine can check validity piece by piece.  A cache is
*advisory* — any stale piece is simply rebuilt, so reuse never changes
results, only cost.

Produced by :meth:`DeltaEvaluator.export_cache`, consumed by
:meth:`DeltaEvaluator.reset`; the search layers thread it through
:class:`~repro.neighborhood.search.SearchResult` and the solver layer
through :class:`~repro.solvers.base.SolveResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.radio import LinkRule

__all__ = ["IncumbentCache"]


@dataclass(frozen=True)
class IncumbentCache:
    """One run's final incumbent state, packaged for the next run.

    ``layout`` names the cache shape (``"dense"`` matrices or
    ``"sparse"`` edge/hit arrays); the derivation inputs (``positions``,
    ``radii``, ``link_rule``, ``client_positions``) travel along so the
    consumer can decide which pieces still hold on *its* problem.
    """

    layout: str
    positions: np.ndarray
    radii: np.ndarray
    link_rule: LinkRule
    client_positions: np.ndarray
    # Dense payload.
    adjacency: "np.ndarray | None" = None
    coverage: "np.ndarray | None" = None
    # Sparse payload.
    edge_rows: "np.ndarray | None" = None
    edge_cols: "np.ndarray | None" = None
    cov_router: "np.ndarray | None" = None
    cov_client: "np.ndarray | None" = None

    def __post_init__(self) -> None:
        if self.layout not in ("dense", "sparse"):
            raise ValueError(f"unknown cache layout {self.layout!r}")

    # ------------------------------------------------------------------
    # Validity predicates (the consumer's problem may differ)
    # ------------------------------------------------------------------

    def network_valid_for(
        self,
        positions: np.ndarray,
        radii: np.ndarray,
        link_rule: LinkRule,
    ) -> bool:
        """Whether the cached adjacency/edges describe this network.

        The router graph depends only on positions, radii and the link
        predicate — client churn or drift cannot invalidate it.
        """
        return (
            self.link_rule is link_rule
            and self.positions.shape == positions.shape
            and np.array_equal(self.positions, positions)
            and np.array_equal(self.radii, radii)
        )

    def coverage_valid_for(
        self,
        positions: np.ndarray,
        radii: np.ndarray,
        client_positions: np.ndarray,
    ) -> bool:
        """Whether the cached coverage state describes these clients."""
        return (
            self.positions.shape == positions.shape
            and np.array_equal(self.positions, positions)
            and np.array_equal(self.radii, radii)
            and self.client_positions.shape == client_positions.shape
            and np.array_equal(self.client_positions, client_positions)
        )
