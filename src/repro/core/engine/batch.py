"""Batched placement evaluation.

One :class:`BatchEvaluator` call measures ``K`` candidate placements in
a single shot: positions are stacked into a ``(K, N, 2)`` tensor,
pairwise distances and link-rule range comparisons are broadcast over
the whole stack, connected components are labeled for all candidates in
one propagation pass and client coverage is a single ``(K, M, N)``
comparison.  The per-candidate results are bit-identical to the scalar
:class:`~repro.core.evaluation.Evaluator` — the parity test suite
asserts it — so search algorithms can batch their candidate sets freely
without perturbing experiment results.

Grid coordinates are small integers, so the hot comparisons run in
``int32``: squared cell distances are exact in both ``int32`` and
``float64``, and ``d2 <= r2`` with integer ``d2`` is equivalent to
``d2 <= floor(r2)``, which turns the float threshold comparison into a
pure integer one with identical booleans.  Non-integral positions (not
produced by :class:`~repro.core.solution.Placement`, but allowed through
the public helpers) fall back to the float64 reference formulas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.engine.components import labels_from_edges
from repro.core.engine.dispatch import resolve_engine
from repro.core.evaluation import Evaluation
from repro.core.fitness import FitnessFunction, NetworkMetrics, WeightedSumFitness
from repro.core.problem import ProblemInstance
from repro.core.radio import CoverageRule, LinkRule
from repro.core.solution import Placement

__all__ = [
    "DEFAULT_MAX_CHUNK",
    "StackedMeasurement",
    "batch_adjacency",
    "batch_coverage",
    "evaluate_batch",
    "measure_stack",
    "BatchEvaluator",
]

#: Default candidate-count bound per vectorized pass: a batch of K
#: candidates allocates O(K * N^2 + K * M * N) intermediates, so larger
#: sets are evaluated in chunks of this size.
DEFAULT_MAX_CHUNK = 256

#: Coordinates of magnitude below this keep squared distances inside
#: int32 (2 * 32767^2 = 2147352578 < 2^31 - 1).
_INT_COORD_LIMIT = 16384

#: Coordinates in [0, 128) keep squared distances inside int16 (max
#: 2 * 127^2 = 32258 < 2^15), halving memory traffic again.  The range
#: must be one-sided: mixed-sign coordinates can differ by up to twice
#: the magnitude bound, whose square would overflow int16.
_INT16_COORD_LIMIT = 128


def batch_adjacency(
    positions: np.ndarray, radii: np.ndarray, link_rule: LinkRule
) -> np.ndarray:
    """Boolean ``(K, N, N)`` adjacency stack for ``(K, N, 2)`` positions.

    Elementwise identical to
    :func:`repro.core.network.adjacency_matrix` applied per candidate
    (same per-axis broadcasting, same squared-range comparison).
    """
    if positions.ndim != 3 or positions.shape[2] != 2:
        raise ValueError(f"positions must be (K, N, 2), got {positions.shape}")
    n = positions.shape[1]
    if radii.shape != (n,):
        raise ValueError(f"radii shape {radii.shape} does not match {n} routers")
    link_range = link_rule.range_matrix(radii)
    range_squared = link_range * link_range
    int_dtype = _int_dtype(positions)
    if int_dtype is not None:
        adjacency = _pairwise_within(positions.astype(int_dtype), range_squared)
    else:
        x = positions[:, :, 0]
        y = positions[:, :, 1]
        dx = x[:, :, np.newaxis] - x[:, np.newaxis, :]
        dy = y[:, :, np.newaxis] - y[:, np.newaxis, :]
        adjacency = dx * dx + dy * dy <= range_squared
    diagonal = np.arange(n)
    adjacency[:, diagonal, diagonal] = False
    return adjacency


def batch_coverage(
    client_positions: np.ndarray, positions: np.ndarray, radii: np.ndarray
) -> np.ndarray:
    """Boolean ``(K, M, N)`` coverage stack: client within router range.

    Elementwise identical to
    :func:`repro.core.coverage.coverage_matrix` applied per candidate.
    """
    n_candidates = positions.shape[0]
    if client_positions.size == 0:
        return np.zeros((n_candidates, 0, positions.shape[1]), dtype=bool)
    radii_squared = radii * radii
    position_dtype = _int_dtype(positions)
    client_dtype = _int_dtype(client_positions)
    if position_dtype is not None and client_dtype is not None:
        int_dtype = np.promote_types(position_dtype, client_dtype)
        return _client_within(
            client_positions.astype(int_dtype),
            positions.astype(int_dtype),
            radii_squared,
        )
    cx = client_positions[:, 0]
    cy = client_positions[:, 1]
    dx = cx[np.newaxis, :, np.newaxis] - positions[:, np.newaxis, :, 0]
    dy = cy[np.newaxis, :, np.newaxis] - positions[:, np.newaxis, :, 1]
    return dx * dx + dy * dy <= radii_squared[np.newaxis, np.newaxis, :]


def _int_dtype(values: np.ndarray) -> "np.dtype | None":
    """The narrowest int dtype whose squared distances cannot overflow.

    ``None`` when the coordinates are not whole numbers (or too large),
    which sends the caller down the float64 reference path.
    """
    if not bool(np.all(values == np.rint(values))):
        return None
    if bool(np.all((values >= 0) & (values < _INT16_COORD_LIMIT))):
        return np.dtype(np.int16)
    if bool(np.all(np.abs(values) < _INT_COORD_LIMIT)):
        return np.dtype(np.int32)
    return None


def _floor_threshold(threshold_squared: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """``floor`` of a float squared-range threshold, clamped to ``dtype``.

    For integer squared distances, ``d2 <= t`` and ``d2 <= floor(t)``
    select exactly the same pairs, so the comparison can run entirely in
    integers without touching the float semantics of the scalar path.
    Clamping to the dtype's max is lossless: the achievable squared
    distances always fit the dtype, so a clamped threshold still admits
    every pair.
    """
    return np.minimum(np.floor(threshold_squared), np.iinfo(dtype).max).astype(dtype)


def _pairwise_within(
    positions: np.ndarray, range_squared: np.ndarray
) -> np.ndarray:
    """Integer ``(K, N, N)`` test ``d2(i, j) <= range_squared[i, j]``."""
    x = positions[:, :, 0]
    y = positions[:, :, 1]
    dx = x[:, :, np.newaxis] - x[:, np.newaxis, :]
    np.multiply(dx, dx, out=dx)
    dy = y[:, :, np.newaxis] - y[:, np.newaxis, :]
    np.multiply(dy, dy, out=dy)
    dx += dy
    return dx <= _floor_threshold(range_squared, dx.dtype)


def _client_within(
    clients: np.ndarray, positions: np.ndarray, radii_squared: np.ndarray
) -> np.ndarray:
    """Integer ``(K, M, N)`` test: client ``m`` within router ``n``'s radius."""
    dx = clients[np.newaxis, :, 0, np.newaxis] - positions[:, np.newaxis, :, 0]
    np.multiply(dx, dx, out=dx)
    dy = clients[np.newaxis, :, 1, np.newaxis] - positions[:, np.newaxis, :, 1]
    np.multiply(dy, dy, out=dy)
    dx += dy
    return dx <= _floor_threshold(radii_squared, dx.dtype)


@dataclass(eq=False)
class StackedMeasurement:
    """Array-level metrics for ``K`` stacked candidate placements.

    The multi-chain search layer measures whole candidate stacks per
    phase but only ever *materializes* the few winners, so this holds
    one metric array per field (indexed by candidate) instead of ``K``
    :class:`~repro.core.evaluation.Evaluation` objects.
    :meth:`evaluation` converts any row into a full, bit-identical
    ``Evaluation`` on demand.  Implements the row protocol that
    :meth:`repro.core.fitness.FitnessFunction.score_rows` consumes.
    """

    problem: ProblemInstance
    fitness_function: FitnessFunction
    giant_sizes: np.ndarray
    covered_clients: np.ndarray
    n_components: np.ndarray
    n_links: np.ndarray
    mean_degrees: np.ndarray
    giant_masks: np.ndarray
    #: Per-row scalar fitness, filled by ``measure_stack`` via
    #: ``fitness_function.score_rows`` (bit-identical to per-row
    #: ``score`` calls).
    fitness: np.ndarray = field(default=None)
    #: Sparse-path measurements wrap already-materialized evaluations.
    evaluations: "list[Evaluation] | None" = None

    def __len__(self) -> int:
        return int(self.giant_sizes.shape[0])

    @property
    def n_routers(self) -> int:
        """Fleet size (shared by every candidate row)."""
        return self.problem.n_routers

    @property
    def n_clients(self) -> int:
        """Client count (shared by every candidate row)."""
        return self.problem.n_clients

    def metrics(self, index: int) -> NetworkMetrics:
        """The full metric bundle of one row."""
        return NetworkMetrics(
            giant_size=int(self.giant_sizes[index]),
            n_routers=self.problem.n_routers,
            covered_clients=int(self.covered_clients[index]),
            n_clients=self.problem.n_clients,
            n_components=int(self.n_components[index]),
            n_links=int(self.n_links[index]),
            mean_degree=float(self.mean_degrees[index]),
        )

    def evaluation(self, index: int, placement: Placement | None = None) -> Evaluation:
        """Materialize row ``index`` as a full :class:`Evaluation`.

        ``placement`` must be supplied on the array path (the stack never
        saw placement objects); sparse-path measurements return their
        stored evaluation directly.
        """
        if self.evaluations is not None:
            return self.evaluations[index]
        if placement is None:
            raise ValueError(
                "materializing an array-path row needs its placement"
            )
        return Evaluation(
            placement=placement,
            metrics=self.metrics(index),
            fitness=float(self.fitness[index]),
            giant_mask=self.giant_masks[index],
        )

    @classmethod
    def concatenate(
        cls, parts: "Sequence[StackedMeasurement]"
    ) -> "StackedMeasurement":
        """Join chunked measurements back into one stack (row order kept)."""
        if not parts:
            raise ValueError("cannot concatenate zero measurement chunks")
        if len(parts) == 1:
            return parts[0]
        first = parts[0]
        evaluations = None
        if all(part.evaluations is not None for part in parts):
            evaluations = [e for part in parts for e in part.evaluations]
        return cls(
            problem=first.problem,
            fitness_function=first.fitness_function,
            giant_sizes=np.concatenate([p.giant_sizes for p in parts]),
            covered_clients=np.concatenate([p.covered_clients for p in parts]),
            n_components=np.concatenate([p.n_components for p in parts]),
            n_links=np.concatenate([p.n_links for p in parts]),
            mean_degrees=np.concatenate([p.mean_degrees for p in parts]),
            giant_masks=np.concatenate([p.giant_masks for p in parts]),
            fitness=np.concatenate([p.fitness for p in parts]),
            evaluations=evaluations,
        )


def measure_stack(
    problem: ProblemInstance,
    fitness: FitnessFunction,
    positions: np.ndarray,
) -> StackedMeasurement:
    """Measure a ``(K, N, 2)`` candidate-position stack in one pass.

    The array-level entry point for multi-chain search: identical math
    to :func:`evaluate_batch` (which is now a thin materializing wrapper
    around this function) without constructing per-candidate python
    objects.  Pure function — no counters, no archive.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 3 or positions.shape[2] != 2:
        raise ValueError(f"positions must be (K, N, 2), got {positions.shape}")
    n = problem.n_routers
    if positions.shape[1] != n:
        raise ValueError(
            f"positions stack has {positions.shape[1]} routers but the "
            f"fleet has {n}"
        )
    radii = problem.fleet.radii
    adjacency = batch_adjacency(positions, radii, problem.link_rule)
    k = positions.shape[0]

    # One flat nonzero pass feeds both the degree totals and the
    # component labeling.  For a flat index f = which * N^2 + i * N + j,
    # f // N is already the block-offset source node (which * N + i) the
    # batched labeling wants, and f % N recovers the local target.
    flat = np.flatnonzero(adjacency.ravel())
    edge_sources = flat // n
    which = edge_sources // n
    edge_targets = which * n + flat % n
    degree_totals = np.bincount(which, minlength=k)
    # Keep one direction per undirected edge; the propagation sweeps push
    # labels both ways anyway, so this halves the scatter work.
    one_way = edge_sources < edge_targets
    global_labels = labels_from_edges(
        k * n, edge_sources[one_way], edge_targets[one_way]
    )
    # Component sizes per candidate: block-offset labels never collide
    # across candidates, so one flat bincount is the (K, N) count table
    # (column = local label).
    counts = np.bincount(global_labels, minlength=k * n).reshape(k, n)
    labels = global_labels.reshape(k, n)
    labels -= np.arange(k, dtype=np.intp)[:, np.newaxis] * n
    # argmax returns the *first* maximum — the smallest label among the
    # largest components, matching ComponentStructure.giant_label().
    giant_labels = counts.argmax(axis=1)
    giant_sizes = counts[np.arange(k), giant_labels]
    n_components = (counts > 0).sum(axis=1)
    giant_masks = labels == giant_labels[:, np.newaxis]

    n_links = degree_totals // 2
    # Identical to per-candidate degrees().mean(): the degree total is an
    # exact integer in float64, divided by the same N.
    mean_degrees = degree_totals / n

    coverage = batch_coverage(problem.clients.positions, positions, radii)
    if problem.coverage_rule is CoverageRule.ANY_ROUTER:
        covered = coverage.any(axis=2).sum(axis=1)
    else:
        covered = (coverage & giant_masks[:, np.newaxis, :]).any(axis=2).sum(axis=1)

    measurement = StackedMeasurement(
        problem=problem,
        fitness_function=fitness,
        giant_sizes=giant_sizes,
        covered_clients=covered,
        n_components=n_components,
        n_links=n_links,
        mean_degrees=mean_degrees,
        giant_masks=giant_masks,
    )
    measurement.fitness = fitness.score_rows(measurement)
    return measurement


def evaluate_batch(
    problem: ProblemInstance,
    fitness: FitnessFunction,
    placements: Sequence[Placement],
) -> list[Evaluation]:
    """Evaluate every placement in one vectorized pass.

    Pure function: no counters, no archive — callers that need the
    bookkeeping wrap it (:class:`BatchEvaluator`,
    :meth:`repro.core.evaluation.Evaluator.evaluate_many`).
    """
    if not placements:
        return []
    n = problem.n_routers
    for placement in placements:
        if len(placement) != n:
            raise ValueError(
                f"placement positions {len(placement)} routers but the fleet "
                f"has {n}"
            )
    positions = np.stack([p.positions_array() for p in placements])
    measurement = measure_stack(problem, fitness, positions)
    return [
        measurement.evaluation(index, placement)
        for index, placement in enumerate(placements)
    ]


class BatchEvaluator:
    """Evaluates candidate placements in vectorized batches.

    Drop-in companion of the scalar
    :class:`~repro.core.evaluation.Evaluator` for algorithms that hold a
    whole candidate set at once (a sampled neighborhood phase, a GA
    offspring generation).  Results, evaluation counting and archive
    observation are identical to calling the scalar evaluator in a loop;
    only the wall-clock cost changes.

    ``max_chunk`` bounds peak memory: a batch of ``K`` candidates
    allocates ``O(K * N^2 + K * M * N)`` intermediates, so very large
    batches are processed in chunks of this size.

    ``engine`` follows the shared dispatch contract (see
    :mod:`repro.core.engine.dispatch`): ``"auto"`` routes city-scale
    instances through the spatial-grid sparse engine instead of the
    stacked tensors, with bit-identical results.
    """

    def __init__(
        self,
        problem: ProblemInstance,
        fitness: FitnessFunction | None = None,
        archive=None,
        max_chunk: int = DEFAULT_MAX_CHUNK,
        engine: str = "auto",
    ) -> None:
        if max_chunk <= 0:
            raise ValueError(f"max_chunk must be positive, got {max_chunk}")
        self._problem = problem
        self._fitness = fitness if fitness is not None else WeightedSumFitness()
        self._archive = archive
        self._max_chunk = max_chunk
        self._n_evaluations = 0
        self._engine = resolve_engine(problem, engine)
        self._sparse = None
        self._compiled = None

    @property
    def engine(self) -> str:
        """The resolved path: ``"dense"``, ``"sparse"`` or ``"compiled"``."""
        return self._engine

    @property
    def problem(self) -> ProblemInstance:
        """The instance this evaluator measures against."""
        return self._problem

    @property
    def fitness_function(self) -> FitnessFunction:
        """The configured scalarization."""
        return self._fitness

    @property
    def n_evaluations(self) -> int:
        """Number of placements evaluated so far (search cost counter)."""
        return self._n_evaluations

    def reset_counter(self) -> None:
        """Zero the evaluation counter (e.g. between experiment runs)."""
        self._n_evaluations = 0

    def evaluate_many(self, placements: Sequence[Placement]) -> list[Evaluation]:
        """Measure every placement; order-preserving, one slot each."""
        evaluations: list[Evaluation] = []
        if self._engine == "compiled":
            if self._compiled is None:
                from repro.core.engine.compiled import CompiledEngine

                self._compiled = CompiledEngine(self._problem, self._fitness)
            for start in range(0, len(placements), self._max_chunk):
                evaluations.extend(
                    self._compiled.evaluate_batch(
                        placements[start : start + self._max_chunk]
                    )
                )
        elif self._engine == "sparse":
            if self._sparse is None:
                from repro.core.engine.sparse import SparseEngine

                self._sparse = SparseEngine(self._problem, self._fitness)
            evaluations.extend(self._sparse.evaluate(p) for p in placements)
        else:
            for start in range(0, len(placements), self._max_chunk):
                chunk = placements[start : start + self._max_chunk]
                evaluations.extend(
                    evaluate_batch(self._problem, self._fitness, chunk)
                )
        self._n_evaluations += len(evaluations)
        if self._archive is not None:
            for evaluation in evaluations:
                self._archive.observe(evaluation)
        return evaluations

    def evaluate(self, placement: Placement) -> Evaluation:
        """Scalar convenience: a batch of one."""
        return self.evaluate_many([placement])[0]
