"""The compiled evaluation tier (``engine="compiled"``).

The numpy engines spend their city-scale and multi-chain budgets in four
hot paths: the fused pairwise-distance/range tests, the
:class:`~repro.core.engine.stacked.StackedDeltaEngine`'s moved-router
row/column recompute, edge-stack component labeling, and the giant-only
covered-count reduction.  This module replaces them with C kernels
(:mod:`_kernels.c <repro.core.engine>`), compiled on demand by the
system toolchain into a content-hashed shared library and bound via
:mod:`ctypes` — no third-party dependency, so tier-1 environments
without a C compiler simply fall back to the numpy paths.

Availability contract (mirrored by the dispatch layer):

* :func:`is_available` is the quiet probe — ``False`` when the
  ``REPRO_COMPILED`` environment variable disables the tier (``0``,
  ``false``, ``off``, ``no``) or when the one-shot build fails (no
  compiler, read-only filesystem, ...).  ``engine="auto"`` promotes to
  the compiled tier exactly when this returns ``True``.
* :func:`require` is the loud probe — returns the bound library or
  raises a ``RuntimeError`` explaining why ``engine="compiled"`` cannot
  run and how to fall back.

Bit-identity: every kernel performs the same float64 subtract / square /
add / compare sequence as the numpy reference formulas (the build passes
``-ffp-contract=off`` so no fused multiply-add can round differently),
component labels are canonical smallest-member ids from a
smaller-root-wins union-find, and all counts are integer arithmetic.
The compiled parity suite asserts equality against the dense and sparse
numpy engines across rule combinations, scales and delta move chains.

The build is cached under ``_build/`` next to this module (override with
``REPRO_COMPILED_CACHE``; falls back to a per-user temp directory when
the package tree is read-only), keyed by the source hash, so recompiles
happen only when ``_kernels.c`` changes.  OpenMP is used when the
toolchain supports it — kernels parallelize over candidates, which write
disjoint output rows, so thread count never changes results.
:func:`set_num_threads` pins the pool; :mod:`repro.parallel` workers pin
it to one thread each to avoid oversubscription under ``workers=``.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import warnings
from pathlib import Path

import numpy as np

from repro import envgates
from repro.core.fitness import FitnessFunction, NetworkMetrics, WeightedSumFitness
from repro.core.problem import ProblemInstance
from repro.core.radio import CoverageRule, LinkRule
from repro.core.solution import Placement

__all__ = [
    "is_available",
    "build_error",
    "require",
    "has_openmp",
    "set_num_threads",
    "label_components",
    "link_hits_compiled",
    "CompiledEngine",
]

_SOURCE = Path(__file__).with_name("_kernels.c")

#: Numeric codes matching ``link_reach`` in ``_kernels.c``.
_RULE_CODES = {
    LinkRule.OVERLAP: 0,
    LinkRule.BIDIRECTIONAL: 1,
    LinkRule.UNIDIRECTIONAL: 2,
}

_lock = threading.Lock()
_lib: "ctypes.CDLL | None" = None
_build_error: "str | None" = None

_I64 = ctypes.c_int64
_PD = ctypes.POINTER(ctypes.c_double)
_PI = ctypes.POINTER(_I64)
_PU8 = ctypes.POINTER(ctypes.c_uint8)


def _env_enabled() -> bool:
    """Live read of the ``REPRO_COMPILED`` gate (default: enabled)."""
    return envgates.compiled_enabled()


def _cache_dirs() -> list[Path]:
    override = envgates.compiled_cache_override()
    if override:
        return [Path(override)]
    return [
        Path(__file__).with_name("_build"),
        Path(tempfile.gettempdir()) / f"repro-kernels-{os.getuid()}",
    ]


def _find_compiler() -> "str | None":
    env_cc = os.environ.get("CC")
    if env_cc and shutil.which(env_cc):
        return env_cc
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


#: No ``-ffast-math``, and contraction off: ``dx*dx + dy*dy`` must round
#: exactly like numpy's two-operation float64 sequence.
_BASE_FLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off")


def _compile_library() -> Path:
    """Build (or reuse) the shared library; returns its path."""
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler found (tried $CC, cc, gcc, clang)")
    source_bytes = _SOURCE.read_bytes()
    tag = hashlib.sha256(
        source_bytes + b"\0" + " ".join(_BASE_FLAGS).encode()
    ).hexdigest()[:16]
    lib_name = f"repro_kernels_{tag}.so"
    errors: list[str] = []
    for directory in _cache_dirs():
        target = directory / lib_name
        if target.exists():
            return target
        try:
            directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            errors.append(f"{directory}: {exc}")
            continue
        tmp = directory / f".{lib_name}.{os.getpid()}.tmp"
        built = False
        for extra in (("-fopenmp",), ()):
            command = [
                compiler, str(_SOURCE),
                *_BASE_FLAGS, *extra,
                "-o", str(tmp), "-lm",
            ]
            result = subprocess.run(
                command, capture_output=True, text=True, timeout=120
            )
            if result.returncode == 0:
                built = True
                break
            errors.append(
                f"{' '.join(command)}: {result.stderr.strip()[-400:]}"
            )
        if not built:
            continue
        try:
            # Atomic publish: concurrent builders (pool workers) race
            # benignly — last rename wins, every path stays valid.
            os.replace(tmp, target)
        except OSError as exc:
            errors.append(f"{target}: {exc}")
            continue
        return target
    raise RuntimeError("; ".join(errors) or "no writable build directory")


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    lib.repro_has_openmp.restype = _I64
    lib.repro_has_openmp.argtypes = ()
    lib.repro_get_max_threads.restype = _I64
    lib.repro_get_max_threads.argtypes = ()
    lib.repro_set_threads.restype = None
    lib.repro_set_threads.argtypes = (_I64,)
    lib.repro_label_components.restype = None
    lib.repro_label_components.argtypes = (_I64, _I64, _PI, _PI, _PI)
    lib.repro_measure_stack_dense.restype = None
    lib.repro_measure_stack_dense.argtypes = (
        _PD, _I64, _I64, _PD, _PD, _I64, _PD, _I64,
        _PI, _PI, _PI, _PI, _PU8,
    )
    lib.repro_measure_stack_sparse.restype = None
    lib.repro_measure_stack_sparse.argtypes = (
        _PD, _I64, _I64, _PD, _I64,
        ctypes.c_double, _I64, _I64,
        _PD, _I64, _PD,
        ctypes.c_double, _I64, _I64,
        _I64, _PI, _PI, _PI, _PI, _PU8,
    )
    lib.repro_measure_dense_matrices.restype = None
    lib.repro_measure_dense_matrices.argtypes = (
        _PU8, _PU8, _I64, _I64, _I64,
        _PI, _PI, _PI, _PI, _PU8,
    )
    lib.repro_delta_rows_cols.restype = None
    lib.repro_delta_rows_cols.argtypes = (
        _PD, _PI, _I64, _PD, _I64, _PD, _PD, _I64, _PD, _PU8, _PU8,
    )
    lib.repro_giant_covered.restype = None
    lib.repro_giant_covered.argtypes = (
        _PI, _PI, _I64, _I64, _I64, _PU8, _PI, _PI, _I64, _PU8, _PU8, _PI,
    )
    lib.repro_filter_pairs.restype = None
    lib.repro_filter_pairs.argtypes = (_PD, _PI, _PI, _I64, _PD, _I64, _PU8)
    lib.repro_dense_edges.restype = None
    lib.repro_dense_edges.argtypes = (_PU8, _I64, _PI, _PI)
    lib.repro_client_csr_fill.restype = None
    lib.repro_client_csr_fill.argtypes = (_PU8, _I64, _I64, _PI, _PI)
    lib.repro_csr_update_column.restype = None
    lib.repro_csr_update_column.argtypes = (
        _PI, _PI, _I64, _I64, _PU8, _PI, _PI,
    )
    return lib


def _load() -> "ctypes.CDLL | None":
    """Build+bind once per process; the outcome (either way) is cached."""
    global _lib, _build_error
    if _lib is not None or _build_error is not None:
        return _lib
    with _lock:
        if _lib is not None or _build_error is not None:
            return _lib
        try:
            _lib = _bind(ctypes.CDLL(str(_compile_library())))
        except (OSError, RuntimeError, subprocess.SubprocessError) as exc:
            _build_error = str(exc)
            # One warning per process (the failure is cached, so this
            # branch runs once): ``engine="auto"`` keeps working on the
            # numpy tiers with identical results, but silence here cost
            # users the speedup without any signal as to why.
            summary = _build_error.strip().splitlines()[-1][:200]
            warnings.warn(
                "building the compiled kernel engine failed; falling "
                f"back to the numpy engines (identical results). "
                f"Build error: {summary} — see "
                "repro.core.engine.compiled.build_error() for the full "
                "text",
                RuntimeWarning,
                stacklevel=3,
            )
    return _lib


def is_available() -> bool:
    """Whether the compiled tier can run (gate enabled + build succeeds)."""
    return _env_enabled() and _load() is not None


def build_error() -> "str | None":
    """The cached kernel build failure, or ``None``.

    ``None`` either means the build succeeded or that nothing has
    attempted a build yet in this process (the build is lazy); after a
    failed :func:`is_available`/:func:`require` call this holds the full
    compiler/loader error text for diagnostics.
    """
    return _build_error


def require() -> ctypes.CDLL:
    """The bound kernel library, or a clear error for ``engine="compiled"``."""
    if not _env_enabled():
        raise RuntimeError(
            "engine='compiled' is disabled by REPRO_COMPILED="
            f"{envgates.raw('REPRO_COMPILED')!r}; unset it, or use "
            "engine='auto' to fall back to the numpy engines"
        )
    lib = _load()
    if lib is None:
        raise RuntimeError(
            "engine='compiled' is unavailable: building the C kernels "
            f"failed ({_build_error}). Install a C toolchain (cc/gcc/"
            "clang), or use engine='auto' to fall back to the numpy "
            "engines with identical results"
        )
    return lib


def has_openmp() -> bool:
    """Whether the built kernels parallelize over candidates."""
    return bool(require().repro_has_openmp())


def set_num_threads(n: int) -> None:
    """Pin the kernel thread pool (no-op without OpenMP).

    Thread count never changes results — candidates write disjoint
    output rows — only wall-clock.  Worker processes pin to 1.
    """
    if n < 1:
        raise ValueError(f"thread count must be positive, got {n}")
    require().repro_set_threads(n)


# ----------------------------------------------------------------------
# ndarray plumbing
# ----------------------------------------------------------------------


def _f64(values: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.float64)


def _i64a(values: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.int64)


def _u8(values: np.ndarray) -> np.ndarray:
    """Boolean arrays reinterpreted as uint8 without copying."""
    contiguous = np.ascontiguousarray(values)
    if contiguous.dtype == np.bool_:
        return contiguous.view(np.uint8)
    return contiguous.astype(np.uint8)


def _pd(values: np.ndarray):
    return values.ctypes.data_as(_PD)


def _pi(values: np.ndarray):
    return values.ctypes.data_as(_PI)


def _pu8(values: np.ndarray):
    return values.ctypes.data_as(_PU8)


# ----------------------------------------------------------------------
# Kernel wrappers
# ----------------------------------------------------------------------


def label_components(
    n_nodes: int, rows: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Canonical smallest-member component labels (one kernel, any size).

    Drop-in for :func:`repro.core.engine.components.labels_from_edges`
    and :func:`labels_from_edge_stack` — same validation, same labels —
    replacing the scipy-vs-propagation split with one union-find pass.
    """
    if n_nodes < 0:
        raise ValueError(f"node count must be non-negative, got {n_nodes}")
    rows = _i64a(rows)
    cols = _i64a(cols)
    if rows.size and not (
        0 <= int(min(rows.min(), cols.min()))
        and int(max(rows.max(), cols.max())) < n_nodes
    ):
        raise ValueError(f"edge endpoints out of range for {n_nodes} nodes")
    labels = np.empty(n_nodes, dtype=np.int64)
    require().repro_label_components(
        n_nodes, rows.size, _pi(rows), _pi(cols), _pi(labels)
    )
    return labels.astype(np.intp, copy=False)


def link_hits_compiled(
    positions: np.ndarray,
    radii: np.ndarray,
    link_rule: LinkRule,
    rows: np.ndarray,
    cols: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact-predicate filter of candidate router pairs (bin-pair form).

    Compiled twin of :func:`repro.core.engine.sparse.link_hits`: same
    float64 reach arithmetic per rule, a keep-mask then numpy indexing,
    so the surviving pairs and their order are identical.
    """
    if rows.size == 0:
        return rows, cols
    rows64 = _i64a(rows)
    cols64 = _i64a(cols)
    keep = np.empty(rows64.size, dtype=np.uint8)
    require().repro_filter_pairs(
        _pd(_f64(positions)), _pi(rows64), _pi(cols64), rows64.size,
        _pd(_f64(radii)), _RULE_CODES[link_rule], _pu8(keep),
    )
    mask = keep.view(bool)
    return rows[mask], cols[mask]


def measure_dense_matrices(
    adjacency: np.ndarray, coverage: np.ndarray, giant_only: bool
) -> tuple[int, int, int, int, np.ndarray]:
    """Fused metrics from an incumbent's dense boolean matrices.

    Returns ``(giant_size, covered, n_components, n_links, giant_mask)``
    with the shared smallest-canonical-label giant tie-break — the
    :class:`~repro.core.engine.delta.DeltaEvaluator`'s per-propose
    ``_measure`` in one pass.
    """
    n = adjacency.shape[0]
    m = coverage.shape[0]
    out = np.zeros(4, dtype=np.int64)
    giant_mask = np.empty(n, dtype=np.uint8)
    require().repro_measure_dense_matrices(
        _pu8(_u8(adjacency)), _pu8(_u8(coverage)), n, m, int(giant_only),
        _pi(out[0:1]), _pi(out[1:2]), _pi(out[2:3]), _pi(out[3:4]),
        _pu8(giant_mask),
    )
    return (
        int(out[0]), int(out[1]), int(out[2]), int(out[3]),
        giant_mask.view(bool),
    )


def delta_rows_cols(
    new_xy: np.ndarray,
    router_of_pair: np.ndarray,
    positions: np.ndarray,
    range_squared: np.ndarray,
    clients: np.ndarray,
    radii_squared: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Moved-router adjacency rows + coverage columns for ``P`` pairs.

    The :class:`~repro.core.engine.stacked.StackedDeltaEngine`'s two
    per-phase broadcasts fused into one parallel pass: ``rows_new[p]``
    is router ``router_of_pair[p]``'s adjacency row at ``new_xy[p]``
    against the incumbent ``positions`` (diagonal cleared), ``cols_new
    [p]`` its coverage column over ``clients``.  Boolean views, no copy.
    """
    pairs = _i64a(router_of_pair)
    n = positions.shape[0]
    m = clients.shape[0]
    rows_new = np.empty((pairs.size, n), dtype=np.uint8)
    cols_new = np.empty((pairs.size, m), dtype=np.uint8)
    require().repro_delta_rows_cols(
        _pd(_f64(new_xy)), _pi(pairs), pairs.size,
        _pd(_f64(positions)), n,
        _pd(_f64(range_squared)), _pd(_f64(clients)), m,
        _pd(_f64(radii_squared)),
        _pu8(rows_new), _pu8(cols_new),
    )
    return rows_new.view(bool), cols_new.view(bool)


def giant_covered(
    client_ptr: np.ndarray,
    client_hit: np.ndarray,
    n_routers: int,
    giant_masks: np.ndarray,
    pair_cand: np.ndarray,
    pair_router: np.ndarray,
    cols_new: np.ndarray,
    coverage: np.ndarray,
) -> np.ndarray:
    """Giant-only covered-client counts for one chain segment.

    All-integer replacement of the float32 sgemm + per-mover
    corrections: per candidate, each client's covering-giant-router
    count comes from the incumbent's client-major CSR hit lists
    (``client_ptr``/``client_hit``), then every giant mover exchanges
    its old coverage column for its new one.
    """
    count = giant_masks.shape[0]
    covered = np.empty(count, dtype=np.int64)
    pair_cand = _i64a(pair_cand)
    pair_router = _i64a(pair_router)
    client_ptr = _i64a(client_ptr)
    client_hit = _i64a(client_hit)
    require().repro_giant_covered(
        _pi(client_ptr), _pi(client_hit),
        client_ptr.size - 1, n_routers, count,
        _pu8(_u8(giant_masks)),
        _pi(pair_cand), _pi(pair_router), pair_cand.size,
        _pu8(_u8(cols_new)), _pu8(_u8(coverage)),
        _pi(covered),
    )
    return covered.astype(np.intp, copy=False)


def client_csr(coverage: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Client-major CSR of a boolean ``(M, N)`` coverage matrix.

    Offsets come from one row-sum cumsum; the hit lists are filled by
    the C kernel when it is loaded (``np.nonzero`` over the full matrix
    is the commit-path hot spot at city scale) and by ``np.nonzero``
    otherwise.  Both fills emit routers in ascending order per client —
    row-major — so the arrays are bit-identical either way.
    """
    matrix = _u8(coverage)
    m = matrix.shape[0]
    n = matrix.shape[1] if matrix.ndim == 2 else 0
    ptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(matrix.sum(axis=1, dtype=np.int64), out=ptr[1:])
    hit = np.empty(int(ptr[m]), dtype=np.int64)
    if hit.size:
        lib = _load() if _env_enabled() else None
        if lib is not None:
            lib.repro_client_csr_fill(_pu8(matrix), m, n, _pi(ptr), _pi(hit))
        else:
            # np.nonzero returns strided column views of one (nnz, 2)
            # buffer; the downstream kernel walks raw int64s, so the
            # hit list must be compacted.
            hit[:] = np.nonzero(matrix)[1]
    return ptr, hit


def csr_update_column(
    ptr: np.ndarray,
    hit: np.ndarray,
    router: int,
    newcol: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Rewrite a client-major CSR for one moved router's new column.

    O(nnz) — the incumbent-commit path at city scale, where rebuilding
    from the full ``(M, N)`` matrix would rescan mostly-unchanged
    cells.  Bit-identical to :func:`client_csr` on the patched matrix.
    """
    lib = require()
    ptr = _i64a(ptr)
    hit = _i64a(hit)
    newcol = _u8(newcol)
    m = newcol.shape[0]
    if ptr.shape[0] != m + 1:
        raise ValueError(
            f"ptr has {ptr.shape[0]} offsets for {m} clients"
        )
    new_ptr = np.empty(m + 1, dtype=np.int64)
    # Worst case: every client gains the moved router.
    new_hit = np.empty(hit.shape[0] + m, dtype=np.int64)
    lib.repro_csr_update_column(
        _pi(ptr), _pi(hit), m, int(router), _pu8(newcol),
        _pi(new_ptr), _pi(new_hit),
    )
    return new_ptr, new_hit[: int(new_ptr[m])]


def dense_edges(adjacency: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """One-way ``(rows, cols)`` edge arrays of a dense adjacency matrix.

    The upper-triangle scan that refreshes a chain cache's edge arrays
    on commit; same ``(i < j)`` row-major order as the ``np.nonzero``
    path it replaces.
    """
    lib = require()
    matrix = _u8(adjacency)
    n = matrix.shape[0]
    # Each undirected link sets two cells, so the popcount halves.
    n_links = int(matrix.sum(dtype=np.int64)) // 2
    rows = np.empty(n_links, dtype=np.int64)
    cols = np.empty(n_links, dtype=np.int64)
    if n_links:
        lib.repro_dense_edges(_pu8(matrix), n, _pi(rows), _pi(cols))
    return rows.astype(np.intp, copy=False), cols.astype(np.intp, copy=False)


# ----------------------------------------------------------------------
# Stacked measurement engine
# ----------------------------------------------------------------------


class CompiledEngine:
    """Fused stacked measurement of ``(K, N, 2)`` candidate stacks.

    The compiled tier's counterpart of
    :func:`~repro.core.engine.batch.measure_stack` /
    :class:`~repro.core.engine.sparse.SparseEngine`: per candidate, the
    pairwise link test, component labeling and covered-count reduction
    run fused in C with no ``(K, N, N)`` or ``(K, M, N)`` tensor ever
    materialized.  The kernel *form* follows
    :func:`~repro.core.engine.dispatch.select_engine` — at dense scale
    an all-pairs sweep against the precomputed squared range matrix, at
    city scale a per-candidate spatial binning with the same 3x3-ring
    conservative prune as the numpy sparse engine — and both forms are
    bit-identical to their numpy counterparts.
    """

    def __init__(
        self,
        problem: ProblemInstance,
        fitness: FitnessFunction | None = None,
    ) -> None:
        from repro.core.engine.dispatch import select_engine
        from repro.core.engine.sparse import coverage_cell_size, link_cell_size

        require()
        self._problem = problem
        self._fitness = fitness if fitness is not None else WeightedSumFitness()
        self.form = select_engine(problem)
        radii = _f64(problem.fleet.radii)
        self._radii = radii
        self._radii_squared = _f64(radii * radii)
        self._clients = _f64(problem.clients.positions)
        self._giant_only = problem.coverage_rule is not CoverageRule.ANY_ROUTER
        self._rule_code = _RULE_CODES[problem.link_rule]
        if self.form == "dense":
            link_range = problem.link_rule.range_matrix(radii)
            self._range_squared = _f64(link_range * link_range)
        else:
            self._link_cell = link_cell_size(radii, problem.link_rule)
            self._cover_cell = coverage_cell_size(radii)
            # In-grid coordinates span [0, width-1] x [0, height-1], so
            # these bin-grid dimensions are exact — no position of a
            # valid placement or client ever clamps.
            self._link_bins = (
                _bin_count(problem.grid.width, self._link_cell),
                _bin_count(problem.grid.height, self._link_cell),
            )
            self._cover_bins = (
                _bin_count(problem.grid.width, self._cover_cell),
                _bin_count(problem.grid.height, self._cover_cell),
            )

    @property
    def problem(self) -> ProblemInstance:
        """The instance this engine measures against."""
        return self._problem

    @property
    def fitness_function(self) -> FitnessFunction:
        """The configured scalarization."""
        return self._fitness

    def measure_stack(self, positions: np.ndarray):
        """Measure a ``(K, N, 2)`` stack; bit-identical to the numpy paths."""
        from repro.core.engine.batch import StackedMeasurement

        positions = _f64(positions)
        if positions.ndim != 3 or positions.shape[2] != 2:
            raise ValueError(
                f"positions must be (K, N, 2), got {positions.shape}"
            )
        n = self._problem.n_routers
        if positions.shape[1] != n:
            raise ValueError(
                f"positions stack has {positions.shape[1]} routers but the "
                f"fleet has {n}"
            )
        k = positions.shape[0]
        giant_sizes = np.zeros(k, dtype=np.int64)
        covered = np.zeros(k, dtype=np.int64)
        n_components = np.zeros(k, dtype=np.int64)
        n_links = np.zeros(k, dtype=np.int64)
        giant_masks = np.zeros((k, n), dtype=np.uint8)
        if k:
            lib = require()
            m = self._clients.shape[0]
            if self.form == "dense":
                lib.repro_measure_stack_dense(
                    _pd(positions), k, n,
                    _pd(self._range_squared),
                    _pd(self._clients), m,
                    _pd(self._radii_squared),
                    int(self._giant_only),
                    _pi(giant_sizes), _pi(covered),
                    _pi(n_components), _pi(n_links),
                    _pu8(giant_masks),
                )
            else:
                lib.repro_measure_stack_sparse(
                    _pd(positions), k, n,
                    _pd(self._radii), self._rule_code,
                    self._link_cell, *self._link_bins,
                    _pd(self._clients), m,
                    _pd(self._radii_squared),
                    self._cover_cell, *self._cover_bins,
                    int(self._giant_only),
                    _pi(giant_sizes), _pi(covered),
                    _pi(n_components), _pi(n_links),
                    _pu8(giant_masks),
                )
        degree_totals = 2 * n_links
        measurement = StackedMeasurement(
            problem=self._problem,
            fitness_function=self._fitness,
            giant_sizes=giant_sizes.astype(np.intp, copy=False),
            covered_clients=covered.astype(np.intp, copy=False),
            n_components=n_components.astype(np.intp, copy=False),
            n_links=n_links.astype(np.intp, copy=False),
            # The same exact-integer float64 division as every other path.
            mean_degrees=degree_totals / n,
            giant_masks=giant_masks.view(bool),
        )
        measurement.fitness = self._fitness.score_rows(measurement)
        return measurement

    def evaluate(self, placement: Placement):
        """Scalar measurement: a stack of one, materialized."""
        if len(placement) != self._problem.n_routers:
            raise ValueError(
                f"placement positions {len(placement)} routers but the fleet "
                f"has {self._problem.n_routers}"
            )
        measurement = self.measure_stack(
            placement.positions_array()[np.newaxis]
        )
        return measurement.evaluation(0, placement)

    def evaluate_batch(self, placements) -> list:
        """Measure a placement sequence; order-preserving, one slot each."""
        if not placements:
            return []
        n = self._problem.n_routers
        for placement in placements:
            if len(placement) != n:
                raise ValueError(
                    f"placement positions {len(placement)} routers but the "
                    f"fleet has {n}"
                )
        stack = np.stack([p.positions_array() for p in placements])
        measurement = self.measure_stack(stack)
        return [
            measurement.evaluation(index, placement)
            for index, placement in enumerate(placements)
        ]

    def measure_metrics(self, placement: Placement) -> NetworkMetrics:
        """Metric bundle only (no fitness), for metric-level callers."""
        return self.evaluate(placement).metrics

    def __repr__(self) -> str:
        return (
            f"CompiledEngine(n_routers={self._problem.n_routers}, "
            f"form={self.form!r}, openmp={bool(require().repro_has_openmp())})"
        )


def _bin_count(extent: int, cell: float) -> int:
    """Bins covering in-grid coordinates ``[0, extent - 1]``."""
    if extent <= 0:
        return 1
    return int(np.floor((extent - 1) / cell)) + 1
