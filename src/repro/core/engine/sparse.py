"""Sparse spatial-grid placement evaluation.

The dense engines materialize ``O(N^2)`` adjacency and ``O(M * N)``
coverage matrices, so memory — not compute — caps instance size around a
few hundred routers.  At city scale (thousands of routers, tens of
thousands of clients on a large area) almost every router pair is out of
radio range, which is exactly the regime where neighbor queries beat
pairwise matrices: this module bins positions into square cells at least
as large as the radio reach, generates candidate pairs only from
same-and-adjacent bins, and tests the exact link/coverage predicate on
those candidates.  Evaluation drops from ``O(N^2 + M * N)`` to roughly
``O(N k + M k)`` for realistic densities (``k`` = neighbors per bin
ring).

Bit-identity with the dense engines: binning is purely a *conservative
prune*.  A pair in bins more than one apart along either axis is
separated by strictly more than one cell width, which is at least the
maximum link range (respectively coverage radius), so the dense
comparison would reject it anyway; every surviving candidate is tested
with the same float64 subtract/square/compare the scalar formulas use.
The resulting edge set, component labels, metrics and fitness are
therefore exactly those of :class:`~repro.core.evaluation.Evaluator`
(the parity suite asserts it).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.engine.components import labels_from_edges
from repro.core.evaluation import Evaluation
from repro.core.fitness import FitnessFunction, NetworkMetrics, WeightedSumFitness
from repro.core.problem import ProblemInstance
from repro.core.radio import CoverageRule, LinkRule
from repro.core.solution import Placement

__all__ = [
    "DEFAULT_QUERY_CHUNK",
    "SpatialGridIndex",
    "link_cell_size",
    "coverage_cell_size",
    "sparse_edges",
    "SparseEngine",
    "evaluate_sparse",
]

#: Default number of query points per :meth:`SpatialGridIndex.query_points`
#: pass in chunked coverage counting; bounds the candidate-pair arrays.
DEFAULT_QUERY_CHUNK = 4096

#: Cross-bin offsets covering each unordered bin pair exactly once.
_HALF_NEIGHBORHOOD = ((0, 1), (1, -1), (1, 0), (1, 1))

#: The full 3x3 ring, for point-against-index queries.
_FULL_NEIGHBORHOOD = tuple((ox, oy) for ox in (-1, 0, 1) for oy in (-1, 0, 1))


def link_cell_size(radii: np.ndarray, link_rule: LinkRule) -> float:
    """Bin width for router-router adjacency under ``link_rule``.

    At least the maximum pairwise link range, so two routers whose bins
    differ by more than one along an axis can never link.
    """
    return max(float(np.ceil(link_rule.max_reach(radii))), 1.0)


def coverage_cell_size(radii: np.ndarray) -> float:
    """Bin width for client coverage: at least the largest radius."""
    if radii.size == 0:
        return 1.0
    return max(float(np.ceil(float(radii.max()))), 1.0)


class SpatialGridIndex:
    """Cell-binned 2-D point index with conservative neighbor queries.

    Points are hashed to square bins of ``cell_size``; queries return
    *candidate* pairs from the same or adjacent bins (a superset of all
    pairs within ``cell_size`` of each other), which the caller filters
    with the exact predicate.  Both query styles are a handful of
    whole-array ``searchsorted``/``repeat`` passes — no per-point Python
    loop.
    """

    __slots__ = (
        "cell_size",
        "n_points",
        "_order",
        "_sorted_ids",
        "_bx",
        "_by",
        "_min_bx",
        "_max_bx",
        "_min_by",
        "_max_by",
        "_stride",
    )

    def __init__(self, points: np.ndarray, cell_size: float) -> None:
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or (points.size and points.shape[1] != 2):
            raise ValueError(f"points must be (P, 2), got {points.shape}")
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = float(cell_size)
        self.n_points = int(points.shape[0])
        self._bx = np.floor(points[:, 0] / self.cell_size).astype(np.int64) \
            if self.n_points else np.zeros(0, dtype=np.int64)
        self._by = np.floor(points[:, 1] / self.cell_size).astype(np.int64) \
            if self.n_points else np.zeros(0, dtype=np.int64)
        if self.n_points:
            self._min_bx = int(self._bx.min())
            self._max_bx = int(self._bx.max())
            self._min_by = int(self._by.min())
            self._max_by = int(self._by.max())
        else:
            self._min_bx = self._max_bx = self._min_by = self._max_by = 0
        self._stride = self._max_by - self._min_by + 1
        ids = self._bin_ids(self._bx, self._by)
        self._order = np.argsort(ids, kind="stable").astype(np.intp, copy=False)
        self._sorted_ids = ids[self._order]

    def _bin_ids(self, bx: np.ndarray, by: np.ndarray) -> np.ndarray:
        """Row-major bin id; only meaningful for in-range bin coords."""
        return (bx - self._min_bx) * self._stride + (by - self._min_by)

    def _in_range(self, bx: np.ndarray, by: np.ndarray) -> np.ndarray:
        return (
            (bx >= self._min_bx)
            & (bx <= self._max_bx)
            & (by >= self._min_by)
            & (by <= self._max_by)
        )

    @staticmethod
    def _expand(starts: np.ndarray, ends: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Pairs ``(i, slot)`` for every slot in ``[starts[i], ends[i])``.

        The flattened ragged-range trick: one ``repeat`` for the sources,
        one ``repeat`` + ``arange`` for the in-range offsets.
        """
        lengths = np.maximum(ends - starts, 0)
        total = int(lengths.sum())
        if total == 0:
            empty = np.zeros(0, dtype=np.intp)
            return empty, empty.copy()
        sources = np.repeat(np.arange(len(starts), dtype=np.intp), lengths)
        run_starts = np.repeat(np.cumsum(lengths) - lengths, lengths)
        slots = np.repeat(starts, lengths) + (
            np.arange(total, dtype=np.intp) - run_starts
        )
        return sources, slots.astype(np.intp, copy=False)

    def candidate_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """All unordered point pairs from same-or-adjacent bins, each once.

        A superset of every pair within ``cell_size``; pairs whose bins
        differ by >= 2 along an axis (distance strictly greater than
        ``cell_size``) are never generated.
        """
        n = self.n_points
        if n < 2:
            empty = np.zeros(0, dtype=np.intp)
            return empty, empty.copy()
        ids = self._sorted_ids
        bx = self._bx[self._order]
        by = self._by[self._order]
        source_parts: list[np.ndarray] = []
        target_parts: list[np.ndarray] = []
        # Same-bin pairs: each sorted slot against the rest of its bin.
        ends = np.searchsorted(ids, ids, side="right")
        sources, targets = self._expand(np.arange(n, dtype=np.int64) + 1, ends)
        source_parts.append(sources)
        target_parts.append(targets)
        # Cross-bin pairs: half the ring, so each bin pair appears once.
        for ox, oy in _HALF_NEIGHBORHOOD:
            tbx = bx + ox
            tby = by + oy
            valid = self._in_range(tbx, tby)
            tids = self._bin_ids(tbx, tby)
            starts = np.searchsorted(ids, tids, side="left")
            stops = np.searchsorted(ids, tids, side="right")
            stops = np.where(valid, stops, starts)
            sources, targets = self._expand(starts, stops)
            source_parts.append(sources)
            target_parts.append(targets)
        order = self._order
        return (
            order[np.concatenate(source_parts)],
            order[np.concatenate(target_parts)],
        )

    def query_points(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Candidate ``(query, member)`` pairs from each query's 3x3 ring.

        ``points`` may lie anywhere (even outside the indexed extent):
        ring bins outside the extent simply contribute nothing, so a
        query more than one bin away from every occupied bin — strictly
        beyond ``cell_size`` of every member — returns no candidates.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or (points.size and points.shape[1] != 2):
            raise ValueError(f"points must be (P, 2), got {points.shape}")
        if points.shape[0] == 0 or self.n_points == 0:
            empty = np.zeros(0, dtype=np.intp)
            return empty, empty.copy()
        pbx = np.floor(points[:, 0] / self.cell_size).astype(np.int64)
        pby = np.floor(points[:, 1] / self.cell_size).astype(np.int64)
        ids = self._sorted_ids
        query_parts: list[np.ndarray] = []
        member_parts: list[np.ndarray] = []
        for ox, oy in _FULL_NEIGHBORHOOD:
            tbx = pbx + ox
            tby = pby + oy
            valid = self._in_range(tbx, tby)
            tids = self._bin_ids(tbx, tby)
            starts = np.searchsorted(ids, tids, side="left")
            stops = np.searchsorted(ids, tids, side="right")
            stops = np.where(valid, stops, starts)
            queries, slots = self._expand(starts, stops)
            query_parts.append(queries)
            member_parts.append(slots)
        return (
            np.concatenate(query_parts),
            self._order[np.concatenate(member_parts)],
        )


def link_hits(
    positions: np.ndarray,
    radii: np.ndarray,
    link_rule: LinkRule,
    rows: np.ndarray,
    cols: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Filter candidate router pairs with the exact link predicate.

    The one implementation of the float64 ``d^2 <= link_range^2``
    comparison every sparse path (full edge build, delta move updates)
    goes through, so the bit-identity contract cannot diverge between
    them.
    """
    if rows.size == 0:
        return rows, cols
    dx = positions[rows, 0] - positions[cols, 0]
    dy = positions[rows, 1] - positions[cols, 1]
    reach = link_rule.range_pairs(radii[rows], radii[cols])
    keep = dx * dx + dy * dy <= reach * reach
    return rows[keep], cols[keep]


def sparse_edges(
    positions: np.ndarray,
    radii: np.ndarray,
    link_rule: LinkRule,
    index: SpatialGridIndex | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact undirected link edges (each pair once) via bin pruning.

    Boolean-identical to the nonzero entries of
    :func:`repro.core.network.adjacency_matrix`: candidates come from the
    spatial index, the predicate is the same float64
    ``d^2 <= link_range^2`` comparison on the same subtractions.
    """
    positions = np.asarray(positions, dtype=float)
    n = positions.shape[0]
    if radii.shape != (n,):
        raise ValueError(f"radii shape {radii.shape} does not match {n} routers")
    if index is None:
        index = SpatialGridIndex(positions, link_cell_size(radii, link_rule))
    rows, cols = index.candidate_pairs()
    return link_hits(positions, radii, link_rule, rows, cols)


def _measure_from_sparse(
    problem: ProblemInstance,
    fitness: FitnessFunction,
    placement: Placement,
    labels: np.ndarray,
    n_links: int,
    covered: int,
    giant_mask: np.ndarray,
    counts: np.ndarray,
    giant_label: int,
) -> Evaluation:
    """Assemble the :class:`Evaluation` from sparse building blocks.

    The integer metrics are shared with the dense paths by construction;
    ``mean_degree`` uses the same exact-integer float division.
    """
    n = problem.n_routers
    degree_total = 2 * n_links
    metrics = NetworkMetrics(
        giant_size=int(counts[giant_label]),
        n_routers=n,
        covered_clients=covered,
        n_clients=problem.n_clients,
        n_components=int((counts > 0).sum()),
        n_links=n_links,
        mean_degree=degree_total / n,
    )
    return Evaluation(
        placement=placement,
        metrics=metrics,
        fitness=fitness.score(metrics),
        giant_mask=giant_mask,
    )


def components_from_edges(
    n_nodes: int, rows: np.ndarray, cols: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int, np.ndarray]:
    """``(labels, counts, giant_label, giant_mask)`` of an edge set.

    ``labels`` are canonical smallest-member ids, so ``counts`` is
    indexed by label and ``argmax`` (first maximum) realizes the shared
    smallest-member giant tie-break.
    """
    labels = labels_from_edges(n_nodes, rows, cols)
    counts = np.bincount(labels, minlength=n_nodes)
    giant_label = int(counts.argmax())
    return labels, counts, giant_label, labels == giant_label


class SparseEngine:
    """Sparse evaluator for one problem instance.

    Caches everything static across placements — the client spatial
    index above all (clients never move) — and evaluates one placement
    per call by indexing its router positions.  Coverage is counted in
    router chunks (``query_chunk``) so the candidate-pair arrays stay
    bounded regardless of instance size.
    """

    def __init__(
        self,
        problem: ProblemInstance,
        fitness: FitnessFunction | None = None,
        query_chunk: int = DEFAULT_QUERY_CHUNK,
    ) -> None:
        if query_chunk <= 0:
            raise ValueError(f"query_chunk must be positive, got {query_chunk}")
        self._problem = problem
        self._fitness = fitness if fitness is not None else WeightedSumFitness()
        self._query_chunk = query_chunk
        radii = problem.fleet.radii
        self._radii = radii
        self._radii_squared = radii * radii
        self.link_cell = link_cell_size(radii, problem.link_rule)
        self.client_index = SpatialGridIndex(
            problem.clients.positions, coverage_cell_size(radii)
        )

    @property
    def problem(self) -> ProblemInstance:
        """The instance this engine measures against."""
        return self._problem

    @property
    def fitness_function(self) -> FitnessFunction:
        """The configured scalarization."""
        return self._fitness

    def coverage_hits(
        self, positions: np.ndarray, router_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Passing ``(router, client)`` coverage pairs for given routers.

        One client-index query plus the exact float64 radius test — the
        single implementation both :meth:`covered_count` and the sparse
        delta path build on, so the coverage predicate cannot diverge
        between them.
        """
        local, client_idx = self.client_index.query_points(positions[router_ids])
        if local.size == 0:
            empty = np.zeros(0, dtype=np.intp)
            return empty, empty.copy()
        clients = self._problem.clients.positions
        routers = router_ids[local]
        dx = clients[client_idx, 0] - positions[routers, 0]
        dy = clients[client_idx, 1] - positions[routers, 1]
        hit = dx * dx + dy * dy <= self._radii_squared[routers]
        return routers[hit], client_idx[hit]

    def covered_count(
        self, positions: np.ndarray, router_mask: np.ndarray | None
    ) -> int:
        """Clients within radius of any (qualifying) router.

        ``router_mask`` restricts which routers may cover (the giant
        component under ``GIANT_ONLY``); masked-out routers are skipped
        before the index query, which only shrinks the candidate set.
        """
        n_clients = self._problem.n_clients
        if n_clients == 0:
            return 0
        if router_mask is None:
            router_ids = np.arange(positions.shape[0], dtype=np.intp)
        else:
            router_ids = np.flatnonzero(router_mask)
        covered = np.zeros(n_clients, dtype=bool)
        for start in range(0, router_ids.size, self._query_chunk):
            chunk = router_ids[start : start + self._query_chunk]
            _, hit_clients = self.coverage_hits(positions, chunk)
            covered[hit_clients] = True
        return int(np.count_nonzero(covered))

    def evaluate(self, placement: Placement) -> Evaluation:
        """Measure one placement; bit-identical to the scalar path."""
        problem = self._problem
        if len(placement) != problem.n_routers:
            raise ValueError(
                f"placement positions {len(placement)} routers but the fleet "
                f"has {problem.n_routers}"
            )
        positions = placement.positions_array()
        rows, cols = sparse_edges(positions, self._radii, problem.link_rule)
        labels, counts, giant_label, giant_mask = components_from_edges(
            problem.n_routers, rows, cols
        )
        if problem.coverage_rule is CoverageRule.ANY_ROUTER:
            covered = self.covered_count(positions, None)
        else:
            covered = self.covered_count(positions, giant_mask)
        return _measure_from_sparse(
            problem,
            self._fitness,
            placement,
            labels,
            int(rows.size),
            covered,
            giant_mask,
            counts,
            giant_label,
        )


def evaluate_sparse(
    problem: ProblemInstance,
    fitness: FitnessFunction,
    placements: Sequence[Placement],
) -> list[Evaluation]:
    """Evaluate every placement through one shared :class:`SparseEngine`.

    Pure function mirroring :func:`repro.core.engine.batch.evaluate_batch`
    — no counters, no archive; callers that need the bookkeeping wrap it.
    """
    if not placements:
        return []
    engine = SparseEngine(problem, fitness)
    return [engine.evaluate(placement) for placement in placements]
