"""Stacked evaluation entry points for multi-chain search portfolios.

The lockstep search engine (:mod:`repro.neighborhood.multichain`)
advances ``R`` independent chains at once, so each phase produces one
candidate stack of ``R x C`` placements.  :class:`StackedEngine` is the
engine-layer entry point for those stacks: it follows the shared
dispatch contract (``engine="auto" | "dense" | "sparse"``) and measures
a whole stack in as few passes as possible —

* **dense** — the ``(K, N, 2)`` position tensor goes straight into
  :func:`repro.core.engine.batch.measure_stack` in bounded chunks.  No
  per-candidate :class:`~repro.core.solution.Placement` or
  :class:`~repro.core.evaluation.Evaluation` objects are built; callers
  materialize only the rows they keep.
* **sparse** — each candidate runs through one shared
  :class:`~repro.core.engine.sparse.SparseEngine` (the per-candidate
  cost and memory stay ``O(N k + M k)``, which dominates any object
  overhead at city scale); the resulting evaluations are wrapped in the
  same :class:`~repro.core.engine.batch.StackedMeasurement` interface.

Both paths produce bit-identical metric rows, so the search layer never
needs to know which engine a portfolio runs on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.coverage import coverage_matrix
from repro.core.engine.batch import (
    DEFAULT_MAX_CHUNK,
    StackedMeasurement,
    measure_stack,
)
from repro.core.engine.components import labels_from_edge_stack
from repro.core.engine.dispatch import resolve_engine
from repro.core.fitness import FitnessFunction, WeightedSumFitness
from repro.core.network import adjacency_matrix
from repro.core.problem import ProblemInstance
from repro.core.radio import CoverageRule
from repro.core.solution import Placement

__all__ = ["StackedEngine", "StackedDeltaEngine"]


class StackedEngine:
    """Array-level candidate-stack evaluation with engine dispatch.

    Pure measurement: no evaluation counters, no archive — the search
    layer on top owns the per-chain bookkeeping.  ``max_chunk`` bounds
    the dense path's peak memory exactly like
    :class:`~repro.core.engine.batch.BatchEvaluator`.
    """

    def __init__(
        self,
        problem: ProblemInstance,
        fitness: FitnessFunction | None = None,
        engine: str = "auto",
        max_chunk: int = DEFAULT_MAX_CHUNK,
    ) -> None:
        if max_chunk <= 0:
            raise ValueError(f"max_chunk must be positive, got {max_chunk}")
        self._problem = problem
        self._fitness = fitness if fitness is not None else WeightedSumFitness()
        self._max_chunk = max_chunk
        self._engine = resolve_engine(problem, engine)
        self._sparse = None
        self._compiled = None

    @property
    def problem(self) -> ProblemInstance:
        """The instance this engine measures against."""
        return self._problem

    @property
    def fitness_function(self) -> FitnessFunction:
        """The configured scalarization."""
        return self._fitness

    @property
    def engine(self) -> str:
        """The resolved path: ``"dense"``, ``"sparse"`` or ``"compiled"``."""
        return self._engine

    @property
    def layout(self) -> str:
        """The numpy cache layout this engine's instance calls for.

        ``"dense"`` or ``"sparse"`` — for the compiled tier this is the
        :func:`~repro.core.engine.dispatch.select_engine` form, which
        also tells the search layer whether dense incumbent caches
        (:class:`StackedDeltaEngine`) are affordable.
        """
        if self._engine == "compiled":
            from repro.core.engine.dispatch import select_engine

            return select_engine(self._problem)
        return self._engine

    @property
    def accepts_positions(self) -> bool:
        """Whether :meth:`measure_positions` works on this engine.

        True for the dense and compiled tiers, whose kernels consume raw
        ``(K, N, 2)`` stacks; the numpy sparse path needs placements.
        """
        return self._engine in ("dense", "compiled")

    def _sparse_engine(self):
        if self._sparse is None:
            from repro.core.engine.sparse import SparseEngine

            self._sparse = SparseEngine(self._problem, self._fitness)
        return self._sparse

    def _compiled_engine(self):
        if self._compiled is None:
            from repro.core.engine.compiled import CompiledEngine

            self._compiled = CompiledEngine(self._problem, self._fitness)
        return self._compiled

    def measure_positions(self, positions: np.ndarray) -> StackedMeasurement:
        """Measure a raw ``(K, N, 2)`` position stack (dense/compiled).

        The fast lane for multi-chain phases: candidate rows are derived
        numerically from the incumbents' position rows, so no placement
        objects exist yet.  Raises on the numpy sparse path, which needs
        placements — use :meth:`measure_placements` there.  The compiled
        tier accepts stacks in *both* kernel forms, so city-scale
        portfolios stay on this lane too.
        """
        if not self.accepts_positions:
            raise ValueError(
                "measure_positions requires the dense or compiled engine; "
                "the sparse path measures placements (see "
                "measure_placements)"
            )
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 3 or positions.shape[2] != 2:
            raise ValueError(
                f"positions must be (K, N, 2), got {positions.shape}"
            )
        k = positions.shape[0]
        if k == 0:
            return self._empty_measurement()
        if self._engine == "compiled":
            # The fused kernels never materialize per-candidate tensors,
            # so no memory-bounding chunking is needed.
            return self._compiled_engine().measure_stack(positions)
        if k <= self._max_chunk:
            return measure_stack(self._problem, self._fitness, positions)
        chunks = [
            measure_stack(
                self._problem,
                self._fitness,
                positions[start : start + self._max_chunk],
            )
            for start in range(0, k, self._max_chunk)
        ]
        return StackedMeasurement.concatenate(chunks)

    def measure_placements(
        self, placements: Sequence[Placement]
    ) -> StackedMeasurement:
        """Measure a candidate set of placements on the dispatched path.

        Dense: stacks the (cached) position arrays and defers to
        :meth:`measure_positions`.  Sparse: evaluates each placement on
        the shared spatial-grid engine and keeps the evaluations, so
        :meth:`StackedMeasurement.evaluation` is free.
        """
        if not placements:
            return self._empty_measurement()
        if self.accepts_positions:
            positions = np.stack([p.positions_array() for p in placements])
            return self.measure_positions(positions)
        evaluations = [
            self._sparse_engine().evaluate(placement) for placement in placements
        ]
        n = self._problem.n_routers
        return StackedMeasurement(
            problem=self._problem,
            fitness_function=self._fitness,
            giant_sizes=np.array(
                [e.giant_size for e in evaluations], dtype=np.intp
            ),
            covered_clients=np.array(
                [e.covered_clients for e in evaluations], dtype=np.intp
            ),
            n_components=np.array(
                [e.metrics.n_components for e in evaluations], dtype=np.intp
            ),
            n_links=np.array(
                [e.metrics.n_links for e in evaluations], dtype=np.intp
            ),
            mean_degrees=np.array(
                [e.metrics.mean_degree for e in evaluations], dtype=float
            ),
            giant_masks=(
                np.stack([e.giant_mask for e in evaluations])
                if evaluations
                else np.zeros((0, n), dtype=bool)
            ),
            fitness=np.array([e.fitness for e in evaluations], dtype=float),
            evaluations=evaluations,
        )

    def _empty_measurement(self) -> StackedMeasurement:
        return _empty_stacked(self._problem, self._fitness)

    def __repr__(self) -> str:
        return (
            f"StackedEngine(n_routers={self._problem.n_routers}, "
            f"engine={self._engine!r}, max_chunk={self._max_chunk})"
        )


class _ChainCache:
    """Incumbent state of one chain (see :class:`StackedDeltaEngine`)."""

    __slots__ = (
        "placement",
        "positions",
        "adjacency",
        "coverage",
        "coverage32",
        "coverage_counts",
        "client_ptr",
        "client_hit",
        "edge_rows",
        "edge_cols",
    )

    def __init__(
        self,
        problem: ProblemInstance,
        placement: Placement,
        use_csr: bool = False,
    ) -> None:
        self.placement = placement
        self.positions = np.array(placement.positions_array(), dtype=float)
        # The reference matrix builders, so the cached state is exactly
        # what the scalar/batch paths would compute.
        self.adjacency = adjacency_matrix(
            self.positions, problem.fleet.radii, problem.link_rule
        )
        self.coverage = coverage_matrix(
            problem.clients.positions, self.positions, problem.fleet.radii
        )
        if use_csr:
            # Compiled tier: byte-scan edge extraction, same (i < j)
            # row-major order as the np.nonzero path below.
            from repro.core.engine.compiled import dense_edges

            self.edge_rows, self.edge_cols = dense_edges(self.adjacency)
        else:
            rows, cols = np.nonzero(self.adjacency)
            one_way = rows < cols
            self.edge_rows = rows[one_way].astype(np.intp)
            self.edge_cols = cols[one_way].astype(np.intp)
        self.coverage32 = None
        self.coverage_counts = None
        self.client_ptr = None
        self.client_hit = None
        if problem.coverage_rule is CoverageRule.ANY_ROUTER:
            self.coverage_counts = self.coverage.sum(axis=1, dtype=np.int32)
        elif use_csr:
            # Client-major hit lists for the compiled giant-only count
            # kernel (exact integers end to end).
            self.refresh_csr()
        else:
            # float32 copy for the per-phase sgemm: counts stay exact
            # (at most N ones per client, far below 2**24).
            self.coverage32 = self.coverage.astype(np.float32)

    def refresh_csr(self) -> None:
        """Rebuild the client-major CSR from the coverage matrix."""
        from repro.core.engine.compiled import client_csr

        self.client_ptr, self.client_hit = client_csr(self.coverage)


class StackedDeltaEngine:
    """Incremental stacked measurement for lockstep chains (dense layout).

    Every phase candidate differs from its chain's incumbent by at most
    a couple of *moved* routers, so rebuilding the full
    ``O(K * (N^2 + M * N))`` tensors per phase — what
    :func:`~repro.core.engine.batch.measure_stack` does — wastes almost
    all of its arithmetic on unchanged rows.  This engine keeps one
    :class:`_ChainCache` per chain (incumbent adjacency, coverage hits
    and one-way edge arrays, built by the reference formulas) and per
    phase recomputes only:

    * one ``(P, N)`` adjacency-row and one ``(P, M)`` coverage-column
      broadcast per chain for the ``P`` (candidate, moved-router) pairs;
    * per-candidate edge lists as *kept incumbent edges* (a boolean mask
      over the cached one-way arrays) plus the moved routers' new edges,
      labeled for the whole phase in one
      :func:`~repro.core.engine.components.labels_from_edge_stack` pass;
    * covered-client counts from one exact ``float32`` matmul of the
      cached hit matrix against the candidate giant masks, corrected per
      moved router (``GIANT_ONLY``), or cached per-client hit counts
      corrected per moved router (``ANY_ROUTER``).

    Results are bit-identical to ``measure_stack`` on the candidate
    placements (the multichain parity suite asserts it): the float64
    row/column predicates match the reference matrix builders
    elementwise, labels are canonical smallest-member ids, and the
    integer count arithmetic is exact.

    Protocol: :meth:`reset_chain` once per chain, :meth:`measure_phase`
    once per phase with neutral ``(chain, movers, new_positions)``
    candidate descriptions, :meth:`commit_chain` whenever a chain
    accepts a candidate.  Pure measurement — counters and archives live
    in the search layer.
    """

    def __init__(
        self,
        problem: ProblemInstance,
        fitness: FitnessFunction | None = None,
        engine: str = "dense",
    ) -> None:
        self._problem = problem
        self._fitness = fitness if fitness is not None else WeightedSumFitness()
        radii = problem.fleet.radii
        link_range = problem.link_rule.range_matrix(radii)
        self._range_squared = link_range * link_range
        self._radii_squared = radii * radii
        self._clients = problem.clients.positions
        self._giant_only = problem.coverage_rule is not CoverageRule.ANY_ROUTER
        self._caches: dict[int, _ChainCache] = {}
        # The dense-layout caches are shared; ``engine`` only picks who
        # crunches them: the numpy broadcasts/sgemm ("dense") or the C
        # kernels ("compiled").  "auto" promotes when the kernels are
        # available, mirroring the dispatch contract.
        if engine == "auto":
            from repro.core.engine import compiled

            engine = "compiled" if compiled.is_available() else "dense"
        if engine == "compiled":
            from repro.core.engine import compiled

            compiled.require()
            self._compiled = compiled
        elif engine == "dense":
            self._compiled = None
        else:
            raise ValueError(
                "StackedDeltaEngine engine must be 'auto', 'dense' or "
                f"'compiled', got {engine!r}"
            )
        self._engine = engine

    @property
    def problem(self) -> ProblemInstance:
        """The instance this engine measures against."""
        return self._problem

    @property
    def fitness_function(self) -> FitnessFunction:
        """The configured scalarization."""
        return self._fitness

    @property
    def engine(self) -> str:
        """Who crunches the phase deltas: ``"dense"`` or ``"compiled"``."""
        return self._engine

    def reset_chain(self, chain: int, placement: Placement) -> None:
        """(Re)build chain ``chain``'s incumbent cache from scratch."""
        self._caches[chain] = _ChainCache(
            self._problem, placement, use_csr=self._compiled is not None
        )

    def commit_chain(self, chain: int, placement: Placement) -> None:
        """Advance chain ``chain``'s incumbent to an accepted placement.

        Rewrites only the moved routers' adjacency rows/columns and
        coverage columns in place (the same update rule as
        :meth:`~repro.core.engine.delta.DeltaEvaluator.commit`), then
        refreshes the one-way edge arrays from the patched adjacency.
        """
        cache = self._caches.get(chain)
        if cache is None:
            self.reset_chain(chain, placement)
            return
        new_positions = placement.positions_array()
        moved = np.flatnonzero((new_positions != cache.positions).any(axis=1))
        if moved.size == 0:
            cache.placement = placement
            return
        x = new_positions[:, 0]
        y = new_positions[:, 1]
        clients = self._clients
        for router in moved.tolist():
            dx = x[router] - x
            dy = y[router] - y
            row = dx * dx + dy * dy <= self._range_squared[router]
            row[router] = False
            cache.adjacency[router, :] = row
            cache.adjacency[:, router] = row
            if clients.size:
                cdx = clients[:, 0] - x[router]
                cdy = clients[:, 1] - y[router]
                column = cdx * cdx + cdy * cdy <= self._radii_squared[router]
                if cache.coverage_counts is not None:
                    # Keep the per-client totals in sync before the
                    # column is overwritten.
                    cache.coverage_counts += column
                    cache.coverage_counts -= cache.coverage[:, router]
                cache.coverage[:, router] = column
                if cache.coverage32 is not None:
                    cache.coverage32[:, router] = column
                if cache.client_ptr is not None:
                    # O(nnz) CSR rewrite for this column; rebuilding
                    # from the full matrix rescans mostly-unchanged
                    # cells (the commit hot spot at city scale).
                    cache.client_ptr, cache.client_hit = (
                        self._compiled.csr_update_column(
                            cache.client_ptr, cache.client_hit,
                            router, column,
                        )
                    )
        if self._compiled is not None:
            # Incremental edge refresh: drop edges touching a mover,
            # re-add each mover's links from its patched adjacency row
            # (final positions — the rows above already use them).
            # Edge order changes vs. np.nonzero, but every consumer
            # masks or union-finds, so the labels stay canonical.
            mover_mask = np.zeros(self._problem.n_routers, dtype=bool)
            mover_mask[moved] = True
            keep = ~(mover_mask[cache.edge_rows] | mover_mask[cache.edge_cols])
            row_parts = [cache.edge_rows[keep]]
            col_parts = [cache.edge_cols[keep]]
            for router in moved.tolist():
                partners = np.flatnonzero(cache.adjacency[router])
                # A mover-mover link appears in both rows; keep it once.
                partners = partners[
                    ~mover_mask[partners] | (partners > router)
                ]
                row_parts.append(np.minimum(partners, router))
                col_parts.append(np.maximum(partners, router))
            cache.edge_rows = np.concatenate(row_parts)
            cache.edge_cols = np.concatenate(col_parts)
        else:
            rows, cols = np.nonzero(cache.adjacency)
            one_way = rows < cols
            cache.edge_rows = rows[one_way].astype(np.intp)
            cache.edge_cols = cols[one_way].astype(np.intp)
        cache.positions[moved] = new_positions[moved]
        cache.placement = placement

    # ------------------------------------------------------------------
    # Phase measurement
    # ------------------------------------------------------------------

    def measure_phase(
        self,
        items: "Sequence[tuple[int, tuple[int, ...], tuple[tuple[float, float], ...]]]",
    ) -> StackedMeasurement:
        """Measure one phase's candidate stack incrementally.

        ``items[k] = (chain, movers, new_positions)`` describes candidate
        ``k`` as its chain id plus the parallel tuples of moved router
        ids — distinct within one candidate — and their new ``(x, y)``
        cells (empty tuples for a no-op candidate identical to the
        incumbent).  Items must be grouped by chain (the search layer
        emits them chain-major).  Returns a
        :class:`~repro.core.engine.batch.StackedMeasurement` in item
        order; materialize winners with ``measurement.evaluation(k,
        placement)``.
        """
        n = self._problem.n_routers
        k_total = len(items)
        if k_total == 0:
            return _empty_stacked(self._problem, self._fitness)

        giant_sizes = np.empty(k_total, dtype=np.intp)
        covered = np.empty(k_total, dtype=np.intp)
        n_components = np.empty(k_total, dtype=np.intp)
        n_links = np.empty(k_total, dtype=np.intp)
        giant_masks = np.empty((k_total, n), dtype=bool)

        # ---- pass 1: per-chain adjacency deltas and edge stacks ------
        segments = _chain_segments(items)
        edge_sources: list[np.ndarray] = []
        edge_targets: list[np.ndarray] = []
        chain_scratch: list[tuple] = []
        for chain, start, end in segments:
            cache = self._caches[chain]
            scratch = self._chain_edges(
                cache, items, start, end, n_links, edge_sources, edge_targets
            )
            chain_scratch.append(scratch)

        # ---- global component labeling for the whole phase -----------
        sources = (
            np.concatenate(edge_sources) if edge_sources else np.zeros(0, np.intp)
        )
        targets = (
            np.concatenate(edge_targets) if edge_targets else np.zeros(0, np.intp)
        )
        if self._compiled is not None:
            # One union-find kernel for any stack size, replacing the
            # scipy-vs-propagation split (identical canonical labels).
            labels = self._compiled.label_components(k_total * n, sources, targets)
        else:
            labels = labels_from_edge_stack(k_total * n, sources, targets)
        counts = np.bincount(labels, minlength=k_total * n).reshape(k_total, n)
        labels = labels.reshape(k_total, n)
        labels -= np.arange(k_total, dtype=np.intp)[:, np.newaxis] * n
        # First maximum = smallest canonical label among the largest
        # components — the shared giant tie-break rule.
        giant_labels = counts.argmax(axis=1)
        giant_sizes[:] = counts[np.arange(k_total), giant_labels]
        n_components[:] = (counts > 0).sum(axis=1)
        np.equal(labels, giant_labels[:, np.newaxis], out=giant_masks)

        # ---- pass 2: coverage, per chain ------------------------------
        for (chain, start, end), scratch in zip(segments, chain_scratch):
            self._chain_coverage(
                self._caches[chain], start, end, scratch, giant_masks, covered
            )

        degree_totals = 2 * n_links
        measurement = StackedMeasurement(
            problem=self._problem,
            fitness_function=self._fitness,
            giant_sizes=giant_sizes,
            covered_clients=covered,
            n_components=n_components,
            n_links=n_links,
            mean_degrees=degree_totals / n,
            giant_masks=giant_masks,
        )
        measurement.fitness = self._fitness.score_rows(measurement)
        return measurement

    # ------------------------------------------------------------------
    # Per-chain internals
    # ------------------------------------------------------------------

    def _chain_edges(
        self,
        cache: _ChainCache,
        items,
        start: int,
        end: int,
        n_links: np.ndarray,
        edge_sources: list[np.ndarray],
        edge_targets: list[np.ndarray],
    ) -> tuple:
        """Adjacency deltas + stacked edge arrays for one chain's segment.

        Fills ``n_links[start:end]`` and appends this chain's globally
        offset edge arrays; returns the scratch (pair arrays and new
        coverage columns) the coverage pass reuses.
        """
        n = self._problem.n_routers
        count = end - start
        # Flatten (candidate, mover) pairs for the whole segment,
        # candidate-major: candidate k's pairs are the contiguous run
        # pair_first[k - start] .. (next first).
        segment = [items[k] for k in range(start, end)]
        single = all(len(item[1]) <= 1 for item in segment)
        if single:
            # Fast path for the dominant shape (relocations: at most one
            # mover per candidate): two comprehension passes instead of
            # the generic ragged flattening.
            pair_locals = [
                local for local, item in enumerate(segment) if item[1]
            ]
            cand_of_pair = np.asarray(pair_locals, dtype=np.intp)
            router_of_pair = np.asarray(
                [segment[local][1][0] for local in pair_locals], dtype=np.intp
            )
            pair_xy = [segment[local][2][0] for local in pair_locals]
            mover_lengths = None
            pair_first = None
        else:
            mover_lengths = [len(item[1]) for item in segment]
            pair_first = [0] * count
            total = 0
            for local, length in enumerate(mover_lengths):
                pair_first[local] = total
                total += length
            cand_of_pair = np.repeat(
                np.arange(count, dtype=np.intp), mover_lengths
            )
            router_of_pair = np.asarray(
                [router for item in segment for router in item[1]],
                dtype=np.intp,
            )
            pair_xy = [xy for item in segment for xy in item[2]]
        n_pairs = router_of_pair.size

        if n_pairs:
            new_xy = np.asarray(pair_xy, dtype=float)
            if self._compiled is not None:
                # Fused kernel: both broadcasts in one parallel pass,
                # same predicate order, diagonal already cleared.
                rows_new, cols_new = self._compiled.delta_rows_cols(
                    new_xy,
                    router_of_pair,
                    cache.positions,
                    self._range_squared,
                    self._clients,
                    self._radii_squared,
                )
            else:
                new_x = new_xy[:, 0]
                new_y = new_xy[:, 1]
                # New adjacency rows against the *incumbent* positions —
                # identical predicate to the reference adjacency_matrix.
                dx = new_x[:, np.newaxis] - cache.positions[np.newaxis, :, 0]
                dy = new_y[:, np.newaxis] - cache.positions[np.newaxis, :, 1]
                rows_new = (
                    dx * dx + dy * dy <= self._range_squared[router_of_pair]
                )
                rows_new[np.arange(n_pairs), router_of_pair] = False
                # New coverage columns (client within the mover's radius).
                if self._clients.size:
                    cdx = new_x[:, np.newaxis] - self._clients[np.newaxis, :, 0]
                    cdy = new_y[:, np.newaxis] - self._clients[np.newaxis, :, 1]
                    cols_new = (
                        cdx * cdx + cdy * cdy
                        <= self._radii_squared[router_of_pair, np.newaxis]
                    )
                else:
                    cols_new = np.zeros((n_pairs, 0), dtype=bool)
        else:
            rows_new = np.zeros((0, n), dtype=bool)
            cols_new = np.zeros((0, self._problem.n_clients), dtype=bool)

        # Mover-mover entries: computed from both new positions (the row
        # broadcast above tested against the co-mover's *old* position),
        # counted/emitted once per unordered pair.
        extra_edges: list[tuple[int, int, int]] = []  # (local cand, a, b)
        if not single:
            for local, (_, movers, new_positions) in enumerate(segment):
                if len(movers) < 2:
                    continue
                first = pair_first[local]
                pair_ids = range(first, first + len(movers))
                for i in range(len(movers)):
                    for j in range(i + 1, len(movers)):
                        a, b = movers[i], movers[j]
                        ax, ay = new_positions[i]
                        bx, by = new_positions[j]
                        dx2 = float(ax) - float(bx)
                        dy2 = float(ay) - float(by)
                        linked = (
                            dx2 * dx2 + dy2 * dy2 <= self._range_squared[a, b]
                        )
                        # Clear both directed row entries so the pair is
                        # neither double-counted nor tested against stale
                        # positions.
                        rows_new[pair_ids[i], b] = False
                        rows_new[pair_ids[j], a] = False
                        if linked:
                            extra_edges.append((local, a, b))

        # Kept incumbent edges: both endpoints unmoved.
        base_rows = cache.edge_rows
        base_cols = cache.edge_cols
        keep = np.ones((count, base_rows.size), dtype=bool)
        if single:
            if n_pairs:
                movers_column = np.full(count, -1, dtype=np.intp)
                movers_column[cand_of_pair] = router_of_pair
                column = movers_column[:, np.newaxis]
                keep &= base_rows[np.newaxis, :] != column
                keep &= base_cols[np.newaxis, :] != column
        else:
            max_movers = max(mover_lengths, default=0)
            if max_movers:
                padded = np.full((count, max_movers), -1, dtype=np.intp)
                for local, (_, movers, _unused) in enumerate(segment):
                    if movers:
                        padded[local, : len(movers)] = movers
                for w in range(max_movers):
                    column = padded[:, w][:, np.newaxis]
                    keep &= base_rows[np.newaxis, :] != column
                    keep &= base_cols[np.newaxis, :] != column

        kept_counts = keep.sum(axis=1)
        new_counts = np.zeros(count, dtype=np.intp)
        if n_pairs:
            np.add.at(new_counts, cand_of_pair, rows_new.sum(axis=1))
        for local, _, _ in extra_edges:
            new_counts[local] += 1
        n_links[start:end] = kept_counts + new_counts

        # Globally offset edge arrays for the phase labeling.
        offsets = (np.arange(start, end, dtype=np.intp)) * n
        kept_cand, kept_edge = np.nonzero(keep)
        edge_sources.append(offsets[kept_cand] + base_rows[kept_edge])
        edge_targets.append(offsets[kept_cand] + base_cols[kept_edge])
        if n_pairs:
            new_pair, new_target = np.nonzero(rows_new)
            edge_sources.append(
                offsets[cand_of_pair[new_pair]] + router_of_pair[new_pair]
            )
            edge_targets.append(offsets[cand_of_pair[new_pair]] + new_target)
        if extra_edges:
            edge_sources.append(
                np.asarray(
                    [offsets[local] + a for local, a, _ in extra_edges],
                    dtype=np.intp,
                )
            )
            edge_targets.append(
                np.asarray(
                    [offsets[local] + b for local, _, b in extra_edges],
                    dtype=np.intp,
                )
            )
        return (cand_of_pair, router_of_pair, cols_new)

    def _chain_coverage(
        self,
        cache: _ChainCache,
        start: int,
        end: int,
        scratch: tuple,
        giant_masks: np.ndarray,
        covered: np.ndarray,
    ) -> None:
        """Covered-client counts for one chain's segment."""
        m = self._problem.n_clients
        count = end - start
        if m == 0:
            covered[start:end] = 0
            return
        cand_of_pair, router_of_pair, cols_new = scratch
        if not self._giant_only:
            counts = np.repeat(
                cache.coverage_counts[np.newaxis, :], count, axis=0
            )
            if cand_of_pair.size:
                difference = (
                    cols_new.astype(np.int32)
                    - cache.coverage[:, router_of_pair].T
                )
                np.add.at(counts, cand_of_pair, difference)
            covered[start:end] = np.count_nonzero(counts > 0, axis=1)
            return
        if self._compiled is not None:
            # GIANT_ONLY via the all-integer CSR kernel: per-client
            # covering-giant counts from the incumbent's hit lists, then
            # each giant mover swaps its old column for its new one.
            covered[start:end] = self._compiled.giant_covered(
                cache.client_ptr,
                cache.client_hit,
                self._problem.n_routers,
                giant_masks[start:end],
                cand_of_pair,
                router_of_pair,
                cols_new,
                cache.coverage,
            )
            return
        # GIANT_ONLY: per-client count of covering giant routers =
        # hits x giant-mask, one exact float32 sgemm for the segment...
        giant32 = giant_masks[start:end].astype(np.float32)
        counts = cache.coverage32 @ giant32.T  # (M, count)
        # ...then exchange each mover's old column for its new one when
        # the mover sits in that candidate's giant component.  add.at
        # accumulates correctly when one candidate moves several giant
        # routers.
        if cand_of_pair.size:
            in_giant = giant_masks[start + cand_of_pair, router_of_pair]
            hot = np.flatnonzero(in_giant)
            if hot.size:
                difference = (
                    cols_new[hot].astype(np.float32)
                    - cache.coverage32[:, router_of_pair[hot]].T
                )
                np.add.at(counts.T, cand_of_pair[hot], difference)
        covered[start:end] = np.count_nonzero(counts > 0.5, axis=0)

    def __repr__(self) -> str:
        return (
            f"StackedDeltaEngine(n_routers={self._problem.n_routers}, "
            f"chains={len(self._caches)})"
        )


def _chain_segments(items) -> list[tuple[int, int, int]]:
    """``(chain, start, end)`` runs of chain-major candidate items."""
    segments: list[tuple[int, int, int]] = []
    start = 0
    for index in range(1, len(items) + 1):
        if index == len(items) or items[index][0] != items[start][0]:
            segments.append((items[start][0], start, index))
            start = index
    seen = set()
    for chain, _, _ in segments:
        if chain in seen:
            raise ValueError("measure_phase items must be grouped by chain")
        seen.add(chain)
    return segments


def _empty_stacked(
    problem: ProblemInstance, fitness: FitnessFunction
) -> StackedMeasurement:
    empty = np.zeros(0, dtype=np.intp)
    return StackedMeasurement(
        problem=problem,
        fitness_function=fitness,
        giant_sizes=empty,
        covered_clients=empty.copy(),
        n_components=empty.copy(),
        n_links=empty.copy(),
        mean_degrees=np.zeros(0, dtype=float),
        giant_masks=np.zeros((0, problem.n_routers), dtype=bool),
        fitness=np.zeros(0, dtype=float),
        evaluations=[],
    )
