"""Incremental (delta) placement evaluation.

Single-move search loops (simulated annealing, tabu search) evaluate
neighbors that differ from the incumbent by one or two routers.  The
scalar evaluator rebuilds the full ``(N, N)`` adjacency and ``(M, N)``
coverage matrices for every such neighbor; :class:`DeltaEvaluator`
instead caches the incumbent's matrices and recomputes only the rows and
columns the move touches, then relabels components from the cached
edges.  Results are bit-identical to the scalar path (asserted by the
parity tests).

Protocol::

    delta = DeltaEvaluator(evaluator)
    current = delta.reset(initial)        # full build, caches state
    candidate = delta.propose(move)       # incumbent ⊕ move, caches untouched
    delta.commit(candidate)               # make the candidate the incumbent

``propose`` is speculative — any number of candidates can be previewed
from the same incumbent (tabu search previews a whole sample) and the
caches only advance on ``commit``.  Evaluation counting and archive
observation are routed through the wrapped scalar
:class:`~repro.core.evaluation.Evaluator`, so search-cost accounting is
unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.coverage import coverage_matrix
from repro.core.engine.components import labels_from_edges
from repro.core.evaluation import Evaluation, Evaluator
from repro.core.fitness import NetworkMetrics
from repro.core.network import adjacency_matrix
from repro.core.radio import CoverageRule
from repro.core.solution import Placement

if TYPE_CHECKING:  # core must not import neighborhood at runtime
    from repro.neighborhood.moves import Move

__all__ = ["DeltaEvaluator"]


class DeltaEvaluator:
    """Incremental evaluation around a cached incumbent placement."""

    def __init__(self, evaluator: Evaluator) -> None:
        self._evaluator = evaluator
        self._problem = evaluator.problem
        self._fitness = evaluator.fitness_function
        radii = self._problem.fleet.radii
        link_range = self._problem.link_rule.range_matrix(radii)
        self._range_squared = link_range * link_range
        self._radii_squared = radii * radii
        self._positions: np.ndarray | None = None
        self._adjacency: np.ndarray | None = None
        self._coverage: np.ndarray | None = None
        self._incumbent: Evaluation | None = None

    @property
    def problem(self):
        """The instance this evaluator measures against."""
        return self._problem

    @property
    def incumbent(self) -> Evaluation:
        """The evaluation whose state is cached; requires :meth:`reset`."""
        if self._incumbent is None:
            raise ValueError("DeltaEvaluator has no incumbent; call reset() first")
        return self._incumbent

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def reset(self, placement: Placement) -> Evaluation:
        """Full build of ``placement``; it becomes the incumbent."""
        if len(placement) != self._problem.n_routers:
            raise ValueError(
                f"placement positions {len(placement)} routers but the fleet "
                f"has {self._problem.n_routers}"
            )
        positions = placement.positions_array().copy()
        adjacency = adjacency_matrix(
            placement.positions_array(), self._problem.fleet.radii,
            self._problem.link_rule,
        )
        coverage = coverage_matrix(
            self._problem.clients.positions,
            placement.positions_array(),
            self._problem.fleet.radii,
        )
        evaluation = self._measure(placement, adjacency, coverage)
        self._positions = positions
        self._adjacency = adjacency
        self._coverage = coverage
        self._incumbent = evaluation
        self._evaluator.record_evaluation(evaluation)
        return evaluation

    def propose(self, move: Move) -> Evaluation:
        """Evaluate ``incumbent ⊕ move`` without advancing the caches.

        Raises ``ValueError`` when the move no longer applies (same
        contract as ``move.apply``); callers treat that as "candidate
        unavailable", exactly like the scalar loops do.
        """
        if self._incumbent is None:
            raise ValueError("DeltaEvaluator has no incumbent; call reset() first")
        placement = move.apply(self._incumbent.placement)
        new_positions = placement.positions_array()
        moved = np.flatnonzero((new_positions != self._positions).any(axis=1))
        adjacency = self._adjacency.copy()
        coverage = self._coverage.copy()
        self._apply_rows(adjacency, coverage, new_positions, moved)
        evaluation = self._measure(placement, adjacency, coverage)
        self._evaluator.record_evaluation(evaluation)
        return evaluation

    def commit(self, evaluation: Evaluation) -> None:
        """Advance the caches so ``evaluation`` is the new incumbent.

        Accepts any evaluation of this problem (normally one returned by
        :meth:`propose`); only the rows/columns whose routers moved
        relative to the current incumbent are rewritten.
        """
        if self._incumbent is None:
            raise ValueError("DeltaEvaluator has no incumbent; call reset() first")
        placement = evaluation.placement
        if len(placement) != self._problem.n_routers:
            raise ValueError(
                f"placement positions {len(placement)} routers but the fleet "
                f"has {self._problem.n_routers}"
            )
        new_positions = placement.positions_array()
        moved = np.flatnonzero((new_positions != self._positions).any(axis=1))
        self._apply_rows(self._adjacency, self._coverage, new_positions, moved)
        self._positions[moved] = new_positions[moved]
        self._incumbent = evaluation

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _apply_rows(
        self,
        adjacency: np.ndarray,
        coverage: np.ndarray,
        positions: np.ndarray,
        moved: np.ndarray,
    ) -> None:
        """Rewrite the adjacency rows/columns and coverage columns of
        every moved router in place, against ``positions``."""
        x = positions[:, 0]
        y = positions[:, 1]
        clients = self._problem.clients.positions
        for router in moved.tolist():
            dx = x[router] - x
            dy = y[router] - y
            row = dx * dx + dy * dy <= self._range_squared[router]
            row[router] = False
            adjacency[router, :] = row
            adjacency[:, router] = row
            if clients.size:
                cdx = clients[:, 0] - x[router]
                cdy = clients[:, 1] - y[router]
                coverage[:, router] = (
                    cdx * cdx + cdy * cdy <= self._radii_squared[router]
                )

    def _measure(
        self, placement: Placement, adjacency: np.ndarray, coverage: np.ndarray
    ) -> Evaluation:
        """Metrics + fitness from ready-made adjacency/coverage matrices."""
        n = self._problem.n_routers
        # One flat nonzero pass: the directed endpoint count is exactly
        # the degree total, and one direction per edge suffices for the
        # propagation (its sweeps push labels both ways).
        flat = np.flatnonzero(adjacency.ravel())
        rows = flat // n
        cols = flat % n
        one_way = rows < cols
        labels = labels_from_edges(n, rows[one_way], cols[one_way])
        counts = np.bincount(labels, minlength=n)
        giant_label = int(counts.argmax())
        giant_mask = labels == giant_label
        degree_total = int(flat.shape[0])
        if self._problem.coverage_rule is CoverageRule.ANY_ROUTER:
            covered = int(coverage.any(axis=1).sum()) if coverage.size else 0
        else:
            masked = coverage[:, giant_mask]
            covered = int(masked.any(axis=1).sum()) if masked.size else 0
        metrics = NetworkMetrics(
            giant_size=int(counts[giant_label]),
            n_routers=n,
            covered_clients=covered,
            n_clients=self._problem.n_clients,
            n_components=int((counts > 0).sum()),
            n_links=degree_total // 2,
            # Identical to degrees().mean(): an exact integer divided by N.
            mean_degree=degree_total / n,
        )
        return Evaluation(
            placement=placement,
            metrics=metrics,
            fitness=self._fitness.score(metrics),
            giant_mask=giant_mask,
        )
